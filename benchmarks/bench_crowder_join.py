"""E4: CrowdER-style hybrid join vs. baselines (Wang et al. 2012).

Reports, per blocking threshold, the number of crowd tasks and the resulting
precision/recall/F1 — compared against the all-pairs crowd join (upper bound
on cost) and the machine-only join (lower bound on cost, lower quality).
The shape to reproduce: blocking cuts crowd cost by one to two orders of
magnitude at essentially unchanged F1, and the hybrid beats machine-only
quality.
"""

from __future__ import annotations

import pytest

from repro import CrowdContext
from repro.datasets import make_entity_resolution_dataset
from repro.operators import AllPairsCrowdJoin, CrowdJoin, MachineOnlyJoin
from repro.operators.blocking import SimilarityBlocker
from repro.simulation import ExperimentRunner, pair_metrics

DATASET = make_entity_resolution_dataset(num_entities=40, duplicates_per_entity=3, seed=42)
TOTAL_PAIRS = len(DATASET) * (len(DATASET) - 1) // 2


def run_crowder(threshold: float, seed: int = 42) -> dict:
    cc = CrowdContext.in_memory(seed=seed)
    join = CrowdJoin(cc, "crowder", blocker=SimilarityBlocker(threshold=threshold))
    result = join.join(DATASET.records, ground_truth=DATASET.pair_ground_truth)
    quality = pair_metrics(result.matches, DATASET.matching_pairs)
    cc.close()
    return {
        "method": f"crowder(th={threshold})",
        "crowd_tasks": result.report.crowd_tasks,
        "task_reduction_x": round(TOTAL_PAIRS / max(1, result.report.crowd_tasks), 1),
        **{key: round(value, 3) for key, value in quality.items()},
    }


def run_machine_only(threshold: float) -> dict:
    result = MachineOnlyJoin(threshold=threshold).join(DATASET.records)
    quality = pair_metrics(result.matches, DATASET.matching_pairs)
    return {
        "method": f"machine_only(th={threshold})",
        "crowd_tasks": 0,
        "task_reduction_x": float("inf"),
        **{key: round(value, 3) for key, value in quality.items()},
    }


def run_all_pairs(seed: int = 42) -> dict:
    """All-pairs crowd join on a subsample (the full 120x120 would be 7140 tasks)."""
    sample_ids = DATASET.record_ids()[:40]
    records = {record_id: DATASET.records[record_id] for record_id in sample_ids}
    truth = {
        pair for pair in DATASET.matching_pairs if pair[0] in records and pair[1] in records
    }
    cc = CrowdContext.in_memory(seed=seed)
    result = AllPairsCrowdJoin(cc, "all_pairs", n_assignments=3).join(
        records, ground_truth=DATASET.pair_ground_truth
    )
    quality = pair_metrics(result.matches, truth)
    cc.close()
    scale = (len(DATASET) * (len(DATASET) - 1)) / (len(records) * (len(records) - 1))
    return {
        "method": "all_pairs_crowd (40-record sample, cost scaled)",
        "crowd_tasks": int(result.report.crowd_tasks * scale),
        "task_reduction_x": 1.0,
        **{key: round(value, 3) for key, value in quality.items()},
    }


def test_crowder_vs_baselines(benchmark, record_table):
    """Headline measurement: one hybrid join at the default threshold."""
    result = benchmark.pedantic(run_crowder, args=(0.3,), rounds=1, iterations=1)
    assert result["f1"] >= 0.85
    assert result["crowd_tasks"] < TOTAL_PAIRS / 10

    rows = [run_all_pairs(), run_machine_only(0.55), result]
    runner = ExperimentRunner("E4 — CrowdER hybrid join vs. baselines (120 records, 7140 pairs)")
    sweep = runner.run([{}], lambda point: {})
    sweep.rows = rows
    record_table(
        "E4_crowder_vs_baselines",
        sweep.to_table(
            columns=["method", "crowd_tasks", "task_reduction_x", "precision", "recall", "f1"]
        ),
    )


def test_crowder_threshold_sweep(benchmark, record_table):
    """Ablation: the cost/recall trade-off of the blocking threshold."""
    result = benchmark.pedantic(run_crowder, args=(0.5,), rounds=1, iterations=1)
    assert result["crowd_tasks"] > 0

    runner = ExperimentRunner("E4b — blocking-threshold sweep (CrowdER join)")
    sweep = runner.run(
        [{"threshold": t} for t in (0.1, 0.2, 0.3, 0.4, 0.5, 0.6)],
        lambda point: run_crowder(point["threshold"]),
    )
    record_table(
        "E4b_threshold_sweep",
        sweep.to_table(
            columns=["threshold", "crowd_tasks", "task_reduction_x", "precision", "recall", "f1"]
        ),
    )
