"""E6: quality-control comparison — MV vs. WMV vs. Dawid-Skene vs. GLAD.

Sweeps worker reliability (mean accuracy and spammer share) and redundancy,
aggregating the *same* collected answers with every method.  The shape to
reproduce: all methods tie on reliable crowds; EM-family methods win as the
pool degrades and redundancy rises (they have more evidence to estimate
per-worker quality from).
"""

from __future__ import annotations

import pytest

from repro import CrowdContext
from repro.config import ReprowdConfig, StorageConfig, WorkerPoolConfig
from repro.datasets import make_image_label_dataset
from repro.presenters import ImageLabelPresenter
from repro.simulation import ExperimentRunner

NUM_IMAGES = 120


def collect_and_aggregate(
    mean_accuracy: float, spammer_fraction: float, redundancy: int, seed: int = 7
) -> dict:
    dataset = make_image_label_dataset(num_images=NUM_IMAGES, seed=seed)
    config = ReprowdConfig(
        storage=StorageConfig(engine="memory"),
        workers=WorkerPoolConfig(
            size=20,
            mean_accuracy=mean_accuracy,
            accuracy_spread=0.05,
            spammer_fraction=spammer_fraction,
            seed=seed,
        ),
    )
    cc = CrowdContext(config=config, ground_truth=dataset.ground_truth)
    data = (
        cc.CrowdData(dataset.images, "qc")
        .set_presenter(ImageLabelPresenter())
        .publish_task(n_assignments=redundancy)
        .get_result()
    )
    truth = {index: dataset.labels[url] for index, url in enumerate(dataset.images)}
    row = {
        "worker_accuracy": mean_accuracy,
        "spammers": spammer_fraction,
        "redundancy": redundancy,
    }
    for method in ("mv", "wmv", "em", "glad"):
        data.quality_control(method, column=method)
        row[method] = round(data.last_aggregation.accuracy_against(truth), 3)
    cc.close()
    return row


def test_quality_vs_worker_reliability(benchmark, record_table):
    """Headline: one mid-reliability condition, then the full reliability sweep."""
    result = benchmark.pedantic(
        collect_and_aggregate, args=(0.8, 0.2, 5), rounds=1, iterations=1
    )
    assert 0.5 <= result["mv"] <= 1.0

    runner = ExperimentRunner("E6 — aggregation accuracy vs. worker-pool reliability (120 images, r=5)")
    conditions = [
        (0.95, 0.0), (0.85, 0.0), (0.75, 0.0), (0.65, 0.0),
        (0.85, 0.2), (0.85, 0.4), (0.85, 0.6),
    ]
    sweep = runner.run(
        [{"accuracy": a, "spammers": s} for a, s in conditions],
        lambda point: collect_and_aggregate(point["accuracy"], point["spammers"], 5),
    )
    record_table(
        "E6_quality_vs_reliability",
        sweep.to_table(columns=["worker_accuracy", "spammers", "redundancy", "mv", "wmv", "em", "glad"]),
    )


def test_quality_vs_redundancy(benchmark, record_table):
    """Ablation: accuracy vs. redundancy for a noisy pool with spammers."""
    result = benchmark.pedantic(
        collect_and_aggregate, args=(0.8, 0.3, 3), rounds=1, iterations=1
    )
    assert result["redundancy"] == 3

    runner = ExperimentRunner("E6b — aggregation accuracy vs. redundancy (accuracy 0.8, 30% spammers)")
    sweep = runner.run(
        [{"redundancy": r} for r in (1, 3, 5, 7, 9, 11)],
        lambda point: collect_and_aggregate(0.8, 0.3, point["redundancy"]),
    )
    record_table(
        "E6b_quality_vs_redundancy",
        sweep.to_table(columns=["redundancy", "mv", "wmv", "em", "glad"]),
    )
