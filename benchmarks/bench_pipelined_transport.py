"""E12: pipelined async transport — publish+collect under injected latency.

Every call between client and server pays a wire round-trip in a real
deployment.  The serial client serialises those round-trips: publish is one
``create_tasks`` call, but collection walks ``ceil(tasks / page_size)``
cursor-chained pages, one blocking call each — throughput is gated by
transport latency, not storage.  The pipelined client keeps
``max_in_flight`` calls on the wire: publish splits into in-flight
sub-batches whose latencies overlap the server's storage work, and
collection pumps offset-addressed slices concurrently instead of chaining
cursors.

This benchmark injects a fixed per-call latency
(:class:`~repro.platform.transport.LatencyInjectingTransport`) under both
clients and runs the same experiment — publish 10k tasks, simulate the
crowd, collect every answer — asserting identical contents and, at full
scale, **>= 3x publish+collect throughput** for the pipelined client.

A second table prices the durable store's write-behind run-append batch
(``PlatformConfig(append_batch_size=N)``, the ROADMAP's "write-ahead batch
for simulate_work"): the same simulation against one SQLite file with
appends written through one-per-task vs coalesced per 64 runs.

Run ``pytest benchmarks/bench_pipelined_transport.py -q --bench-scale=smoke``
for a seconds-long sanity pass at toy scale.
"""

from __future__ import annotations

import os

import pytest

from repro.config import PlatformConfig, WorkerPoolConfig
from repro.platform.client import PipelinedClient, PlatformClient
from repro.platform.server import PlatformServer
from repro.platform.store import DurableTaskStore
from repro.platform.transport import LatencyInjectingTransport
from repro.simulation import ExperimentRunner
from repro.storage import SqliteEngine
from repro.utils.timing import Stopwatch
from repro.workers.pool import WorkerPool

from record import write_trajectory

pytestmark = pytest.mark.slow

NUM_TASKS = 10_000
SMOKE_TASKS = 300
PAGE_SIZE = 250
SMOKE_PAGE_SIZE = 25
LATENCY_SECONDS = 0.005
REDUNDANCY = 1
MAX_IN_FLIGHT = 8
MIN_SPEEDUP = 3.0


def build_client(mode: str, latency: float, store=None) -> PlatformClient:
    """One client of the requested *mode* over a latency-injected transport."""
    pool = WorkerPool.from_config(WorkerPoolConfig(size=50, mean_accuracy=0.9, seed=7))
    server = PlatformServer(
        worker_pool=pool, config=PlatformConfig(seed=7), store=store
    )
    transport = LatencyInjectingTransport(latency_seconds=latency)
    if mode == "pipelined":
        return PipelinedClient(
            server,
            transport=transport,
            max_in_flight=MAX_IN_FLIGHT,
            batch_size=PAGE_SIZE * 4,
        )
    return PlatformClient(server, transport=transport)


def run_mode(mode: str, num_tasks: int, page_size: int, latency: float) -> dict:
    """Publish, simulate and collect *num_tasks* tasks with one client mode."""
    client = build_client(mode, latency)
    project = client.create_project("pipeline-bench")
    specs = [
        {
            "info": {"url": f"img-{i:05d}", "_true_answer": "Yes"},
            "n_assignments": REDUNDANCY,
            "dedup_key": f"obj-{i:05d}",
        }
        for i in range(num_tasks)
    ]

    with Stopwatch() as publish:
        tasks = client.create_tasks(project.project_id, specs)
    created = client.simulate_work(project_id=project.project_id)
    with Stopwatch() as collect:
        collected = [
            (task_id, len(runs))
            for task_id, runs in client.iter_task_runs_for_project(
                project.project_id, page_size
            )
        ]

    assert len(tasks) == num_tasks
    assert created == num_tasks * REDUNDANCY
    assert len(collected) == num_tasks
    assert all(count == REDUNDANCY for _, count in collected)
    total = publish.elapsed + collect.elapsed
    client.close()
    return {
        "mode": mode,
        "tasks": num_tasks,
        "latency_ms": latency * 1000,
        "publish_seconds": round(publish.elapsed, 3),
        "collect_seconds": round(collect.elapsed, 3),
        "publish_collect_seconds": round(total, 3),
        "ktasks_per_s": round(num_tasks / max(total, 1e-9) / 1000, 2),
        "_total": total,
        "_collected": collected,
    }


def run_append_batch(batch_size: int, base_dir: str, num_tasks: int) -> dict:
    """Simulate *num_tasks* answers on SQLite with one append batch size."""
    os.makedirs(base_dir, exist_ok=True)
    store = DurableTaskStore(
        SqliteEngine(os.path.join(base_dir, "platform.db")),
        owns_engine=True,
        append_batch_size=batch_size,
    )
    client = build_client("direct", latency=0.0, store=store)
    project = client.create_project("append-bench")
    client.create_tasks(
        project.project_id,
        [
            {
                "info": {"url": f"img-{i:05d}", "_true_answer": "Yes"},
                "n_assignments": REDUNDANCY,
                "dedup_key": f"obj-{i:05d}",
            }
            for i in range(num_tasks)
        ],
    )
    with Stopwatch() as simulate:
        created = client.simulate_work(project_id=project.project_id)
    assert created == num_tasks * REDUNDANCY
    assert client.is_project_complete(project.project_id)
    client.server.close()
    return {
        "append_batch_size": batch_size,
        "tasks": num_tasks,
        "simulate_seconds": round(simulate.elapsed, 3),
        "simulate_ktasks_per_s": round(num_tasks / max(simulate.elapsed, 1e-9) / 1000, 2),
    }


def test_pipelined_vs_serial_throughput(record_table, bench_scale):
    smoke = bench_scale == "smoke"
    num_tasks = SMOKE_TASKS if smoke else NUM_TASKS
    page_size = SMOKE_PAGE_SIZE if smoke else PAGE_SIZE

    serial = run_mode("serial", num_tasks, page_size, LATENCY_SECONDS)
    pipelined = run_mode("pipelined", num_tasks, page_size, LATENCY_SECONDS)

    # Identical work before any speed claim: same tasks, same answer counts.
    assert serial.pop("_collected") == pipelined.pop("_collected")
    speedup = serial.pop("_total") / max(pipelined.pop("_total"), 1e-9)
    for row in (serial, pipelined):
        row["speedup_vs_serial"] = round(
            serial["publish_collect_seconds"]
            / max(row["publish_collect_seconds"], 1e-9),
            2,
        )

    runner = ExperimentRunner(
        f"E12 — pipelined vs serial transport ({num_tasks} tasks, "
        f"{LATENCY_SECONDS * 1000:.0f}ms/call latency, page_size {page_size}, "
        f"max_in_flight {MAX_IN_FLIGHT})"
    )
    sweep = runner.run([{}], lambda point: {})
    sweep.rows = [serial, pipelined]
    record_table(
        "E12_pipelined_transport",
        sweep.to_table(
            columns=[
                "mode",
                "tasks",
                "latency_ms",
                "publish_seconds",
                "collect_seconds",
                "publish_collect_seconds",
                "ktasks_per_s",
                "speedup_vs_serial",
            ]
        ),
    )
    if not smoke:
        assert speedup >= MIN_SPEEDUP, (
            f"pipelined transport is only {speedup:.2f}x over serial "
            f"(required >= {MIN_SPEEDUP}x)"
        )
        # The trajectory file is a committed artifact tracking full-scale
        # numbers across PRs; a toy-scale smoke pass must not clobber it.
        write_trajectory(
            "E12",
            {
                "scale": bench_scale,
                "rows": [serial, pipelined],
                "speedup": round(speedup, 2),
            },
        )


def test_append_batch_amortisation(record_table, tmp_path, bench_scale):
    smoke = bench_scale == "smoke"
    num_tasks = 100 if smoke else 5_000
    rows = [
        run_append_batch(batch, str(tmp_path / f"batch-{batch}"), num_tasks)
        for batch in (1, 64)
    ]
    runner = ExperimentRunner(
        f"E12b — durable run-append batch (sqlite, {num_tasks} tasks, "
        f"redundancy {REDUNDANCY})"
    )
    sweep = runner.run([{}], lambda point: {})
    sweep.rows = rows
    record_table(
        "E12b_append_batch",
        sweep.to_table(
            columns=[
                "append_batch_size",
                "tasks",
                "simulate_seconds",
                "simulate_ktasks_per_s",
            ]
        ),
    )
    if not smoke:
        # The trajectory file is a committed artifact tracking full-scale
        # numbers across PRs; a toy-scale smoke pass must not clobber it.
        write_trajectory("E12b", {"scale": bench_scale, "rows": rows})
