"""E10: adaptive redundancy and budget accounting.

Compares fixed redundancy against the adaptive policy (collect more answers
only for ambiguous items) at equal accuracy, and sweeps the confidence
threshold to show the cost/accuracy trade-off.  Dollar figures use the
budget tracker at $0.02 per assignment, the going micro-task rate.
"""

from __future__ import annotations

import pytest

from repro import AdaptivePolicy, BudgetTracker, CrowdContext
from repro.config import ReprowdConfig, StorageConfig, WorkerPoolConfig
from repro.datasets import make_image_label_dataset
from repro.operators import CrowdLabel
from repro.simulation import ExperimentRunner

NUM_IMAGES = 150
PRICE = 0.02


def make_context(seed: int = 7) -> CrowdContext:
    config = ReprowdConfig(
        storage=StorageConfig(engine="memory"),
        workers=WorkerPoolConfig(size=25, mean_accuracy=0.85, accuracy_spread=0.05, seed=seed),
    )
    return CrowdContext(config=config, budget=BudgetTracker(price_per_assignment=PRICE))


def run_fixed(redundancy: int, seed: int = 7) -> dict:
    dataset = make_image_label_dataset(num_images=NUM_IMAGES, seed=seed)
    context = make_context(seed)
    result = CrowdLabel(context, "fixed", n_assignments=redundancy).label(
        dataset.images, ground_truth=dataset.ground_truth
    )
    row = {
        "strategy": f"fixed(r={redundancy})",
        "answers": result.report.crowd_answers,
        "answers_per_item": result.report.extras["mean_answers_per_item"],
        "spend_usd": round(context.budget.spent, 2),
        "accuracy": round(result.accuracy_against(dataset.labels), 3),
    }
    context.close()
    return row


def run_adaptive(confidence_threshold: float, max_assignments: int = 7, seed: int = 7) -> dict:
    dataset = make_image_label_dataset(num_images=NUM_IMAGES, seed=seed)
    context = make_context(seed)
    policy = AdaptivePolicy(
        initial_assignments=2,
        max_assignments=max_assignments,
        confidence_threshold=confidence_threshold,
        extra_per_round=1,
    )
    result = CrowdLabel(context, "adaptive", adaptive=policy).label(
        dataset.images, ground_truth=dataset.ground_truth
    )
    row = {
        "strategy": f"adaptive(conf={confidence_threshold})",
        "answers": result.report.crowd_answers,
        "answers_per_item": result.report.extras["mean_answers_per_item"],
        "spend_usd": round(context.budget.spent, 2),
        "accuracy": round(result.accuracy_against(dataset.labels), 3),
    }
    context.close()
    return row


def test_adaptive_vs_fixed_redundancy(benchmark, record_table):
    """Headline: adaptive reaches fixed-r=5 accuracy at a fraction of the answers."""
    adaptive = benchmark.pedantic(run_adaptive, args=(0.75,), rounds=1, iterations=1)
    fixed = run_fixed(5)
    assert adaptive["answers"] < fixed["answers"]
    assert adaptive["accuracy"] >= fixed["accuracy"] - 0.05

    rows = [run_fixed(3), fixed, run_fixed(7), adaptive]
    runner = ExperimentRunner(f"E10 — fixed vs. adaptive redundancy ({NUM_IMAGES} images, $0.02/assignment)")
    sweep = runner.run([{}], lambda point: {})
    sweep.rows = rows
    record_table(
        "E10_adaptive_vs_fixed",
        sweep.to_table(columns=["strategy", "answers", "answers_per_item", "spend_usd", "accuracy"]),
    )


def test_adaptive_threshold_sweep(benchmark, record_table):
    """Ablation: the confidence threshold controls the cost/accuracy trade-off."""
    result = benchmark.pedantic(run_adaptive, args=(0.9,), rounds=1, iterations=1)
    assert result["answers"] > 0

    runner = ExperimentRunner("E10b — adaptive confidence-threshold sweep")
    sweep = runner.run(
        [{"threshold": t} for t in (0.6, 0.7, 0.8, 0.9, 0.95)],
        lambda point: run_adaptive(point["threshold"]),
    )
    record_table(
        "E10b_threshold_sweep",
        sweep.to_table(columns=["threshold", "answers", "answers_per_item", "spend_usd", "accuracy"]),
    )
