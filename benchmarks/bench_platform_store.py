"""E10: platform task-store backends — publish/simulate/collect throughput.

The platform server's state now lives behind a pluggable
:class:`~repro.platform.store.TaskStore`.  This benchmark runs the same
10k-task experiment — one ``create_tasks`` publish, one ``simulate_work``
pass, one streaming collection — against four backends:

* ``memory`` — the in-process dict store (the seed behaviour, the ceiling);
* ``durable-memory`` — the durable mapping measured without disk, isolating
  the serialisation + namespacing overhead;
* ``durable-sqlite`` — platform state in one SQLite file (restartable);
* ``durable-sharded`` — platform state hash-partitioned over 4 SQLite shard
  files with per-shard parallel batch writes.

Contents are asserted identical across backends (same task count, same
per-task answer count), so the rows compare equal work.  What the table
makes measurable is the price of a restartable platform: publish stays
batched (O(1) engine round-trips), while ``simulate_work`` pays one durable
append per task — the trade a crash/recovery scenario buys with.

Run ``pytest benchmarks/bench_platform_store.py -q --bench-scale=smoke`` for
a seconds-long sanity pass at toy scale.
"""

from __future__ import annotations

import os

import pytest

from repro.config import PlatformConfig, WorkerPoolConfig
from repro.platform.client import PlatformClient
from repro.platform.server import PlatformServer
from repro.platform.store import DurableTaskStore, MemoryTaskStore
from repro.simulation import ExperimentRunner
from repro.storage import MemoryEngine, ShardedEngine, SqliteEngine
from repro.utils.timing import Stopwatch
from repro.workers.pool import WorkerPool

from record import write_trajectory

pytestmark = pytest.mark.slow

NUM_TASKS = 10_000
SMOKE_TASKS = 200
PAGE_SIZE = 500
REDUNDANCY = 1
BACKENDS = ("memory", "durable-memory", "durable-sqlite", "durable-sharded")


def build_store(backend: str, base_dir: str):
    """Build one task-store backend (owning its engine when durable)."""
    if backend == "memory":
        return MemoryTaskStore()
    if backend == "durable-memory":
        return DurableTaskStore(MemoryEngine(), owns_engine=True)
    if backend == "durable-sqlite":
        return DurableTaskStore(
            SqliteEngine(os.path.join(base_dir, "platform.db")), owns_engine=True
        )
    if backend == "durable-sharded":
        shards = [
            SqliteEngine(os.path.join(base_dir, f"platform-shard-{index:02d}.db"))
            for index in range(4)
        ]
        return DurableTaskStore(
            ShardedEngine(shards, shard_workers=4), owns_engine=True
        )
    raise ValueError(f"unknown backend {backend!r}")


def run_backend(backend: str, base_dir: str, num_tasks: int, page_size: int) -> dict:
    """Publish, simulate and collect *num_tasks* tasks on one backend."""
    pool = WorkerPool.from_config(WorkerPoolConfig(size=50, mean_accuracy=0.9, seed=7))
    server = PlatformServer(
        worker_pool=pool,
        config=PlatformConfig(seed=7),
        store=build_store(backend, base_dir),
    )
    client = PlatformClient(server)
    project = client.create_project("store-bench")
    specs = [
        {
            "info": {"url": f"img-{i:05d}", "_true_answer": "Yes"},
            "n_assignments": REDUNDANCY,
            "dedup_key": f"obj-{i:05d}",
        }
        for i in range(num_tasks)
    ]

    with Stopwatch() as publish:
        tasks = client.create_tasks(project.project_id, specs)
    with Stopwatch() as simulate:
        created = client.simulate_work(project_id=project.project_id)
    with Stopwatch() as collect:
        collected_runs = sum(
            len(runs)
            for _, runs in client.iter_task_runs_for_project(
                project.project_id, page_size
            )
        )

    assert len(tasks) == num_tasks
    assert created == num_tasks * REDUNDANCY
    assert collected_runs == num_tasks * REDUNDANCY
    row = {
        "backend": backend,
        "tasks": num_tasks,
        "publish_seconds": round(publish.elapsed, 3),
        "publish_ktasks_per_s": round(num_tasks / max(publish.elapsed, 1e-9) / 1000, 1),
        "simulate_seconds": round(simulate.elapsed, 3),
        "simulate_ktasks_per_s": round(num_tasks / max(simulate.elapsed, 1e-9) / 1000, 1),
        "collect_seconds": round(collect.elapsed, 3),
        "collect_ktasks_per_s": round(num_tasks / max(collect.elapsed, 1e-9) / 1000, 1),
    }
    server.close()
    return row


def test_platform_store_throughput(record_table, tmp_path, bench_scale):
    smoke = bench_scale == "smoke"
    num_tasks = SMOKE_TASKS if smoke else NUM_TASKS
    page_size = 50 if smoke else PAGE_SIZE
    rows = [
        run_backend(backend, str(tmp_path / backend), num_tasks, page_size)
        for backend in BACKENDS
    ]

    runner = ExperimentRunner(
        f"E10 — platform task-store backends ({num_tasks} tasks, redundancy "
        f"{REDUNDANCY}, page_size {page_size})"
    )
    sweep = runner.run([{}], lambda point: {})
    sweep.rows = rows
    record_table(
        "E10_platform_store",
        sweep.to_table(
            columns=[
                "backend",
                "tasks",
                "publish_seconds",
                "publish_ktasks_per_s",
                "simulate_seconds",
                "simulate_ktasks_per_s",
                "collect_seconds",
                "collect_ktasks_per_s",
            ]
        ),
    )
    if not smoke:
        # The trajectory file is a committed artifact tracking full-scale
        # numbers across PRs; a toy-scale smoke pass must not clobber it.
        write_trajectory("E10", {"scale": bench_scale, "rows": rows})
