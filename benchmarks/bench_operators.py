"""E9: the other crowdsourced operators built on CrowdData.

For sort / max / top-k / filter / count the benchmark reports the crowd cost
and the output quality against ground truth, demonstrating both the expected
cost ordering (max << top-k << sort; count << filter) and that every operator
inherits the sharable machinery (its crowd work is cached in CrowdData).
"""

from __future__ import annotations

import pytest

from repro import CrowdContext
from repro.config import ReprowdConfig, StorageConfig, WorkerPoolConfig
from repro.datasets import make_image_label_dataset, make_ranking_dataset
from repro.operators import CrowdCount, CrowdFilter, CrowdMax, CrowdSort, CrowdTopK
from repro.simulation import ExperimentRunner

RANKING = make_ranking_dataset(num_items=16, seed=9)
IMAGES = make_image_label_dataset(num_images=120, positive_fraction=0.4, seed=9)
TRUE_YES = sum(1 for label in IMAGES.labels.values() if label == "Yes")


def accurate_context(seed=9):
    config = ReprowdConfig(
        storage=StorageConfig(engine="memory"),
        workers=WorkerPoolConfig(size=25, mean_accuracy=0.95, accuracy_spread=0.03, seed=seed),
    )
    return CrowdContext(config=config)


def run_comparison_operators() -> list[dict]:
    items = list(RANKING.items)
    truth_ranking = RANKING.ranking()
    rows = []

    sort_result = CrowdSort(accurate_context(), "bench_sort").sort(
        items, ground_truth=RANKING.pair_ground_truth
    )
    rows.append(
        {
            "operator": "sort",
            "crowd_tasks": sort_result.report.crowd_tasks,
            "quality_metric": "kendall_tau",
            "quality": round(sort_result.kendall_tau(truth_ranking), 3),
        }
    )

    topk_result = CrowdTopK(accurate_context(), "bench_topk").top_k(
        items, 4, ground_truth=RANKING.pair_ground_truth
    )
    rows.append(
        {
            "operator": "top-4",
            "crowd_tasks": topk_result.report.crowd_tasks,
            "quality_metric": "recall@4",
            "quality": round(topk_result.recall_against(truth_ranking[:4]), 3),
        }
    )

    max_result = CrowdMax(accurate_context(), "bench_max").max(
        items, ground_truth=RANKING.pair_ground_truth
    )
    rows.append(
        {
            "operator": "max",
            "crowd_tasks": max_result.report.crowd_tasks,
            "quality_metric": "winner_correct",
            "quality": float(max_result.winner == truth_ranking[0]),
        }
    )
    return rows


def run_selection_operators() -> list[dict]:
    rows = []
    filter_result = CrowdFilter(accurate_context(), "bench_filter").filter(
        IMAGES.images, ground_truth=IMAGES.ground_truth
    )
    kept_correct = len(
        set(filter_result.kept) & {url for url, label in IMAGES.labels.items() if label == "Yes"}
    )
    rows.append(
        {
            "operator": "filter",
            "crowd_tasks": filter_result.report.crowd_tasks,
            "quality_metric": "recall_of_true_yes",
            "quality": round(kept_correct / TRUE_YES, 3),
        }
    )

    count_result = CrowdCount(accurate_context(), "bench_count", sample_size=30).count(
        IMAGES.images, ground_truth=IMAGES.ground_truth
    )
    rows.append(
        {
            "operator": "count (30-sample)",
            "crowd_tasks": count_result.report.crowd_tasks,
            "quality_metric": "relative_error",
            "quality": round(abs(count_result.estimate - TRUE_YES) / TRUE_YES, 3),
        }
    )
    return rows


def test_comparison_operator_costs(benchmark, record_table):
    """Headline: the cost ordering max < top-k < sort on 16 items."""
    rows = benchmark.pedantic(run_comparison_operators, rounds=1, iterations=1)
    by_name = {row["operator"]: row for row in rows}
    assert by_name["max"]["crowd_tasks"] < by_name["top-4"]["crowd_tasks"] < by_name["sort"]["crowd_tasks"]

    runner = ExperimentRunner("E9 — comparison operators on 16 items (accuracy-0.95 pool)")
    sweep = runner.run([{}], lambda point: {})
    sweep.rows = rows
    record_table(
        "E9_comparison_operators",
        sweep.to_table(columns=["operator", "crowd_tasks", "quality_metric", "quality"]),
    )


def test_selection_operator_costs(benchmark, record_table):
    """Headline: sampling count is an order of magnitude cheaper than filter."""
    rows = benchmark.pedantic(run_selection_operators, rounds=1, iterations=1)
    filter_row = next(row for row in rows if row["operator"] == "filter")
    count_row = next(row for row in rows if "count" in row["operator"])
    assert count_row["crowd_tasks"] * 3 <= filter_row["crowd_tasks"]

    runner = ExperimentRunner("E9b — selection operators on 120 images")
    sweep = runner.run([{}], lambda point: {})
    sweep.rows = rows
    record_table(
        "E9b_selection_operators",
        sweep.to_table(columns=["operator", "crowd_tasks", "quality_metric", "quality"]),
    )
