"""E9: sharded storage + streaming collection at scale.

Part 1 — storage: the same ``put_many`` + full-scan + paginated-scan workload
runs against one SQLite file and against :class:`ShardedEngine` over N SQLite
shard files (N = 4 and 8), reporting throughput per configuration.  Sharding
buys write/scan parallelism *across files* (independent shard transactions,
per-shard pagination) at the cost of an envelope decode and a k-way merge on
read; the table makes that trade measurable rather than assumed.  Contents
are asserted identical across configurations, so the numbers compare equal
work.

Part 2 — streaming: a 10k-task project is collected through
``iter_task_runs_for_project``; the harness records the largest page the
pipeline ever held and asserts it stays bounded by ``page_size`` — the
"projects larger than memory" guarantee, observed rather than claimed.

Run ``pytest benchmarks/bench_sharded_scan.py -q --bench-scale=smoke`` for a
seconds-long sanity pass at toy scale.
"""

from __future__ import annotations

import os

import pytest

from repro.config import PlatformConfig, WorkerPoolConfig
from repro.platform.client import PlatformClient
from repro.platform.server import PlatformServer
from repro.simulation import ExperimentRunner
from repro.storage import ShardedEngine, SqliteEngine
from repro.utils.timing import Stopwatch
from repro.workers.pool import WorkerPool

from record import write_trajectory

pytestmark = pytest.mark.slow

NUM_RECORDS = 20_000
SMOKE_RECORDS = 400
STREAM_TASKS = 10_000
SMOKE_STREAM_TASKS = 300
PAGE_SIZE = 500
SCAN_PAGE = 512


def build_engine(base_dir: str, shards: int, workers: int = 0):
    """One SQLite file for ``shards == 1``, else a sharded engine over N files."""
    if shards == 1:
        return SqliteEngine(os.path.join(base_dir, "single.db"))
    return ShardedEngine(
        [
            SqliteEngine(
                os.path.join(base_dir, f"shard-{shards}-w{workers}-{index:02d}.db")
            )
            for index in range(shards)
        ],
        shard_workers=workers,
    )


def run_storage_config(
    base_dir: str, shards: int, num_records: int, workers: int = 0
) -> dict:
    """Load, scan and page one configuration; return its throughput row."""
    engine = build_engine(base_dir, shards, workers)
    engine.create_table("bench")
    items = [(f"key-{index:08d}", {"payload": index}) for index in range(num_records)]

    with Stopwatch() as put:
        engine.put_many("bench", items)
    with Stopwatch() as scan:
        scanned = sum(1 for _ in engine.scan("bench"))
    with Stopwatch() as paged:
        walked, cursor = 0, None
        while True:
            page = list(engine.scan("bench", limit=SCAN_PAGE, start_after=cursor))
            walked += len(page)
            if len(page) < SCAN_PAGE:
                break
            cursor = page[-1].key

    assert scanned == num_records and walked == num_records
    assert [r.key for r in engine.scan("bench", limit=3)] == [
        "key-00000000",
        "key-00000001",
        "key-00000002",
    ]
    row = {
        "shards": shards,
        "workers": workers,
        "records": num_records,
        "put_many_seconds": round(put.elapsed, 3),
        "put_krows_per_s": round(num_records / max(put.elapsed, 1e-9) / 1000, 1),
        "scan_seconds": round(scan.elapsed, 3),
        "scan_krows_per_s": round(num_records / max(scan.elapsed, 1e-9) / 1000, 1),
        "paged_scan_seconds": round(paged.elapsed, 3),
    }
    engine.close()
    return row


def run_streaming_collection(num_tasks: int, page_size: int) -> dict:
    """Collect a *num_tasks* project page by page; report peak residency."""
    pool = WorkerPool.from_config(WorkerPoolConfig(size=50, mean_accuracy=0.9, seed=7))
    client = PlatformClient(PlatformServer(worker_pool=pool, config=PlatformConfig(seed=7)))
    project = client.create_project("stream-bench")
    client.create_tasks(
        project.project_id,
        [
            {"info": {"url": f"img-{i:05d}", "_true_answer": "Yes"}, "n_assignments": 1}
            for i in range(num_tasks)
        ],
    )
    client.simulate_work(project_id=project.project_id)

    peak_tasks_resident = 0
    peak_runs_resident = 0
    collected = 0
    with Stopwatch() as collect:
        cursor = None
        while True:
            page = client.get_task_runs_page(project.project_id, page_size, start_after=cursor)
            peak_tasks_resident = max(peak_tasks_resident, len(page))
            peak_runs_resident = max(
                peak_runs_resident, sum(len(runs) for _, runs in page)
            )
            collected += len(page)
            if len(page) < page_size:
                break
            cursor = page[-1][0]

    assert collected == num_tasks
    assert peak_tasks_resident <= page_size, (
        f"streaming held {peak_tasks_resident} tasks resident, page_size={page_size}"
    )
    return {
        "tasks": num_tasks,
        "page_size": page_size,
        "peak_tasks_resident": peak_tasks_resident,
        "peak_runs_resident": peak_runs_resident,
        "collect_seconds": round(collect.elapsed, 3),
        "ktasks_per_s": round(num_tasks / max(collect.elapsed, 1e-9) / 1000, 1),
    }


def test_sharded_scan_throughput(record_table, tmp_path, bench_scale):
    smoke = bench_scale == "smoke"
    num_records = SMOKE_RECORDS if smoke else NUM_RECORDS
    # workers=0 is the serial baseline; workers=N fans each put_many batch
    # out as one thread per shard — the before/after pair for the same N.
    configurations = [(1, 0), (4, 0), (4, 4), (8, 0), (8, 8)]
    rows = [
        run_storage_config(str(tmp_path), shards, num_records, workers)
        for shards, workers in configurations
    ]

    runner = ExperimentRunner(
        f"E9 — sharded vs single-file put_many/scan ({num_records} records, sqlite "
        "shards, serial vs per-shard-parallel writes)"
    )
    sweep = runner.run([{}], lambda point: {})
    sweep.rows = rows
    record_table(
        "E9_sharded_scan",
        sweep.to_table(
            columns=[
                "shards",
                "workers",
                "records",
                "put_many_seconds",
                "put_krows_per_s",
                "scan_seconds",
                "scan_krows_per_s",
                "paged_scan_seconds",
            ]
        ),
    )
    if not smoke:
        # The trajectory file is a committed artifact tracking full-scale
        # numbers across PRs; a toy-scale smoke pass must not clobber it.
        write_trajectory("E9", {"scale": bench_scale, "rows": rows})


def test_streaming_collection_bounded_residency(record_table, bench_scale):
    smoke = bench_scale == "smoke"
    num_tasks = SMOKE_STREAM_TASKS if smoke else STREAM_TASKS
    page_size = 50 if smoke else PAGE_SIZE
    row = run_streaming_collection(num_tasks, page_size)

    runner = ExperimentRunner(
        f"E9 — streaming collection ({num_tasks} tasks, page_size {page_size}, "
        f"peak resident {row['peak_tasks_resident']} tasks)"
    )
    sweep = runner.run([{}], lambda point: {})
    sweep.rows = [row]
    record_table(
        "E9_streaming_collection",
        sweep.to_table(
            columns=[
                "tasks",
                "page_size",
                "peak_tasks_resident",
                "peak_runs_resident",
                "collect_seconds",
                "ktasks_per_s",
            ]
        ),
    )
    if not smoke:
        # The trajectory file is a committed artifact tracking full-scale
        # numbers across PRs; a toy-scale smoke pass must not clobber it.
        write_trajectory("E9b", {"scale": bench_scale, "rows": [row]})
