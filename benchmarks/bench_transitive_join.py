"""E5: transitivity-aware join vs. plain CrowdER (Wang et al. 2013).

Reports crowd-task savings from transitive inference as duplicate-cluster
size grows, plus the ablation the paper's design calls out: asking pairs in
descending-similarity order (likely matches first, maximising inference)
versus random order.
"""

from __future__ import annotations

import pytest

from repro import CrowdContext
from repro.datasets import make_entity_resolution_dataset
from repro.operators import CrowdJoin, TransitiveCrowdJoin
from repro.simulation import ExperimentRunner, pair_metrics


def compare_joins(num_entities: int, cluster_size: int, ordering: str = "similarity", seed: int = 7) -> dict:
    dataset = make_entity_resolution_dataset(
        num_entities=num_entities, duplicates_per_entity=cluster_size, seed=seed
    )
    plain = CrowdJoin(CrowdContext.in_memory(seed=seed), "plain").join(
        dataset.records, ground_truth=dataset.pair_ground_truth
    )
    transitive = TransitiveCrowdJoin(
        CrowdContext.in_memory(seed=seed), "transitive", ordering=ordering
    ).join(dataset.records, ground_truth=dataset.pair_ground_truth)
    saved = plain.report.crowd_tasks - transitive.report.crowd_tasks
    return {
        "cluster_size": cluster_size,
        "records": len(dataset),
        "crowder_tasks": plain.report.crowd_tasks,
        "transitive_tasks": transitive.report.crowd_tasks,
        "inferred": transitive.report.inferred,
        "saved_pct": round(100.0 * saved / max(1, plain.report.crowd_tasks), 1),
        "crowder_f1": round(pair_metrics(plain.matches, dataset.matching_pairs)["f1"], 3),
        "transitive_f1": round(pair_metrics(transitive.matches, dataset.matching_pairs)["f1"], 3),
    }


def test_transitive_savings_vs_cluster_size(benchmark, record_table):
    """Headline: savings grow with cluster size, quality stays flat."""
    result = benchmark.pedantic(compare_joins, args=(20, 3), rounds=1, iterations=1)
    assert result["transitive_tasks"] <= result["crowder_tasks"]

    runner = ExperimentRunner("E5 — transitive inference savings vs. duplicate-cluster size (~60 records)")
    sweep = runner.run(
        [{"cluster_size": size} for size in (2, 3, 4, 5, 6)],
        lambda point: compare_joins(60 // point["cluster_size"], point["cluster_size"]),
    )
    record_table(
        "E5_transitive_savings",
        sweep.to_table(
            columns=[
                "cluster_size", "records", "crowder_tasks", "transitive_tasks",
                "inferred", "saved_pct", "crowder_f1", "transitive_f1",
            ]
        ),
    )


def test_transitive_ordering_ablation(benchmark, record_table):
    """Ablation: similarity-descending ordering vs. random ordering."""
    result = benchmark.pedantic(
        compare_joins, args=(15, 4), kwargs={"ordering": "similarity"}, rounds=1, iterations=1
    )
    assert result["inferred"] >= 0

    rows = []
    for ordering in ("similarity", "random"):
        row = compare_joins(15, 4, ordering=ordering)
        row["ordering"] = ordering
        rows.append(row)
    runner = ExperimentRunner("E5b — pair-ordering ablation (60 records, cluster size 4)")
    sweep = runner.run([{}], lambda point: {})
    sweep.rows = rows
    record_table(
        "E5b_ordering_ablation",
        sweep.to_table(columns=["ordering", "transitive_tasks", "inferred", "transitive_f1"]),
    )
