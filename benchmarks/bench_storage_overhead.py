"""E7: the price of reproducibility — storage-engine overhead.

The sharable guarantee costs one durable write per published task and one per
collected result.  This benchmark measures raw engine write/read throughput
for every engine and the end-to-end experiment time with each engine backing
the cache, so the overhead of durability is visible in absolute terms.
"""

from __future__ import annotations

import pytest

from repro import CrowdContext
from repro.config import ReprowdConfig, StorageConfig, WorkerPoolConfig
from repro.datasets import make_image_label_dataset
from repro.presenters import ImageLabelPresenter
from repro.simulation import ExperimentRunner
from repro.storage import LogStructuredEngine, MemoryEngine, SqliteEngine
from repro.utils.timing import Stopwatch

NUM_RECORDS = 2000


def make_engine(kind: str, tmp_path):
    if kind == "memory":
        return MemoryEngine()
    if kind == "sqlite":
        return SqliteEngine(str(tmp_path / f"{kind}.db"))
    return LogStructuredEngine(str(tmp_path / kind), snapshot_every=500)


def engine_throughput(kind: str, tmp_path) -> dict:
    engine = make_engine(kind, tmp_path)
    engine.create_table("bench")
    payload = {"task_id": 1, "answers": ["Yes", "No", "Yes"], "published_at": 12.5}
    with Stopwatch() as write_timer:
        for index in range(NUM_RECORDS):
            engine.put("bench", f"key{index}", payload)
    with Stopwatch() as read_timer:
        for index in range(NUM_RECORDS):
            engine.get("bench", f"key{index}")
    engine.close()
    return {
        "engine": kind,
        "writes_per_sec": int(NUM_RECORDS / max(write_timer.elapsed, 1e-9)),
        "reads_per_sec": int(NUM_RECORDS / max(read_timer.elapsed, 1e-9)),
    }


def end_to_end_experiment(kind: str, tmp_path, num_images: int = 300) -> dict:
    dataset = make_image_label_dataset(num_images=num_images, seed=3)
    path = str(tmp_path / f"e2e_{kind}.db") if kind != "memory" else ":memory:"
    config = ReprowdConfig(
        storage=StorageConfig(engine=kind, path=path),
        workers=WorkerPoolConfig(size=20, seed=3),
    )
    with Stopwatch() as timer:
        cc = CrowdContext(config=config, ground_truth=dataset.ground_truth)
        (
            cc.CrowdData(dataset.images, "overhead")
            .set_presenter(ImageLabelPresenter())
            .publish_task(n_assignments=3)
            .get_result()
            .mv()
        )
        cc.close()
    return {"engine": kind, "images": num_images, "experiment_seconds": round(timer.elapsed, 3)}


def test_engine_write_read_throughput(benchmark, record_table, tmp_path):
    """Headline: SQLite throughput (the default engine Bob actually shares)."""
    result = benchmark.pedantic(engine_throughput, args=("sqlite", tmp_path), rounds=1, iterations=1)
    assert result["writes_per_sec"] > 0

    rows = [engine_throughput(kind, tmp_path) for kind in ("memory", "sqlite", "log")]
    runner = ExperimentRunner(f"E7 — storage-engine throughput ({NUM_RECORDS} task-sized records)")
    sweep = runner.run([{}], lambda point: {})
    sweep.rows = rows
    record_table("E7_storage_throughput", sweep.to_table(columns=["engine", "writes_per_sec", "reads_per_sec"]))


def test_end_to_end_overhead_per_engine(benchmark, record_table, tmp_path):
    """The durability overhead visible at the whole-experiment level."""
    result = benchmark.pedantic(
        end_to_end_experiment, args=("sqlite", tmp_path), rounds=1, iterations=1
    )
    assert result["experiment_seconds"] > 0

    rows = [end_to_end_experiment(kind, tmp_path) for kind in ("memory", "sqlite", "log")]
    runner = ExperimentRunner("E7b — end-to-end experiment time per engine (300 images, r=3)")
    sweep = runner.run([{}], lambda point: {})
    sweep.rows = rows
    record_table("E7b_end_to_end_overhead", sweep.to_table(columns=["engine", "images", "experiment_seconds"]))
