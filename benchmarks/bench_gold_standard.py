"""E11: gold-standard questions — paying a little to learn who to trust.

Injects known-answer (gold) questions into a labeling workload run against a
spammer-heavy pool, estimates each worker's accuracy from the gold questions
alone, and compares plain majority vote against (a) majority vote with failed
workers filtered out and (b) weighted vote using the gold-estimated
accuracies.  The gold overhead (extra tasks published) is reported alongside
the accuracy gain.
"""

from __future__ import annotations

import pytest

from repro import CrowdContext
from repro.config import ReprowdConfig, StorageConfig, WorkerPoolConfig
from repro.datasets import make_image_label_dataset
from repro.presenters import ImageLabelPresenter
from repro.quality import (
    GoldStandard,
    MajorityVoteAggregator,
    WeightedVoteAggregator,
    inject_gold,
)
from repro.simulation import ExperimentRunner

NUM_IMAGES = 120
NUM_GOLD = 20
REDUNDANCY = 5


def run_condition(spammer_fraction: float, seed: int = 23) -> dict:
    dataset = make_image_label_dataset(num_images=NUM_IMAGES, seed=seed)
    gold_dataset = make_image_label_dataset(num_images=NUM_GOLD, seed=seed + 1000)
    combined, gold_positions = inject_gold(
        dataset.images,
        {url: gold_dataset.labels[url] for url in gold_dataset.images},
        every=NUM_IMAGES // NUM_GOLD,
    )

    def truth(obj):
        return dataset.ground_truth(obj) or gold_dataset.ground_truth(obj)

    config = ReprowdConfig(
        storage=StorageConfig(engine="memory"),
        workers=WorkerPoolConfig(
            size=20, mean_accuracy=0.85, spammer_fraction=spammer_fraction, seed=seed
        ),
    )
    cc = CrowdContext(config=config, ground_truth=truth)
    data = (
        cc.CrowdData(combined, "gold_bench")
        .set_presenter(ImageLabelPresenter())
        .publish_task(n_assignments=REDUNDANCY)
        .get_result()
    )
    votes = {
        index: [(a["worker_id"], a["answer"]) for a in row["assignments"]]
        for index, row in enumerate(data.column("result"))
    }
    objects = data.column("object")
    real_truth = {
        index: dataset.labels[obj] for index, obj in enumerate(objects) if obj in dataset.labels
    }

    gold = GoldStandard(gold_positions, pass_threshold=0.6, min_gold_answers=2)
    report = gold.evaluate(votes)
    plain = MajorityVoteAggregator().aggregate(votes).accuracy_against(real_truth)
    filtered = MajorityVoteAggregator().aggregate(gold.filter_votes(votes, report)).accuracy_against(real_truth)
    weighted = (
        WeightedVoteAggregator(worker_accuracy=report.worker_accuracy, default_accuracy=0.55)
        .aggregate(votes)
        .accuracy_against(real_truth)
    )
    cc.close()
    return {
        "spammers": spammer_fraction,
        "gold_tasks": NUM_GOLD,
        "gold_overhead_pct": round(100.0 * NUM_GOLD / NUM_IMAGES, 1),
        "workers_flagged": len(report.failed_workers),
        "mv_plain": round(plain, 3),
        "mv_gold_filtered": round(filtered, 3),
        "wmv_gold_weights": round(weighted, 3),
    }


def test_gold_standard_filtering(benchmark, record_table):
    """Headline: gold filtering recovers accuracy under a 40%-spammer pool."""
    result = benchmark.pedantic(run_condition, args=(0.4,), rounds=1, iterations=1)
    assert result["mv_gold_filtered"] >= result["mv_plain"] - 0.03

    runner = ExperimentRunner(
        f"E11 — gold-standard quality control ({NUM_IMAGES} images + {NUM_GOLD} gold, r={REDUNDANCY})"
    )
    sweep = runner.run(
        [{"spammers": fraction} for fraction in (0.0, 0.2, 0.4, 0.6)],
        lambda point: run_condition(point["spammers"]),
    )
    record_table(
        "E11_gold_standard",
        sweep.to_table(
            columns=[
                "spammers", "gold_overhead_pct", "workers_flagged",
                "mv_plain", "mv_gold_filtered", "wmv_gold_weights",
            ]
        ),
    )
