"""E14: wire cluster — aggregate throughput over real sockets and processes.

Every earlier benchmark measured the platform through in-process calls; E14
is the first to pay the real boundary: ``python -m repro.platform.wire``
server processes, ``WireClient`` processes, length-prefixed JSON over TCP,
and one shared durable SQLite store arbitrating ids and dedup keys with
engine-level atomics.

Three questions, three tables:

* **Scaling** — aggregate publish+simulate+collect throughput as 1 → 8
  client processes drive one server (each client owns its own project; the
  work is embarrassingly parallel, so this measures the wire + dispatch +
  store serialisation cost, not contention).
* **Contention** — the same fixed fleet against 1 server vs 2 servers
  sharing one durable store (``--shared``): the CAS id leases and
  first-writer-wins dedup claims cost extra engine round-trips only when a
  race actually happens; the overhead ratio prices them.
* **Shared-dedup race** — every client publishes the *same* dedup keys to
  the *same* project through both servers; the assert (exactly one task
  per key, identical ids everywhere) is PR 6's acceptance criterion at
  benchmark scale.

Unlike the text-table benchmarks before it, E14 also writes
``benchmarks/results/BENCH_E14.json`` — a machine-readable trajectory file
meant to be committed, so future PRs can diff throughput against this one.

Run ``pytest benchmarks/bench_wire_cluster.py -q --bench-scale=smoke`` for a
seconds-long sanity pass at toy scale.
"""

from __future__ import annotations

import multiprocessing
import os
import time

import pytest

from repro.platform.wire import WireClient, spawn_server

from record import write_trajectory

pytestmark = [pytest.mark.slow, pytest.mark.wire]


SEED = 31
POOL_SIZE = 20
ACCURACY = 0.95
REDUNDANCY = 1

CLIENT_SWEEP = (1, 2, 4, 8)
SMOKE_CLIENT_SWEEP = (1, 2)
TASKS_PER_CLIENT = 120
SMOKE_TASKS_PER_CLIENT = 20
CONTENTION_CLIENTS = 4
SHARED_KEYS = 40
SMOKE_SHARED_KEYS = 12


def make_specs(prefix: str, count: int) -> list[dict]:
    return [
        {
            "info": {"url": f"{prefix}-{i:05d}", "_true_answer": "Yes"},
            "n_assignments": REDUNDANCY,
            "dedup_key": f"{prefix}-{i:05d}",
        }
        for i in range(count)
    ]


def _own_project_worker(index: int, addresses, tasks: int, queue) -> None:
    """One client process: full workflow against its own project."""
    host, port = addresses[index % len(addresses)]
    client = WireClient(host, port, max_retries=8, retry_backoff=0.05)
    try:
        project = client.create_project(f"e14-client-{index}")
        published = client.create_tasks(
            project.project_id, make_specs(f"c{index}", tasks)
        )
        created = client.simulate_work(project_id=project.project_id)
        runs = client.get_task_runs_for_project(project.project_id)
        assert len(published) == tasks
        assert created == tasks * REDUNDANCY
        assert len(runs) == tasks
        assert all(len(answers) == REDUNDANCY for answers in runs.values())
        queue.put({"index": index})
    except BaseException as exc:  # noqa: BLE001 - surfaced by the parent
        queue.put({"index": index, "error": repr(exc)})
    finally:
        client.close()


def _shared_keys_worker(index: int, addresses, keys: int, queue) -> None:
    """One client process racing the same dedup keys as every other."""
    host, port = addresses[index % len(addresses)]
    client = WireClient(host, port, max_retries=8, retry_backoff=0.05)
    try:
        project = client.create_project("e14-shared")
        published = client.create_tasks(project.project_id, make_specs("shared", keys))
        queue.put(
            {
                "index": index,
                "project_id": project.project_id,
                "task_ids": [task.task_id for task in published],
            }
        )
    except BaseException as exc:  # noqa: BLE001 - surfaced by the parent
        queue.put({"index": index, "error": repr(exc)})
    finally:
        client.close()


def _run_fleet(worker, count: int, addresses, payload: int) -> tuple[float, list[dict]]:
    """Run *count* client processes; return (wall seconds, their results)."""
    context = multiprocessing.get_context("fork")
    queue = context.Queue()
    processes = [
        context.Process(target=worker, args=(i, addresses, payload, queue))
        for i in range(count)
    ]
    start = time.perf_counter()
    for process in processes:
        process.start()
    results = [queue.get(timeout=300) for _ in processes]
    for process in processes:
        process.join(timeout=60)
    elapsed = time.perf_counter() - start
    errors = [r for r in results if "error" in r]
    assert not errors, errors
    return elapsed, results


def _spawn_cluster(base_dir: str, servers: int) -> list:
    os.makedirs(base_dir, exist_ok=True)
    db = os.path.join(base_dir, "platform.db")
    return [
        spawn_server(
            db=db,
            seed=SEED,
            pool_size=POOL_SIZE,
            accuracy=ACCURACY,
            shared=servers > 1,
            append_batch_size=8,
        )
        for _ in range(servers)
    ]


def run_scaling_point(base_dir: str, clients: int, tasks: int, servers: int = 1) -> dict:
    """Aggregate throughput of *clients* processes against *servers* servers."""
    handles = _spawn_cluster(base_dir, servers)
    try:
        addresses = [(handle.host, handle.port) for handle in handles]
        elapsed, _ = _run_fleet(_own_project_worker, clients, addresses, tasks)
    finally:
        for handle in handles:
            handle.stop()
    total = clients * tasks
    return {
        "clients": clients,
        "servers": servers,
        "tasks_per_client": tasks,
        "total_tasks": total,
        "seconds": round(elapsed, 3),
        "tasks_per_second": round(total / max(elapsed, 1e-9), 1),
    }


def run_contention_pair(base_dir: str, clients: int, tasks: int) -> dict:
    """The same fleet against 1 server vs 2 servers on one store."""
    one = run_scaling_point(os.path.join(base_dir, "one"), clients, tasks, servers=1)
    two = run_scaling_point(os.path.join(base_dir, "two"), clients, tasks, servers=2)
    return {
        "clients": clients,
        "tasks_per_client": tasks,
        "one_server_seconds": one["seconds"],
        "two_server_seconds": two["seconds"],
        "overhead_ratio": round(two["seconds"] / max(one["seconds"], 1e-9), 2),
    }


def run_shared_dedup_race(base_dir: str, clients: int, keys: int) -> dict:
    """Every client publishes the same keys through a 2-server cluster."""
    handles = _spawn_cluster(base_dir, servers=2)
    try:
        addresses = [(handle.host, handle.port) for handle in handles]
        elapsed, results = _run_fleet(_shared_keys_worker, clients, addresses, keys)
        # Acceptance: one project, one task per key, same ids everywhere.
        assert len({r["project_id"] for r in results}) == 1
        id_lists = {tuple(r["task_ids"]) for r in results}
        assert len(id_lists) == 1, "clients disagree on the winning tasks"
        assert len(set(results[0]["task_ids"])) == keys
        census_client = WireClient(*addresses[0])
        try:
            tasks = census_client.list_tasks(results[0]["project_id"])
            assert len(tasks) == keys, f"duplicates: {len(tasks)} tasks for {keys} keys"
        finally:
            census_client.close()
    finally:
        for handle in handles:
            handle.stop()
    return {
        "clients": clients,
        "shared_keys": keys,
        "seconds": round(elapsed, 3),
        "exactly_once": True,
    }


def format_table(rows: list[dict]) -> str:
    if not rows:
        return "(no rows)"
    columns = list(rows[0])
    widths = {
        column: max(len(column), *(len(str(row[column])) for row in rows))
        for column in columns
    }
    header = "  ".join(column.ljust(widths[column]) for column in columns)
    lines = [header, "-" * len(header)]
    for row in rows:
        lines.append(
            "  ".join(str(row[column]).ljust(widths[column]) for column in columns)
        )
    return "\n".join(lines)


def test_wire_cluster_throughput(tmp_path, bench_scale, record_table):
    smoke = bench_scale == "smoke"
    sweep = SMOKE_CLIENT_SWEEP if smoke else CLIENT_SWEEP
    tasks = SMOKE_TASKS_PER_CLIENT if smoke else TASKS_PER_CLIENT
    keys = SMOKE_SHARED_KEYS if smoke else SHARED_KEYS
    contention_clients = min(CONTENTION_CLIENTS, max(sweep))

    scaling = [
        run_scaling_point(str(tmp_path / f"scale-{clients}"), clients, tasks)
        for clients in sweep
    ]
    contention = run_contention_pair(
        str(tmp_path / "contention"), contention_clients, tasks
    )
    dedup = run_shared_dedup_race(str(tmp_path / "dedup"), contention_clients, keys)

    record_table(
        "e14_wire_cluster",
        "E14: wire cluster aggregate throughput (publish+simulate+collect)\n"
        + format_table(scaling)
        + "\n\n2-server contention overhead on one shared store\n"
        + format_table([contention])
        + "\n\nShared-dedup race across 2 servers\n"
        + format_table([dedup]),
    )
    if not smoke:
        # The trajectory file is a committed artifact tracking full-scale
        # numbers across PRs; a toy-scale smoke pass must not clobber it.
        write_trajectory(
            "E14",
            {
                "scale": bench_scale,
                "scaling": scaling,
                "contention": contention,
                "shared_dedup": dedup,
            }
        )

    # Structural guarantees hold at every scale; wall-clock asserts would
    # only flake on shared CI hardware.
    assert all(row["tasks_per_second"] > 0 for row in scaling)
    assert dedup["exactly_once"]
