"""E8: the bulk execution path — batched vs row-at-a-time publish+collect.

Row-at-a-time is the seed implementation: one ``StorageEngine.put`` and one
``PlatformClient.create_task`` / ``get_task_runs`` round-trip per row.
Batched is the bulk path this table of sizes exists to justify: one
``get_many``/``put_many`` against the cache and one ``create_tasks`` /
``get_task_runs_for_project`` call per verb.  Both modes run the identical
workload (publish 5k tasks, simulate the crowd untimed, collect 5k results)
against the SQLite engine — the default durable engine Bob actually shares —
and must end with identical cache contents.  The acceptance floor is a 3x
speedup for publish+collect combined.

Run ``make bench-smoke`` (or ``--bench-scale=smoke``) for a seconds-long
sanity pass at 60 objects; the speedup floor is only asserted at full scale.
"""

from __future__ import annotations

import os

import pytest

from repro.config import PlatformConfig, WorkerPoolConfig
from repro.core.cache import FaultRecoveryCache
from repro.platform.client import PlatformClient
from repro.platform.server import PlatformServer
from repro.presenters import ImageLabelPresenter
from repro.simulation import ExperimentRunner
from repro.storage import SqliteEngine
from repro.utils.timing import Stopwatch
from repro.workers.pool import WorkerPool

from record import write_trajectory

pytestmark = pytest.mark.slow

NUM_OBJECTS = 5000
SMOKE_OBJECTS = 60
REDUNDANCY = 3
SPEEDUP_FLOOR = 3.0


def _make_platform(seed: int = 7) -> PlatformClient:
    pool = WorkerPool.from_config(WorkerPoolConfig(size=50, mean_accuracy=0.9, seed=seed))
    return PlatformClient(PlatformServer(worker_pool=pool, config=PlatformConfig(seed=seed)))


def _descriptor(task, key: str, task_type: str) -> dict:
    return {
        "task_id": task.task_id,
        "project_id": task.project_id,
        "object_key": key,
        "n_assignments": task.n_assignments,
        "published_at": task.created_at,
        "task_type": task_type,
        "priority": 0.0,
    }


def _result(descriptor: dict, runs: list) -> dict:
    return {
        "object_key": descriptor["object_key"],
        "task_id": descriptor["task_id"],
        "published_at": descriptor["published_at"],
        "complete": len(runs) >= descriptor["n_assignments"],
        "assignments": [run.to_dict() for run in runs],
    }


def run_mode(base_dir: str, mode: str, objects: list) -> dict:
    """Publish and collect *objects* in *mode*; return timings and counters."""
    engine = SqliteEngine(os.path.join(base_dir, f"{mode}.db"))
    client = _make_platform()
    project = client.create_project(f"bulk-bench-{mode}")
    cache = FaultRecoveryCache(engine, f"bulk_bench_{mode}")
    presenter = ImageLabelPresenter()
    keys = [cache.object_key(obj, presenter.task_type) for obj in objects]

    with Stopwatch() as publish:
        if mode == "row":
            for obj, key in zip(objects, keys):
                if cache.get_task(key) is not None:
                    continue
                info = presenter.build_task_info(obj)
                task = client.create_task(project.project_id, info, n_assignments=REDUNDANCY)
                cache.put_task(key, _descriptor(task, key, presenter.task_type))
        else:
            cached = cache.get_tasks(keys)
            pending = [
                (obj, key)
                for obj, key, hit in zip(objects, keys, cached)
                if hit is None
            ]
            specs = [
                {
                    "info": presenter.build_task_info(obj),
                    "n_assignments": REDUNDANCY,
                    "dedup_key": key,
                }
                for obj, key in pending
            ]
            tasks = client.create_tasks(project.project_id, specs)
            cache.put_tasks(
                {
                    key: _descriptor(task, key, presenter.task_type)
                    for (_, key), task in zip(pending, tasks)
                }
            )

    # The crowd answering is identical work in both modes and is not what
    # this benchmark measures — run it outside the timed sections.
    client.simulate_work(project_id=project.project_id)

    with Stopwatch() as collect:
        if mode == "row":
            for key in keys:
                if cache.get_result(key) is not None:
                    continue
                descriptor = cache.get_task(key)
                runs = client.get_task_runs(descriptor["task_id"])
                cache.put_result(key, _result(descriptor, runs))
        else:
            cached = cache.get_results(keys)
            missing = [key for key, hit in zip(keys, cached) if hit is None]
            descriptors = cache.get_tasks(missing)
            runs_by_task = client.get_task_runs_for_project(project.project_id)
            cache.put_results(
                {
                    key: _result(descriptor, runs_by_task.get(descriptor["task_id"], []))
                    for key, descriptor in zip(missing, descriptors)
                }
            )

    stats = client.statistics()
    summary = {
        "mode": mode,
        "objects": len(objects),
        "publish_seconds": round(publish.elapsed, 3),
        "collect_seconds": round(collect.elapsed, 3),
        "total_seconds": round(publish.elapsed + collect.elapsed, 3),
        "tasks": stats["tasks"],
        "task_runs": stats["task_runs"],
        "cached_tasks": cache.task_count(),
        "cached_results": cache.result_count(),
    }
    engine.close()
    return summary


def run_comparison(base_dir: str, num_objects: int) -> dict:
    """Run both modes on *num_objects* and return their rows plus the speedup."""
    objects = [f"image-{index:05d}.png" for index in range(num_objects)]
    row = run_mode(base_dir, "row", objects)
    bulk = run_mode(base_dir, "bulk", objects)
    # Identical workload, identical durable outcome.
    for field in ("tasks", "task_runs", "cached_tasks", "cached_results"):
        assert row[field] == bulk[field], f"{field}: {row[field]} != {bulk[field]}"
    assert row["cached_tasks"] == num_objects
    assert row["cached_results"] == num_objects
    speedup = row["total_seconds"] / max(bulk["total_seconds"], 1e-9)
    return {"row": row, "bulk": bulk, "speedup": round(speedup, 2)}


def test_bulk_path_speedup(record_table, tmp_path, bench_scale):
    smoke = bench_scale == "smoke"
    num_objects = SMOKE_OBJECTS if smoke else NUM_OBJECTS
    comparison = run_comparison(str(tmp_path), num_objects)

    runner = ExperimentRunner(
        f"E8 — bulk vs row-at-a-time publish+collect "
        f"({num_objects} objects, sqlite, speedup {comparison['speedup']}x)"
    )
    sweep = runner.run([{}], lambda point: {})
    sweep.rows = [comparison["row"], comparison["bulk"]]
    record_table(
        "E8_bulk_path",
        sweep.to_table(
            columns=["mode", "objects", "publish_seconds", "collect_seconds", "total_seconds"]
        ),
    )
    if not smoke:
        assert comparison["speedup"] >= SPEEDUP_FLOOR, (
            f"batched path must be at least {SPEEDUP_FLOOR}x faster, "
            f"got {comparison['speedup']}x"
        )
        # The trajectory file is a committed artifact tracking full-scale
        # numbers across PRs; a toy-scale smoke pass must not clobber it.
        write_trajectory(
            "E8",
            {
                "scale": bench_scale,
                "rows": [comparison["row"], comparison["bulk"]],
                "speedup": comparison["speedup"],
            },
        )
