"""Machine-readable benchmark trajectories: one JSON file per experiment.

Every benchmark's full-scale run persists its headline numbers to
``benchmarks/results/BENCH_<name>.json`` through :func:`write_trajectory`.
The files are committed, so ``tools/bench_trend.py`` (``make bench-trend``)
can diff a fresh run against the last committed trajectory and fail the
build on a regression — the human-readable ``.txt`` tables remain for
reading, the JSON is for trend enforcement.

Smoke runs (``--bench-scale smoke``) must *not* call this: they would
clobber a committed full-scale trajectory with toy-scale numbers.
"""

from __future__ import annotations

import json
import os

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def trajectory_path(benchmark: str) -> str:
    """The canonical path of *benchmark*'s trajectory file."""
    return os.path.join(RESULTS_DIR, f"BENCH_{benchmark}.json")


def write_trajectory(benchmark: str, payload: dict) -> str:
    """Persist *payload* as ``BENCH_<benchmark>.json``; return the path.

    The payload is written with sorted keys and a trailing newline so
    reruns produce byte-identical files when the numbers agree, keeping
    the committed diffs readable.  A ``benchmark`` key is added when the
    payload does not carry one.
    """
    payload = dict(payload)
    payload.setdefault("benchmark", benchmark)
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = trajectory_path(benchmark)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path
