"""Shared helpers for the benchmark harness.

Every benchmark prints the table of rows it measured (the "same rows/series
the paper reports" artifact) and also writes it to ``benchmarks/results/`` so
the numbers survive pytest's output capturing.
"""

from __future__ import annotations

import os

import pytest

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def pytest_addoption(parser):
    """Register the --bench-scale option (see ``make bench-smoke``)."""
    parser.addoption(
        "--bench-scale",
        action="store",
        default="full",
        choices=("full", "smoke"),
        help="'full' runs benchmarks at paper scale; 'smoke' shrinks them to a "
        "seconds-long single-iteration sanity pass without speedup assertions.",
    )


@pytest.fixture
def bench_scale(request) -> str:
    """The requested benchmark scale: 'full' (default) or 'smoke'."""
    return request.config.getoption("--bench-scale")


def emit(name: str, text: str) -> None:
    """Print *text* and persist it under benchmarks/results/<name>.txt."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(os.path.join(RESULTS_DIR, f"{name}.txt"), "w", encoding="utf-8") as handle:
        handle.write(text + "\n")
    print(f"\n{text}\n")


@pytest.fixture
def record_table():
    """Fixture handing benchmarks the emit() helper."""
    return emit
