"""Shared helpers for the benchmark harness.

Every benchmark prints the table of rows it measured (the "same rows/series
the paper reports" artifact) and also writes it to ``benchmarks/results/`` so
the numbers survive pytest's output capturing.
"""

from __future__ import annotations

import os

import pytest

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def emit(name: str, text: str) -> None:
    """Print *text* and persist it under benchmarks/results/<name>.txt."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(os.path.join(RESULTS_DIR, f"{name}.txt"), "w", encoding="utf-8") as handle:
        handle.write(text + "\n")
    print(f"\n{text}\n")


@pytest.fixture
def record_table():
    """Fixture handing benchmarks the emit() helper."""
    return emit
