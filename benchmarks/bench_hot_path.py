"""E16 — hot-path speed program: group commit, snapshot reopen, codecs.

Three measurements behind one experiment id, matching this PR's three
storage-layer optimisations:

* **Cross-shard group commit** — the E10 publish/simulate/collect workload
  on a durable sqlite store, with ``group_commit`` off vs on.  Off pays one
  sqlite commit (an fsync on most filesystems) per write inside the
  simulate loop; on defers them to one ``commit_group`` barrier per wave.
  Full scale asserts the simulate phase is at least ``MIN_SIMULATE_SPEEDUP``
  faster and the whole workload at least ``MIN_TOTAL_SPEEDUP``, and proves
  durability by reopening the database after close and recounting.

* **Persistent ring sequence index** — a 3-member sqlite ring holding
  ``NUM_KEYS`` keys, reopened three ways: from its ``idx::`` snapshot, from
  a snapshot plus ``FRESH_KEYS`` unsnapshotted writes (the crash-replay
  path), and with snapshots stripped (the historical O(K) rebuild).  Full
  scale asserts the snapshot reopen beats the rebuild by at least
  ``MIN_REOPEN_RATIO`` and that replaying the fresh tail costs at most
  ``MAX_REPLAY_RATIO`` of a clean snapshot reopen.  (The snapshot parse
  itself is O(K) at C speed, so reopen is not literally O(1) — the wins
  measured here are what the snapshot actually buys.)

* **Record codecs** — encode+decode throughput and stored size for the
  ``json`` vs ``binary`` codec over task-like payloads.  Full scale asserts
  binary is strictly smaller; speed is reported, not asserted (the binary
  walker is pure Python while ``json`` is a C extension, so text wins raw
  speed until payloads get large).

Also reports the log engine's batched append (one buffered write+flush per
``put_many`` instead of one per record), the satellite that motivated the
group-commit seam.
"""

from __future__ import annotations

import os

import pytest

from repro.config import PlatformConfig, WorkerPoolConfig
from repro.platform.client import PlatformClient
from repro.platform.server import PlatformServer
from repro.platform.store import DurableTaskStore
from repro.simulation import ExperimentRunner
from repro.storage import CODECS, ConsistentHashEngine, LogStructuredEngine, SqliteEngine
from repro.storage.ring import RING_META_TABLE, _INDEX_KEY_PREFIX
from repro.utils.timing import Stopwatch
from repro.workers.pool import WorkerPool

from record import write_trajectory

pytestmark = pytest.mark.slow

NUM_TASKS = 10_000
SMOKE_TASKS = 200
PAGE_SIZE = 500
REDUNDANCY = 1
MIN_SIMULATE_SPEEDUP = 2.0
MIN_TOTAL_SPEEDUP = 1.5

NUM_KEYS = 20_000
SMOKE_KEYS = 400
FRESH_KEYS = 200
RING_MEMBERS = 3
MIN_REOPEN_RATIO = 4.0
MAX_REPLAY_RATIO = 1.5

NUM_PAYLOADS = 10_000
SMOKE_PAYLOADS = 200

LOG_RECORDS = 5_000
SMOKE_LOG_RECORDS = 200

TABLE = "items"


# -- group commit ---------------------------------------------------------------


def run_store_mode(group_commit: bool, base_dir: str, num_tasks: int, page_size: int) -> dict:
    """The E10 durable-sqlite workload with the given commit policy."""
    os.makedirs(base_dir, exist_ok=True)
    db_path = os.path.join(base_dir, "platform.db")
    pool = WorkerPool.from_config(WorkerPoolConfig(size=50, mean_accuracy=0.9, seed=7))
    server = PlatformServer(
        worker_pool=pool,
        config=PlatformConfig(seed=7),
        store=DurableTaskStore(
            SqliteEngine(db_path), owns_engine=True, group_commit=group_commit
        ),
    )
    client = PlatformClient(server)
    project = client.create_project("hot-path-bench")
    specs = [
        {
            "info": {"url": f"img-{i:05d}", "_true_answer": "Yes"},
            "n_assignments": REDUNDANCY,
            "dedup_key": f"obj-{i:05d}",
        }
        for i in range(num_tasks)
    ]

    with Stopwatch() as publish:
        tasks = client.create_tasks(project.project_id, specs)
    with Stopwatch() as simulate:
        created = client.simulate_work(project_id=project.project_id)
    with Stopwatch() as collect:
        collected_runs = sum(
            len(runs)
            for _, runs in client.iter_task_runs_for_project(
                project.project_id, page_size
            )
        )

    assert len(tasks) == num_tasks
    assert created == num_tasks * REDUNDANCY
    assert collected_runs == num_tasks * REDUNDANCY
    server.close()

    # Durability proof: everything survives a cold reopen of the file.
    survivor = DurableTaskStore(SqliteEngine(db_path), owns_engine=True)
    counts = survivor.counts()
    assert counts["tasks"] == num_tasks
    assert counts["task_runs"] == num_tasks * REDUNDANCY
    survivor.close()

    total = publish.elapsed + simulate.elapsed + collect.elapsed
    return {
        "group_commit": group_commit,
        "tasks": num_tasks,
        "publish_seconds": round(publish.elapsed, 3),
        "simulate_seconds": round(simulate.elapsed, 3),
        "collect_seconds": round(collect.elapsed, 3),
        "total_seconds": round(total, 3),
        "simulate_ktasks_per_s": round(
            num_tasks / max(simulate.elapsed, 1e-9) / 1000, 1
        ),
    }


# -- ring reopen ----------------------------------------------------------------


def build_ring(base_dir: str) -> ConsistentHashEngine:
    return ConsistentHashEngine(
        {
            f"ring-{index:02d}": SqliteEngine(
                os.path.join(base_dir, f"ring-{index:02d}.db")
            )
            for index in range(RING_MEMBERS)
        }
    )


def time_reopen(base_dir: str) -> float:
    """Open the ring and force its sequence index; return the elapsed time.

    The engine is abandoned (children closed directly, no ring ``close``):
    after a rebuild or a tail replay the index is dirty, and a ring close
    would persist a fresh snapshot — turning the other timing iterations
    into snapshot loads of what they mean to measure.
    """
    with Stopwatch() as watch:
        engine = build_ring(base_dir)
        engine._index(TABLE)
    for child in engine._children.values():
        child.close()
    return watch.elapsed


def run_ring_reopen(base_dir: str, num_keys: int, fresh_keys: int) -> dict:
    os.makedirs(base_dir, exist_ok=True)
    engine = build_ring(base_dir)
    engine.create_table(TABLE)
    engine.put_many(
        TABLE, [(f"key-{i:06d}", {"i": i}) for i in range(num_keys)]
    )
    engine.close()  # writes the idx:: snapshot

    snapshot_seconds = min(time_reopen(base_dir) for _ in range(3))

    # The crash-replay path: fresh writes after the snapshot, then an
    # abandoned (never-closed) engine, so reopen must replay the tail.
    dirty = build_ring(base_dir)
    dirty.put_many(
        TABLE,
        [(f"fresh-{i:06d}", {"i": i}) for i in range(fresh_keys)],
    )
    # Abandon without close: the snapshot stays stale by fresh_keys writes.
    del dirty
    replay_seconds = min(time_reopen(base_dir) for _ in range(3))

    # Refresh the snapshot (close writes it), then strip every idx:: record
    # to time the historical full rebuild over the same data.
    refreshed = build_ring(base_dir)
    reference = [
        (record.key, record.value) for record in refreshed.scan(TABLE, limit=5)
    ]
    refreshed.close()
    stripper = build_ring(base_dir)
    for child in stripper._children.values():
        child.delete(RING_META_TABLE, _INDEX_KEY_PREFIX + TABLE)
    # Drop without close: close would helpfully re-snapshot the index.
    for child in stripper._children.values():
        child.close()
    del stripper
    rebuild_seconds = min(time_reopen(base_dir) for _ in range(3))

    # Whatever the path, the engine serves identical data.
    verifier = build_ring(base_dir)
    assert [
        (record.key, record.value) for record in verifier.scan(TABLE, limit=5)
    ] == reference
    assert verifier.count(TABLE) == num_keys + fresh_keys
    verifier.close()

    return {
        "keys": num_keys,
        "fresh_keys": fresh_keys,
        "snapshot_reopen_seconds": round(snapshot_seconds, 4),
        "replay_reopen_seconds": round(replay_seconds, 4),
        "rebuild_reopen_seconds": round(rebuild_seconds, 4),
        "snapshot_vs_rebuild": round(
            rebuild_seconds / max(snapshot_seconds, 1e-9), 1
        ),
        "replay_vs_snapshot": round(
            replay_seconds / max(snapshot_seconds, 1e-9), 2
        ),
    }


# -- codecs ---------------------------------------------------------------------


def task_payload(i: int) -> dict:
    return {
        "task_id": i,
        "project_id": 3,
        "info": {"url": f"https://example.com/img-{i:06d}.png", "i": i},
        "runs": [
            {
                "run_id": i * 3 + j,
                "worker_id": f"w{j:03d}",
                "answer": "Yes",
                "submitted_at": 1000.0 + i,
            }
            for j in range(3)
        ],
    }


def run_codec_comparison(num_payloads: int) -> list[dict]:
    payloads = [task_payload(i) for i in range(num_payloads)]
    rows = []
    for name in ("json", "binary"):
        codec = CODECS[name]
        with Stopwatch() as encode:
            encoded = codec.encode_many(payloads)
        with Stopwatch() as decode:
            decoded = codec.decode_many(encoded)
        assert decoded == payloads
        total_bytes = sum(len(data) for data in encoded)
        rows.append(
            {
                "codec": name,
                "payloads": num_payloads,
                "encoded_bytes": total_bytes,
                "bytes_per_payload": round(total_bytes / num_payloads, 1),
                "encode_seconds": round(encode.elapsed, 4),
                "decode_seconds": round(decode.elapsed, 4),
            }
        )
    json_bytes = rows[0]["encoded_bytes"]
    for row in rows:
        row["size_vs_json"] = round(row["encoded_bytes"] / json_bytes, 3)
    return rows


# -- log append batching --------------------------------------------------------


def run_log_append(base_dir: str, num_records: int) -> dict:
    os.makedirs(base_dir, exist_ok=True)
    items = [(f"key-{i:06d}", {"i": i}) for i in range(num_records)]

    single = LogStructuredEngine(
        os.path.join(base_dir, "single"), snapshot_every=10**9
    )
    single.create_table(TABLE)
    with Stopwatch() as one_by_one:
        for key, value in items:
            single.put(TABLE, key, value)
    single.close()

    batched = LogStructuredEngine(
        os.path.join(base_dir, "batched"), snapshot_every=10**9
    )
    batched.create_table(TABLE)
    with Stopwatch() as batch:
        batched.put_many(TABLE, items)
    assert batched.count(TABLE) == num_records
    batched.close()

    return {
        "records": num_records,
        "put_seconds": round(one_by_one.elapsed, 3),
        "put_many_seconds": round(batch.elapsed, 3),
        "batch_speedup": round(one_by_one.elapsed / max(batch.elapsed, 1e-9), 1),
    }


def test_hot_path_speedups(record_table, tmp_path, bench_scale):
    smoke = bench_scale == "smoke"
    num_tasks = SMOKE_TASKS if smoke else NUM_TASKS
    num_keys = SMOKE_KEYS if smoke else NUM_KEYS
    num_payloads = SMOKE_PAYLOADS if smoke else NUM_PAYLOADS
    log_records = SMOKE_LOG_RECORDS if smoke else LOG_RECORDS
    page_size = 50 if smoke else PAGE_SIZE

    serial = run_store_mode(False, str(tmp_path / "serial"), num_tasks, page_size)
    grouped = run_store_mode(True, str(tmp_path / "group"), num_tasks, page_size)
    simulate_speedup = round(
        serial["simulate_seconds"] / max(grouped["simulate_seconds"], 1e-9), 2
    )
    total_speedup = round(
        serial["total_seconds"] / max(grouped["total_seconds"], 1e-9), 2
    )
    reopen = run_ring_reopen(str(tmp_path / "ring"), num_keys, FRESH_KEYS)
    codecs = run_codec_comparison(num_payloads)
    log_append = run_log_append(str(tmp_path / "log"), log_records)

    runner = ExperimentRunner(
        f"E16 — hot-path speed program ({num_tasks} tasks sqlite: group commit "
        f"simulate {simulate_speedup}x / total {total_speedup}x; {num_keys}-key "
        f"ring reopen snapshot {reopen['snapshot_vs_rebuild']}x over rebuild)"
    )
    sweep = runner.run([{}], lambda point: {})
    sweep.rows = [serial, grouped]
    record_table(
        "E16_group_commit",
        sweep.to_table(
            columns=[
                "group_commit",
                "tasks",
                "publish_seconds",
                "simulate_seconds",
                "collect_seconds",
                "total_seconds",
                "simulate_ktasks_per_s",
            ]
        ),
    )
    reopen_runner = ExperimentRunner(
        f"E16 — ring reopen paths ({num_keys} keys + {FRESH_KEYS} unsnapshotted, "
        f"{RING_MEMBERS} sqlite members)"
    )
    reopen_sweep = reopen_runner.run([{}], lambda point: {})
    reopen_sweep.rows = [reopen]
    record_table(
        "E16_ring_reopen",
        reopen_sweep.to_table(
            columns=[
                "keys",
                "fresh_keys",
                "snapshot_reopen_seconds",
                "replay_reopen_seconds",
                "rebuild_reopen_seconds",
                "snapshot_vs_rebuild",
                "replay_vs_snapshot",
            ]
        ),
    )
    codec_runner = ExperimentRunner(
        f"E16 — record codecs over {num_payloads} task payloads "
        f"(binary {codecs[1]['size_vs_json']}x the json size); log batched "
        f"append {log_append['batch_speedup']}x"
    )
    codec_sweep = codec_runner.run([{}], lambda point: {})
    codec_sweep.rows = codecs + [
        {"codec": "log-append", **{k: v for k, v in log_append.items()}}
    ]
    record_table(
        "E16_codec_log",
        codec_sweep.to_table(
            columns=[
                "codec",
                "payloads",
                "bytes_per_payload",
                "size_vs_json",
                "encode_seconds",
                "decode_seconds",
            ]
        ),
    )

    if not smoke:
        assert simulate_speedup >= MIN_SIMULATE_SPEEDUP, (
            f"group commit sped simulate up only {simulate_speedup}x "
            f"(required >= {MIN_SIMULATE_SPEEDUP}x)"
        )
        assert total_speedup >= MIN_TOTAL_SPEEDUP, (
            f"group commit sped the workload up only {total_speedup}x "
            f"(required >= {MIN_TOTAL_SPEEDUP}x)"
        )
        assert reopen["snapshot_vs_rebuild"] >= MIN_REOPEN_RATIO, (
            f"snapshot reopen is only {reopen['snapshot_vs_rebuild']}x faster "
            f"than the rebuild (required >= {MIN_REOPEN_RATIO}x)"
        )
        assert reopen["replay_vs_snapshot"] <= MAX_REPLAY_RATIO, (
            f"replaying {FRESH_KEYS} fresh keys cost "
            f"{reopen['replay_vs_snapshot']}x a clean snapshot reopen "
            f"(allowed <= {MAX_REPLAY_RATIO}x)"
        )
        assert codecs[1]["encoded_bytes"] < codecs[0]["encoded_bytes"], (
            "binary codec must store task payloads smaller than json"
        )
        # The trajectory file is a committed artifact tracking full-scale
        # numbers across PRs; a toy-scale smoke pass must not clobber it.
        write_trajectory(
            "E16",
            {
                "scale": bench_scale,
                "group_commit": [serial, grouped],
                "simulate_speedup": simulate_speedup,
                "total_speedup": total_speedup,
                "ring_reopen": reopen,
                "codecs": codecs,
                "log_append": log_append,
            },
        )
