"""E8: lineage queries answered directly from CrowdData.

After a 300-image experiment, measures the cost of the lineage questions the
paper lists ("when were the tasks published? which workers did the tasks?")
and reports the answers, demonstrating that examination needs no re-run and
no extra crowd work.
"""

from __future__ import annotations

import pytest

from repro import CrowdContext
from repro.datasets import make_image_label_dataset
from repro.presenters import ImageLabelPresenter
from repro.simulation import ExperimentRunner

NUM_IMAGES = 300


@pytest.fixture(scope="module")
def experiment_data():
    dataset = make_image_label_dataset(num_images=NUM_IMAGES, seed=5)
    cc = CrowdContext.in_memory(seed=5, ground_truth=dataset.ground_truth)
    data = (
        cc.CrowdData(dataset.images, "lineage_bench")
        .set_presenter(ImageLabelPresenter())
        .publish_task(n_assignments=3)
        .get_result()
        .mv()
    )
    yield data
    cc.close()


def test_lineage_query_cost(benchmark, record_table, experiment_data):
    """Headline: building the lineage view over 900 answers."""

    def query():
        lineage = experiment_data.lineage()
        return {
            "answers": len(lineage),
            "distinct_workers": len(lineage.workers()),
            "tasks": len(lineage.tasks()),
            "publication_window_s": round(
                lineage.publication_window()[1] - lineage.publication_window()[0], 1
            ),
            "collection_window_s": round(
                lineage.collection_window()[1] - lineage.collection_window()[0], 1
            ),
            "mean_latency_s": round(lineage.mean_latency(), 1),
            "busiest_worker_answers": max(lineage.worker_contributions().values()),
        }

    result = benchmark(query)
    assert result["answers"] == NUM_IMAGES * 3
    assert result["tasks"] == NUM_IMAGES

    runner = ExperimentRunner("E8 — lineage of a 300-image experiment (900 answers)")
    sweep = runner.run([{}], lambda point: {})
    sweep.rows = [result]
    record_table(
        "E8_lineage",
        sweep.to_table(
            columns=[
                "answers", "distinct_workers", "tasks", "publication_window_s",
                "collection_window_s", "mean_latency_s", "busiest_worker_answers",
            ]
        ),
    )


def test_manipulation_history_cost(benchmark, record_table, experiment_data):
    """Reading the durable manipulation log (the 'what did Bob do?' query)."""

    def query():
        history = experiment_data.manipulation_history()
        return {
            "manipulations": len(history),
            "operations": "->".join(m.operation for m in history),
            "total_cache_hits": sum(m.cache_hits for m in history),
        }

    result = benchmark(query)
    assert result["manipulations"] >= 5

    runner = ExperimentRunner("E8b — manipulation-log examination")
    sweep = runner.run([{}], lambda point: {})
    sweep.rows = [result]
    record_table("E8b_manipulation_log", sweep.to_table(columns=["manipulations", "operations", "total_cache_hits"]))
