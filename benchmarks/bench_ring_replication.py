"""E15: replicated ring placement — R=2 write amplification and degraded reads.

PR 7 made every key land on its R distinct successor members (write-all,
read-any-fresh).  E15 prices that redundancy and proves the failover claim
at benchmark scale:

* **Write amplification** — identical records loaded into an R=1 and an
  R=2 ring over the same three sqlite members.  The physical copy count is
  *asserted* (R=1 stores exactly K rows across the children, R=2 exactly
  2K) so the timed overhead ratio compares real fan-out, not luck.
* **Degraded reads** — a loaded R=2 ring loses one member to ``mark_down``
  (the SIGKILL model: nothing is flushed, nothing is closed).  The scan
  after the kill must be **byte-identical** (keys, values, versions,
  order) to the healthy scan, and ``get_many`` over every key must return
  every value — the table then prices healthy vs degraded read throughput.

Like E14, this benchmark writes a committed trajectory file —
``benchmarks/results/BENCH_E15.json`` — recording the R=2 overhead numbers
so future PRs can diff the replication cost against this one.

Run ``pytest benchmarks/bench_ring_replication.py -q --bench-scale=smoke``
for a seconds-long sanity pass at toy scale (the structural assertions
still run; only the scale shrinks).
"""

from __future__ import annotations

import os

import pytest

from repro.simulation import ExperimentRunner
from repro.storage import ConsistentHashEngine, SqliteEngine
from repro.utils.timing import Stopwatch

from record import write_trajectory

pytestmark = [pytest.mark.slow, pytest.mark.ring, pytest.mark.replica]


NUM_RECORDS = 20_000
SMOKE_RECORDS = 600
MEMBERS = 3
VIRTUAL_NODES = 64
LOAD_CHUNK = 2_000
GET_CHUNK = 1_000
TABLE = "bench"


def make_items(num_records: int) -> list[tuple[str, dict]]:
    return [(f"key-{index:08d}", {"payload": index}) for index in range(num_records)]


def build_ring(base_dir: str, tag: str, replicas: int):
    children = {
        f"ring-{index:02d}": SqliteEngine(
            os.path.join(base_dir, tag, f"ring-{index:02d}.db")
        )
        for index in range(MEMBERS)
    }
    engine = ConsistentHashEngine(
        children, virtual_nodes=VIRTUAL_NODES, replicas=replicas
    )
    return engine, children


def load(engine, items) -> float:
    engine.create_table(TABLE)
    with Stopwatch() as watch:
        for start in range(0, len(items), LOAD_CHUNK):
            engine.put_many(TABLE, items[start : start + LOAD_CHUNK])
    return watch.elapsed


def physical_copies(children) -> int:
    return sum(
        child.count(TABLE)
        for child in children.values()
        if TABLE in child.list_tables()
    )


def run_write_amplification(base_dir: str, num_records: int) -> list[dict]:
    """Load identical records at R=1 and R=2; assert the physical fan-out."""
    items = make_items(num_records)
    rows = []
    baseline_seconds = None
    for replicas in (1, 2):
        engine, children = build_ring(base_dir, f"amp-r{replicas}", replicas)
        put_seconds = load(engine, items)
        copies = physical_copies(children)
        # E15 acceptance: write-all really is write-all — every key holds
        # exactly `replicas` physical copies across the children.
        assert copies == num_records * replicas, (
            f"R={replicas}: expected {num_records * replicas} physical copies, "
            f"found {copies}"
        )
        assert engine.count(TABLE) == num_records
        if baseline_seconds is None:
            baseline_seconds = put_seconds
        rows.append(
            {
                "replicas": replicas,
                "records": num_records,
                "physical_copies": copies,
                "put_many_seconds": round(put_seconds, 3),
                "put_overhead_ratio": round(put_seconds / max(baseline_seconds, 1e-9), 2),
                "put_krows_per_s": round(num_records / max(put_seconds, 1e-9) / 1000, 1),
            }
        )
        engine.close()
    return rows


def run_degraded_read(base_dir: str, num_records: int) -> dict:
    """Kill one member of a loaded R=2 ring; price and verify failover reads."""
    items = make_items(num_records)
    engine, _children = build_ring(base_dir, "degraded", 2)
    load(engine, items)
    keys = [key for key, _ in items]

    # Healthy numbers first (cold scan pays the one-off sequence-index build).
    sum(1 for _ in engine.scan(TABLE))
    with Stopwatch() as healthy_scan:
        healthy = [(r.key, r.value, r.version) for r in engine.scan(TABLE)]
    with Stopwatch() as healthy_get:
        for start in range(0, len(keys), GET_CHUNK):
            engine.get_many(TABLE, keys[start : start + GET_CHUNK])

    victim = engine.member_names[0]
    engine.mark_down(victim)

    with Stopwatch() as degraded_scan:
        degraded = [(r.key, r.value, r.version) for r in engine.scan(TABLE)]
    with Stopwatch() as degraded_get:
        recovered = []
        for start in range(0, len(keys), GET_CHUNK):
            recovered.extend(engine.get_many(TABLE, keys[start : start + GET_CHUNK]))

    # E15 acceptance: the kill is invisible to readers — byte-identical scan,
    # every key still answered.
    assert degraded == healthy
    assert len(recovered) == num_records
    assert all(value is not None for value in recovered)
    assert engine.count(TABLE) == num_records

    row = {
        "records": num_records,
        "members": f"{MEMBERS}->{MEMBERS - 1}",
        "down_member": victim,
        "healthy_scan_seconds": round(healthy_scan.elapsed, 3),
        "degraded_scan_seconds": round(degraded_scan.elapsed, 3),
        "healthy_get_seconds": round(healthy_get.elapsed, 3),
        "degraded_get_seconds": round(degraded_get.elapsed, 3),
        "degraded_scan_ratio": round(
            degraded_scan.elapsed / max(healthy_scan.elapsed, 1e-9), 2
        ),
        "scan_identical": degraded == healthy,
    }
    engine.close()
    return row


def test_ring_replication_cost(record_table, tmp_path, bench_scale):
    smoke = bench_scale == "smoke"
    num_records = SMOKE_RECORDS if smoke else NUM_RECORDS
    amplification = run_write_amplification(str(tmp_path), num_records)
    degraded = run_degraded_read(str(tmp_path), num_records)

    runner = ExperimentRunner(
        f"E15 — replicated ring placement ({num_records} records, {MEMBERS} "
        f"sqlite members: R=2 write overhead "
        f"{amplification[-1]['put_overhead_ratio']}x, degraded scan "
        f"{degraded['degraded_scan_ratio']}x healthy)"
    )
    sweep = runner.run([{}], lambda point: {})
    sweep.rows = amplification
    record_table(
        "E15_ring_replication_writes",
        sweep.to_table(
            columns=[
                "replicas",
                "records",
                "physical_copies",
                "put_many_seconds",
                "put_overhead_ratio",
                "put_krows_per_s",
            ]
        ),
    )
    failover = ExperimentRunner(
        f"E15 — reads with one member killed mid-run ({num_records} records, "
        "R=2: scans stay byte-identical)"
    )
    failover_sweep = failover.run([{}], lambda point: {})
    failover_sweep.rows = [degraded]
    record_table(
        "E15_ring_replication_failover",
        failover_sweep.to_table(
            columns=[
                "records",
                "members",
                "down_member",
                "healthy_scan_seconds",
                "degraded_scan_seconds",
                "degraded_scan_ratio",
                "healthy_get_seconds",
                "degraded_get_seconds",
                "scan_identical",
            ]
        ),
    )

    if not smoke:
        # The trajectory file is a committed artifact tracking full-scale
        # numbers across PRs; a toy-scale smoke pass must not clobber it.
        write_trajectory(
            "E15",
            {
                "scale": bench_scale,
                "write_amplification": amplification,
                "degraded_read": degraded,
            }
        )
