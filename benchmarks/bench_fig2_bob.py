"""E1 (Figure 2): Bob's experiment end-to-end.

Measures the wall-clock cost of the five-step experiment at increasing scale
and reports, for each scale, the number of crowd tasks, crowd answers, and
the majority-vote accuracy against ground truth.
"""

from __future__ import annotations

import pytest

from repro import CrowdContext
from repro.datasets import make_image_label_dataset
from repro.presenters import ImageLabelPresenter
from repro.simulation import ExperimentRunner


def run_bob(num_images: int, redundancy: int, seed: int) -> dict:
    dataset = make_image_label_dataset(num_images=num_images, seed=seed)
    cc = CrowdContext.in_memory(seed=seed, ground_truth=dataset.ground_truth)
    data = (
        cc.CrowdData(dataset.images, "fig2")
        .set_presenter(ImageLabelPresenter(question="Is there a face?"))
        .publish_task(n_assignments=redundancy)
        .get_result()
        .mv()
    )
    truth = {index: dataset.labels[url] for index, url in enumerate(dataset.images)}
    accuracy = data.last_aggregation.accuracy_against(truth)
    stats = cc.client.statistics()
    cc.close()
    return {
        "images": num_images,
        "redundancy": redundancy,
        "crowd_tasks": stats["tasks"],
        "crowd_answers": stats["task_runs"],
        "mv_accuracy": accuracy,
    }


def test_fig2_bob_experiment(benchmark, record_table):
    """Headline: the 3-image experiment exactly as written in the paper."""
    result = benchmark(run_bob, 3, 3, 7)
    assert result["crowd_tasks"] == 3
    assert result["crowd_answers"] == 9

    runner = ExperimentRunner("E1 / Figure 2 — Bob's experiment at increasing scale")
    sweep = runner.run(
        [{"num_images": n, "redundancy": 3, "seed": 7} for n in (3, 10, 50, 200)],
        lambda point: run_bob(point["num_images"], point["redundancy"], point["seed"]),
    )
    record_table(
        "E1_fig2_bob",
        sweep.to_table(columns=["images", "redundancy", "crowd_tasks", "crowd_answers", "mv_accuracy"]),
    )


def test_fig2_redundancy_sweep(benchmark, record_table):
    """Ablation: accuracy as a function of the per-task redundancy r."""
    result = benchmark.pedantic(run_bob, args=(60, 3, 11), rounds=1, iterations=1)
    assert result["crowd_tasks"] == 60

    runner = ExperimentRunner("E1b — majority-vote accuracy vs. redundancy (60 images)")
    sweep = runner.run(
        [{"redundancy": r, "seed": 11} for r in (1, 3, 5, 7, 9)],
        lambda point: run_bob(60, point["redundancy"], point["seed"]),
    )
    record_table(
        "E1b_redundancy",
        sweep.to_table(columns=["redundancy", "crowd_answers", "mv_accuracy"]),
    )
