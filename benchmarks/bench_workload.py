"""E17: production-shaped marketplace workload — sqlite vs replicated ring.

PR 9 added the workload subsystem: seeded arrival processes, a
heterogeneous marketplace (task types with per-type duration/payout/SLA,
worker acceptance/reliability/speed, stragglers) and a ScenarioRunner that
drives any storage/transport stack end-to-end.  E17 exercises it at
production shape — a 10k-arrival diurnal workload with Zipf-skewed keys
over a 40-worker marketplace — on two backends:

* **sqlite** — the single-file reference engine;
* **ring R=2** — the replicated consistent-hash ring over three sqlite
  members (the deployment PR 7/8 target).

Three things are *asserted*, not just measured:

* both backends collect **byte-identical** answers (the scenario harness's
  core replay guarantee, held at benchmark scale);
* every task type's virtual p99 completion latency lands under its SLA —
  the marketplace parameters model a feasible operating point, and the
  latencies are deterministic, so this can never flake;
* at full scale the harness sustains a throughput floor (answers/s of
  wall-clock) on both backends.

The full-scale run commits ``benchmarks/results/BENCH_E17.json`` so
``make bench-trend`` can catch future harness slowdowns.  Run
``pytest benchmarks/bench_workload.py -q --bench-scale=smoke`` for a
seconds-long sanity pass (structural assertions still run; the throughput
floor and the trajectory write are full-scale only).
"""

from __future__ import annotations

import os

import pytest

from repro.simulation import ExperimentRunner
from repro.workload import ScenarioRunner, ScenarioSpec

from record import write_trajectory

pytestmark = [pytest.mark.slow, pytest.mark.workload]

FULL_TASKS = 10_000
SMOKE_TASKS = 200
#: Minimum wall-clock answers/s either backend must sustain at full scale.
THROUGHPUT_FLOOR_ANSWERS_PER_S = 500.0


def build_spec(num_tasks: int, storage: str, replicas: int = 1) -> ScenarioSpec:
    """The E17 marketplace: diurnal arrivals, skewed keys, mixed supply."""
    return ScenarioSpec(
        name=f"e17-{storage}",
        seed=17,
        arrival="diurnal",
        rate=40.0,
        diurnal_amplitude=0.8,
        diurnal_period_seconds=600.0,
        num_tasks=num_tasks,
        batch_size=max(25, num_tasks // 40),
        num_keys=max(60, (num_tasks * 2) // 5),
        zipf_skew=1.1,
        pool_size=40,
        redundancy=3,
        mean_accuracy=0.9,
        accuracy_spread=0.08,
        acceptance_mean=0.9,
        acceptance_spread=0.1,
        speed_spread=0.3,
        straggler_fraction=0.05,
        straggler_slowdown=4.0,
        spammer_fraction=0.05,
        storage=storage,
        storage_shards=3,
        replicas=replicas,
    )


def run_backend(base_dir: str, spec: ScenarioSpec):
    """Run *spec* once; return (result, throughput/latency summary row)."""
    result = ScenarioRunner(os.path.join(base_dir, spec.storage)).run(spec)
    report = result.report
    timing = report["timing"]
    workload = report["workload"]
    row = {
        "backend": spec.storage if spec.replicas == 1 else (
            f"{spec.storage}-r{spec.replicas}"
        ),
        "tasks": workload["arrivals"],
        "unique_tasks": workload["unique_tasks"],
        "answers": workload["answers"],
        "wall_seconds": round(timing["wall_seconds"], 3),
        "answers_per_s": round(timing["answers_per_s"], 1),
        "tasks_per_s": round(
            workload["arrivals"] / max(timing["wall_seconds"], 1e-9), 1
        ),
        "accuracy": round(report["quality"]["accuracy"], 4),
    }
    return result, row


def assert_slas_met(result) -> dict:
    """Per-type virtual latency summary; asserts p99 under each type's SLA."""
    by_type = {}
    for name, summary in result.report["latency"]["by_type"].items():
        # E17 acceptance: the marketplace operating point is feasible — the
        # deterministic virtual p99 of every task type beats its SLA.
        assert summary["p99"] < summary["sla"], (
            f"{name}: virtual p99 {summary['p99']} breaches SLA {summary['sla']}"
        )
        by_type[name] = {
            "count": summary["count"],
            "latency_p50": summary["p50"],
            "latency_p99": summary["p99"],
            "sla": summary["sla"],
            "sla_attainment": summary["sla_attainment"],
            "accuracy": summary["accuracy"],
        }
    return by_type


def test_marketplace_workload_scaling(record_table, tmp_path, bench_scale):
    smoke = bench_scale == "smoke"
    num_tasks = SMOKE_TASKS if smoke else FULL_TASKS

    sqlite_result, sqlite_row = run_backend(
        str(tmp_path), build_spec(num_tasks, "sqlite")
    )
    ring_result, ring_row = run_backend(
        str(tmp_path), build_spec(num_tasks, "ring", replicas=2)
    )

    # E17 acceptance: the backend is invisible to the workload — byte-
    # identical collected answers and event logs on sqlite and ring R=2.
    assert sqlite_result.canonical_collected == ring_result.canonical_collected
    assert sqlite_result.canonical_events == ring_result.canonical_events

    by_type = assert_slas_met(sqlite_result)
    assert assert_slas_met(ring_result) == by_type

    if not smoke:
        for row in (sqlite_row, ring_row):
            assert row["answers_per_s"] > THROUGHPUT_FLOOR_ANSWERS_PER_S, (
                f"{row['backend']}: {row['answers_per_s']} answers/s under the "
                f"{THROUGHPUT_FLOOR_ANSWERS_PER_S} floor"
            )

    runner = ExperimentRunner(
        f"E17 — marketplace workload, {num_tasks} diurnal arrivals over "
        f"{sqlite_row['unique_tasks']} Zipf-skewed tasks, 40 workers, "
        "redundancy 3 (collected bytes identical on sqlite and ring R=2)"
    )
    sweep = runner.run([{}], lambda point: {})
    sweep.rows = [sqlite_row, ring_row]
    record_table(
        "E17_workload_marketplace",
        sweep.to_table(
            columns=[
                "backend",
                "tasks",
                "unique_tasks",
                "answers",
                "wall_seconds",
                "answers_per_s",
                "tasks_per_s",
                "accuracy",
            ]
        ),
    )

    types_runner = ExperimentRunner(
        "E17 — per-type virtual latency vs SLA (deterministic: p99 must beat "
        "the SLA on every type)"
    )
    types_sweep = types_runner.run([{}], lambda point: {})
    types_sweep.rows = [
        {"type": name, **summary} for name, summary in sorted(by_type.items())
    ]
    record_table(
        "E17_workload_sla",
        types_sweep.to_table(
            columns=[
                "type",
                "count",
                "latency_p50",
                "latency_p99",
                "sla",
                "sla_attainment",
                "accuracy",
            ]
        ),
    )

    if not smoke:
        # The trajectory file is a committed artifact tracking full-scale
        # numbers across PRs; a toy-scale smoke pass must not clobber it.
        write_trajectory(
            "E17",
            {
                "scale": bench_scale,
                "backends": [sqlite_row, ring_row],
                "latency_by_type": by_type,
                "identical_across_backends": True,
            },
        )
