"""E18: streaming adaptive quality control at 10k objects.

PR 10 rebuilt ``get_result_adaptive`` around the paged task-run stream and
incremental aggregation.  E18 is its acceptance benchmark, at the paper's
flagship scale (10k labeled objects, 25 workers at 0.85 mean accuracy):

* **budget**: the adaptive policy (start at 2, threshold 0.75, cap 7)
  matches fixed-redundancy(5) accuracy within one point while purchasing
  at least 25% fewer answers;
* **round trips**: the whole collection issues zero per-task
  ``get_task_runs`` calls — its platform bill is O(pages) per round plus
  one batched ``extend_tasks_redundancy`` per purchasing round
  (CountingTransport-proven);
* **incremental EM**: the :class:`OnlineDawidSkene` model fed page by page
  by the adaptive loop agrees, after refinement, with the batch
  Dawid-Skene aggregator on **every** item's decision.

Wall-clock numbers are recorded as ``*_seconds`` metrics, so the committed
``BENCH_E18.json`` trajectory enrolls E18 in ``make bench-trend``.  Run
``pytest benchmarks/bench_adaptive_quality.py -q --bench-scale=smoke`` for
a seconds-long structural pass (savings floor, accuracy window and the
trajectory write are full-scale only).
"""

from __future__ import annotations

import math
import time

import pytest

from repro import AdaptivePolicy, BudgetTracker, CrowdContext
from repro.config import ReprowdConfig, StorageConfig, WorkerPoolConfig
from repro.datasets import make_image_label_dataset
from repro.platform.transport import CountingTransport
from repro.presenters import ImageLabelPresenter
from repro.quality import DawidSkeneAggregator
from repro.quality.incremental import OnlineDawidSkene
from repro.simulation import ExperimentRunner

from record import write_trajectory

pytestmark = [pytest.mark.slow, pytest.mark.quality]

FULL_OBJECTS = 10_000
SMOKE_OBJECTS = 300
PRICE = 0.02
FIXED_REDUNDANCY = 5
POLICY = AdaptivePolicy(
    initial_assignments=2, max_assignments=7, min_assignments=2,
    confidence_threshold=0.75, extra_per_round=2,
)
SEED = 18
#: Full-scale floors: answer savings vs fixed(5) and the accuracy window.
MIN_SAVINGS_FRACTION = 0.25
MAX_ACCURACY_DROP = 0.01


def make_context(seed: int, transport=None) -> CrowdContext:
    config = ReprowdConfig(
        storage=StorageConfig(engine="memory"),
        workers=WorkerPoolConfig(
            size=25, mean_accuracy=0.85, accuracy_spread=0.05, seed=seed
        ),
    )
    return CrowdContext(
        config=config,
        transport=transport,
        budget=BudgetTracker(price_per_assignment=PRICE),
    )


def accuracy_of(data, column: str, ground_truth) -> float:
    objects = data.column("object")
    labels = data.column(column)
    return sum(
        1 for obj, label in zip(objects, labels) if label == ground_truth(obj)
    ) / len(objects)


def run_fixed(dataset) -> dict:
    context = make_context(SEED)
    data = (
        context.CrowdData(dataset.images, "fixed", ground_truth=dataset.ground_truth)
        .set_presenter(ImageLabelPresenter())
        .publish_task(n_assignments=FIXED_REDUNDANCY)
    )
    started = time.perf_counter()
    data.get_result().mv()
    elapsed = time.perf_counter() - started
    row = {
        "strategy": f"fixed(r={FIXED_REDUNDANCY})",
        "answers": sum(len(r["assignments"]) for r in data.column("result")),
        "spend_usd": round(context.budget.spent, 2),
        "accuracy": round(accuracy_of(data, "mv", dataset.ground_truth), 4),
        "collect_seconds": round(elapsed, 3),
    }
    context.close()
    return row


def run_adaptive(dataset) -> tuple[dict, dict]:
    transport = CountingTransport()
    context = make_context(SEED, transport=transport)
    tracker = OnlineDawidSkene()
    data = (
        context.CrowdData(dataset.images, "adaptive", ground_truth=dataset.ground_truth)
        .set_presenter(ImageLabelPresenter())
        .publish_task(n_assignments=POLICY.initial_assignments)
    )
    started = time.perf_counter()
    data.get_result_adaptive(POLICY, aggregator=tracker).mv()
    elapsed = time.perf_counter() - started
    stats = data.last_adaptive_stats

    # E18 acceptance: no per-task run fetches — the loop's platform bill is
    # O(pages) per round plus one batched extension call per round.
    calls = transport.calls_by_name
    assert "get_task_runs" not in calls
    assert "get_task_runs_for_project" not in calls
    assert "extend_task_redundancy" not in calls
    pages_per_sweep = math.ceil(len(dataset.images) / data.collect_page_size)
    assert calls["get_task_runs_page"] <= (stats.rounds + 1) * pages_per_sweep
    assert calls["extend_tasks_redundancy"] <= stats.rounds

    # E18 acceptance: the page-fed online EM refines to the batch fixed
    # point — identical decisions on every item.
    votes = {
        r["task_id"]: [(a["worker_id"], a["answer"]) for a in r["assignments"]]
        for r in data.column("result")
    }
    refine_started = time.perf_counter()
    online = tracker.result()
    refine_seconds = time.perf_counter() - refine_started
    batch = DawidSkeneAggregator().aggregate(votes)
    disagreements = [
        item for item in votes if online.decisions[item] != batch.decisions[item]
    ]
    assert not disagreements, (
        f"online EM disagrees with batch on {len(disagreements)} of "
        f"{len(votes)} items"
    )

    row = {
        "strategy": f"adaptive(conf={POLICY.confidence_threshold})",
        "answers": stats.answers_collected,
        "spend_usd": round(context.budget.spent, 2),
        "accuracy": round(accuracy_of(data, "mv", dataset.ground_truth), 4),
        "collect_seconds": round(elapsed, 3),
    }
    detail = {
        "rounds": stats.rounds,
        "pages_streamed": stats.pages_streamed,
        "items_resolved_early": stats.items_resolved_early,
        "items_at_cap": stats.items_at_cap,
        "items_below_minimum": stats.items_below_minimum,
        "extensions_requested": stats.extensions_requested,
        "platform_round_trips": transport.calls,
        "em_refine_seconds": round(refine_seconds, 3),
        "em_items_checked": len(votes),
        "em_decision_disagreements": 0,
    }
    context.close()
    return row, detail


def test_streaming_adaptive_vs_fixed_redundancy(record_table, bench_scale):
    smoke = bench_scale == "smoke"
    num_objects = SMOKE_OBJECTS if smoke else FULL_OBJECTS
    dataset = make_image_label_dataset(num_images=num_objects, seed=SEED)

    fixed = run_fixed(dataset)
    adaptive, detail = run_adaptive(dataset)

    assert adaptive["answers"] < fixed["answers"]
    savings = 1.0 - adaptive["answers"] / fixed["answers"]
    if not smoke:
        # E18 acceptance: fixed(5) accuracy within one point at >= 25%
        # fewer purchased answers.
        assert savings >= MIN_SAVINGS_FRACTION, (
            f"adaptive saved only {savings:.1%} of fixed answers "
            f"(floor {MIN_SAVINGS_FRACTION:.0%})"
        )
        assert adaptive["accuracy"] >= fixed["accuracy"] - MAX_ACCURACY_DROP, (
            f"adaptive accuracy {adaptive['accuracy']} more than "
            f"{MAX_ACCURACY_DROP} under fixed {fixed['accuracy']}"
        )

    runner = ExperimentRunner(
        f"E18 — streaming adaptive quality control, {num_objects} objects, "
        f"25 workers @ 0.85 accuracy, ${PRICE}/assignment "
        f"(adaptive saved {savings:.1%} of fixed(r={FIXED_REDUNDANCY}) answers; "
        "online EM == batch EM on every item)"
    )
    sweep = runner.run([{}], lambda point: {})
    sweep.rows = [fixed, adaptive]
    record_table(
        "E18_adaptive_quality",
        sweep.to_table(
            columns=["strategy", "answers", "spend_usd", "accuracy", "collect_seconds"]
        ),
    )

    if not smoke:
        write_trajectory(
            "E18",
            {
                "scale": bench_scale,
                "objects": num_objects,
                "fixed": fixed,
                "adaptive": adaptive,
                "adaptive_detail": detail,
                "savings_fraction": round(savings, 4),
            },
        )
