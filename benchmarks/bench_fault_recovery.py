"""E3: crash-and-rerun — the cost and correctness of the sharable guarantee.

Crashes a 200-task experiment at points spread across its execution, reruns
it after every crash, and reports (a) that the final result matches the
uninterrupted baseline, (b) that the platform never received a duplicate
task, and (c) how much work each rerun actually redid (cache hits vs. new
writes).
"""

from __future__ import annotations

import pytest

from repro import CrowdContext
from repro.config import PlatformConfig, WorkerPoolConfig
from repro.datasets import make_image_label_dataset
from repro.exceptions import CrashInjected
from repro.platform.client import PlatformClient
from repro.platform.server import PlatformServer
from repro.presenters import ImageLabelPresenter
from repro.simulation import CrashPlan, CrashingEngine, ExperimentRunner
from repro.storage import SqliteEngine
from repro.workers.pool import WorkerPool

NUM_IMAGES = 200
DATASET = make_image_label_dataset(num_images=NUM_IMAGES, seed=17)


def fresh_platform(seed: int = 17) -> PlatformClient:
    pool = WorkerPool.from_config(WorkerPoolConfig(size=30, mean_accuracy=0.9, seed=seed))
    return PlatformClient(PlatformServer(worker_pool=pool, config=PlatformConfig(seed=seed)))


def experiment(engine, client) -> list:
    context = CrowdContext(engine=engine, client=client, ground_truth=DATASET.ground_truth)
    data = (
        context.CrowdData(DATASET.images, "crash_bench")
        .set_presenter(ImageLabelPresenter())
        .publish_task(n_assignments=3)
        .get_result()
        .mv()
    )
    return data.column("mv")


def crash_and_recover(db_path: str, crash_points: list[int]) -> dict:
    """Crash at each point, then rerun to completion; return cost counters."""
    client = fresh_platform()
    durable = SqliteEngine(db_path)
    crashes = 0
    for crash_after in crash_points:
        plan = CrashPlan(crash_after_writes=crash_after)
        try:
            experiment(CrashingEngine(durable, plan), client)
        except CrashInjected:
            crashes += 1
    labels = experiment(durable, client)
    stats = client.statistics()
    durable.close()
    return {
        "crashes": crashes,
        "attempts": len(crash_points) + 1,
        "tasks_on_platform": stats["tasks"],
        "answers_on_platform": stats["task_runs"],
        "labels": labels,
    }


def test_fault_recovery_no_duplicate_work(benchmark, record_table, tmp_path):
    """Headline: after 5 crashes the platform still has exactly one task per image."""
    baseline = experiment(SqliteEngine(str(tmp_path / "baseline.db")), fresh_platform())

    def run():
        return crash_and_recover(
            str(tmp_path / "crashy.db"), crash_points=[25, 90, 180, 320, 405]
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert result["labels"] == baseline
    assert result["tasks_on_platform"] == NUM_IMAGES
    assert result["answers_on_platform"] == NUM_IMAGES * 3

    runner = ExperimentRunner("E3 — crash-and-rerun (200-image experiment, 5 injected crashes)")
    sweep = runner.run([{}], lambda point: {})
    sweep.rows = [
        {
            "crashes": result["crashes"],
            "attempts": result["attempts"],
            "tasks_on_platform": result["tasks_on_platform"],
            "expected_tasks": NUM_IMAGES,
            "duplicate_tasks": result["tasks_on_platform"] - NUM_IMAGES,
            "result_matches_uninterrupted_run": result["labels"] == baseline,
        }
    ]
    record_table(
        "E3_fault_recovery",
        sweep.to_table(
            columns=[
                "crashes",
                "attempts",
                "tasks_on_platform",
                "expected_tasks",
                "duplicate_tasks",
                "result_matches_uninterrupted_run",
            ]
        ),
    )


def test_fault_recovery_rerun_cost(benchmark, record_table, tmp_path):
    """How cheap is a rerun compared to the original run (cache hit rate)?"""
    db_path = str(tmp_path / "rerun_cost.db")
    client = fresh_platform()
    durable = SqliteEngine(db_path)
    experiment(durable, client)  # original run pays the crowd cost

    def rerun():
        context = CrowdContext(engine=durable, client=client, ground_truth=DATASET.ground_truth)
        data = (
            context.CrowdData(DATASET.images, "crash_bench")
            .set_presenter(ImageLabelPresenter())
            .publish_task(n_assignments=3)
            .get_result()
            .mv()
        )
        publish = next(
            m for m in reversed(data.manipulation_history()) if m.operation == "publish_task"
        )
        collect = next(
            m for m in reversed(data.manipulation_history()) if m.operation == "get_result"
        )
        return {
            "publish_cache_hits": publish.cache_hits,
            "collect_cache_hits": collect.cache_hits,
            "rows": len(data),
        }

    result = benchmark(rerun)
    assert result["publish_cache_hits"] == NUM_IMAGES
    assert result["collect_cache_hits"] == NUM_IMAGES

    runner = ExperimentRunner("E3b — rerun cost (cache hits out of 200 rows)")
    sweep = runner.run([{}], lambda point: {})
    sweep.rows = [result]
    record_table(
        "E3b_rerun_cost",
        sweep.to_table(columns=["rows", "publish_cache_hits", "collect_cache_hits"]),
    )
    durable.close()
