"""E13: elastic consistent-hash sharding — rebalance cost and scan parity.

Part 1 — **rebalance cost**: load K records into a 4-member ring, grow it to
5 members online, and price the move.  Three numbers matter and two are
*asserted*, not just reported:

* keys moved must stay under **2x the ideal K/N fraction** (the ideal for
  growing N -> N+1 is K/(N+1); the virtual-node ring should be close) — and
  far under the near-total reshuffle a naive ``hash mod N`` scheme would
  force, which the table prints alongside for scale;
* the post-rebalance ``scan`` must be **byte-identical** (keys, values,
  versions, order) to a never-rebalanced control ring holding the same
  writes — elasticity must be invisible to readers.

Part 2 — **scan parity**: the same records behind the ring engine and the
modulo-:class:`~repro.storage.ShardedEngine` at equal member counts, timing
``put_many``, a cold scan (the ring pays its one-off sequence-index build
here), a warm scan and a paged walk.  Contents are asserted identical, so
the numbers compare equal work.

Run ``pytest benchmarks/bench_ring_rebalance.py -q --bench-scale=smoke`` for
a seconds-long sanity pass at toy scale (the structural assertions still
run; only the scale shrinks).
"""

from __future__ import annotations

import os

import pytest

from repro.simulation import ExperimentRunner
from repro.storage import ConsistentHashEngine, ShardedEngine, SqliteEngine, shard_index
from repro.utils.timing import Stopwatch

from record import write_trajectory

pytestmark = [pytest.mark.slow, pytest.mark.ring]

NUM_RECORDS = 20_000
SMOKE_RECORDS = 600
BASE_MEMBERS = 4
VIRTUAL_NODES = 64
LOAD_CHUNK = 2_000
SCAN_PAGE = 512


def make_items(num_records: int) -> list[tuple[str, dict]]:
    return [(f"key-{index:08d}", {"payload": index}) for index in range(num_records)]


def build_ring(base_dir: str, tag: str, member_count: int) -> ConsistentHashEngine:
    children = {
        f"ring-{index:02d}": SqliteEngine(
            os.path.join(base_dir, tag, f"ring-{index:02d}.db")
        )
        for index in range(member_count)
    }
    return ConsistentHashEngine(children, virtual_nodes=VIRTUAL_NODES)


def load(engine, items) -> float:
    engine.create_table("bench")
    with Stopwatch() as watch:
        for start in range(0, len(items), LOAD_CHUNK):
            engine.put_many("bench", items[start : start + LOAD_CHUNK])
    return watch.elapsed


def run_rebalance_experiment(base_dir: str, num_records: int) -> dict:
    """Grow a loaded ring online; assert the E13 acceptance criteria."""
    items = make_items(num_records)
    control = build_ring(base_dir, "control", BASE_MEMBERS)
    load(control, items)
    grown = build_ring(base_dir, "grown", BASE_MEMBERS)
    load(grown, items)

    joiner = SqliteEngine(os.path.join(base_dir, "grown", f"ring-{BASE_MEMBERS:02d}.db"))
    with Stopwatch() as rebalance:
        report = grown.rebalance(add={f"ring-{BASE_MEMBERS:02d}": joiner})

    ideal = num_records / (BASE_MEMBERS + 1)
    naive_moves = sum(
        1
        for key, _ in items
        if shard_index(key, BASE_MEMBERS) != shard_index(key, BASE_MEMBERS + 1)
    )
    # E13 acceptance: under 2x the ideal K/N fraction, and nowhere near the
    # modulo reshuffle.
    assert report["keys_moved"] < 2 * ideal, (
        f"rebalance moved {report['keys_moved']} keys; ideal {ideal:.0f}, "
        f"bound {2 * ideal:.0f}"
    )
    assert report["keys_moved"] < naive_moves

    # E13 acceptance: elasticity is invisible — the grown ring scans
    # byte-identically (keys, values, versions, order) to the control ring.
    with Stopwatch() as verify:
        assert list(grown.scan("bench")) == list(control.scan("bench"))
    assert grown.count("bench") == num_records

    row = {
        "records": num_records,
        "members": f"{BASE_MEMBERS}->{BASE_MEMBERS + 1}",
        "keys_moved": report["keys_moved"],
        "moved_pct": round(100 * report["keys_moved"] / num_records, 1),
        "ideal_pct": round(100 / (BASE_MEMBERS + 1), 1),
        "naive_modulo_pct": round(100 * naive_moves / num_records, 1),
        "waves": report["waves"],
        "rebalance_seconds": round(rebalance.elapsed, 3),
        "verify_scan_seconds": round(verify.elapsed, 3),
    }
    control.close()
    grown.close()
    return row


def run_scan_parity(base_dir: str, num_records: int) -> list[dict]:
    """Ring vs modulo-sharded engine on identical records and member counts."""
    items = make_items(num_records)
    members = BASE_MEMBERS + 1
    engines = {
        "sharded": ShardedEngine(
            [
                SqliteEngine(os.path.join(base_dir, "parity-sharded", f"s{i:02d}.db"))
                for i in range(members)
            ]
        ),
        "ring": build_ring(base_dir, "parity-ring", members),
    }
    rows = []
    contents = {}
    for name, engine in engines.items():
        put_seconds = load(engine, items)
        with Stopwatch() as cold:
            cold_count = sum(1 for _ in engine.scan("bench"))
        with Stopwatch() as warm:
            warm_count = sum(1 for _ in engine.scan("bench"))
        with Stopwatch() as paged:
            walked, cursor = 0, None
            while True:
                page = list(engine.scan("bench", limit=SCAN_PAGE, start_after=cursor))
                walked += len(page)
                if len(page) < SCAN_PAGE:
                    break
                cursor = page[-1].key
        assert cold_count == warm_count == walked == num_records
        contents[name] = [(r.key, r.value, r.version) for r in engine.scan("bench", limit=50)]
        rows.append(
            {
                "engine": name,
                "members": members,
                "records": num_records,
                "put_many_seconds": round(put_seconds, 3),
                "cold_scan_seconds": round(cold.elapsed, 3),
                "warm_scan_seconds": round(warm.elapsed, 3),
                "warm_krows_per_s": round(num_records / max(warm.elapsed, 1e-9) / 1000, 1),
                "paged_scan_seconds": round(paged.elapsed, 3),
            }
        )
        engine.close()
    assert contents["ring"] == contents["sharded"]  # equal work compared
    return rows


def test_ring_rebalance_cost(record_table, tmp_path, bench_scale):
    smoke = bench_scale == "smoke"
    num_records = SMOKE_RECORDS if smoke else NUM_RECORDS
    row = run_rebalance_experiment(str(tmp_path), num_records)

    runner = ExperimentRunner(
        f"E13 — online ring rebalance {row['members']} members "
        f"({num_records} records: moved {row['moved_pct']}% vs ideal "
        f"{row['ideal_pct']}% vs naive modulo {row['naive_modulo_pct']}%)"
    )
    sweep = runner.run([{}], lambda point: {})
    sweep.rows = [row]
    record_table(
        "E13_ring_rebalance",
        sweep.to_table(
            columns=[
                "records",
                "members",
                "keys_moved",
                "moved_pct",
                "ideal_pct",
                "naive_modulo_pct",
                "waves",
                "rebalance_seconds",
                "verify_scan_seconds",
            ]
        ),
    )
    if not smoke:
        # The trajectory file is a committed artifact tracking full-scale
        # numbers across PRs; a toy-scale smoke pass must not clobber it.
        write_trajectory("E13", {"scale": bench_scale, "rows": [row]})


def test_ring_scan_parity(record_table, tmp_path, bench_scale):
    smoke = bench_scale == "smoke"
    num_records = SMOKE_RECORDS if smoke else NUM_RECORDS
    rows = run_scan_parity(str(tmp_path), num_records)

    runner = ExperimentRunner(
        f"E13 — ring vs sharded scan parity ({num_records} records, "
        f"{BASE_MEMBERS + 1} sqlite members; ring cold scan includes its "
        "one-off sequence-index build)"
    )
    sweep = runner.run([{}], lambda point: {})
    sweep.rows = rows
    record_table(
        "E13_ring_scan_parity",
        sweep.to_table(
            columns=[
                "engine",
                "members",
                "records",
                "put_many_seconds",
                "cold_scan_seconds",
                "warm_scan_seconds",
                "warm_krows_per_s",
                "paged_scan_seconds",
            ]
        ),
    )
    if not smoke:
        # The trajectory file is a committed artifact tracking full-scale
        # numbers across PRs; a toy-scale smoke pass must not clobber it.
        write_trajectory("E13b", {"scale": bench_scale, "rows": rows})
