"""E2 (Figure 3): Ally reruns and extends Bob's experiment.

The measured quantity is the cost of reproduction: how long the rerun takes
and how many crowd tasks it publishes (the answer must be zero), compared to
the original run, plus the cost of Ally's incremental extension.
"""

from __future__ import annotations

import os

import pytest

from repro import CrowdContext
from repro.datasets import make_image_label_dataset
from repro.presenters import ImageLabelPresenter
from repro.simulation import ExperimentRunner

DATASET = make_image_label_dataset(num_images=100, seed=13)
EXTRA = [f"http://img.example.org/ally/{i}.jpg" for i in range(25)]


def ground_truth(obj):
    return DATASET.ground_truth(obj) or "Yes"


def bobs_code(cc: CrowdContext, images):
    return (
        cc.CrowdData(images, "fig3")
        .set_presenter(ImageLabelPresenter())
        .publish_task(n_assignments=3)
        .get_result()
        .mv()
    )


def original_run(db_path: str) -> dict:
    if os.path.exists(db_path):
        os.unlink(db_path)
    cc = CrowdContext.with_sqlite(db_path, seed=13, ground_truth=ground_truth)
    data = bobs_code(cc, DATASET.images)
    stats = cc.client.statistics()
    cc.close()
    return {"run": "bob_original", "crowd_tasks": stats["tasks"], "rows": len(data)}


def ally_rerun(db_path: str) -> dict:
    cc = CrowdContext.with_sqlite(db_path, seed=99, ground_truth=ground_truth)
    data = bobs_code(cc, DATASET.images)
    stats = cc.client.statistics()
    cc.close()
    return {"run": "ally_rerun", "crowd_tasks": stats["tasks"], "rows": len(data)}


def ally_extension(db_path: str) -> dict:
    cc = CrowdContext.with_sqlite(db_path, seed=21, ground_truth=ground_truth)
    data = bobs_code(cc, DATASET.images)
    data.extend(EXTRA).publish_task(n_assignments=3).get_result().mv()
    stats = cc.client.statistics()
    cc.close()
    return {"run": "ally_extension", "crowd_tasks": stats["tasks"], "rows": len(data)}


def test_fig3_ally_rerun(benchmark, record_table, tmp_path):
    """Headline: a rerun of a 100-image experiment publishes zero tasks."""
    db_path = str(tmp_path / "fig3.db")
    original = original_run(db_path)
    rerun = benchmark(ally_rerun, db_path)
    assert rerun["crowd_tasks"] == 0
    assert original["crowd_tasks"] == 100

    extension = ally_extension(db_path)
    assert extension["crowd_tasks"] == len(EXTRA)

    runner = ExperimentRunner("E2 / Figure 3 — reproduction cost (100-image experiment)")
    sweep = runner.run([{}], lambda point: {})
    sweep.rows = [original, rerun, extension]
    record_table("E2_fig3_ally", sweep.to_table(columns=["run", "crowd_tasks", "rows"]))
