#!/usr/bin/env python
"""Examples checker: run every ``examples/*.py`` headlessly and require exit 0.

The examples double as living documentation — README and the docs set link
to them — so a refactor that breaks one silently rots the docs.  This
checker (see ``make examples-check``, part of ``make check``) executes each
example as its own process with ``src`` on the path, in a throwaway working
directory so database artifacts never land in the repo, and reports every
failure with the tail of its stderr.

``examples/quickstart.py`` is deliberately *also* run (with stronger output
assertions) by ``tools/docs_check.py``; this checker still includes it so
the "every example exits 0" contract stays uniform and holds even when
docs-check runs with ``--skip-quickstart``.

Exit status 0 when every example passes; 1 with a per-example report
otherwise.

Usage:
    PYTHONPATH=src python tools/examples_check.py [--timeout SECONDS]
"""

from __future__ import annotations

import argparse
import os
import subprocess
import sys
import tempfile
import time

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
EXAMPLES_DIR = os.path.join(REPO_ROOT, "examples")


def iter_example_files() -> list[str]:
    """Every example script, sorted for stable output."""
    return sorted(
        os.path.join(EXAMPLES_DIR, name)
        for name in os.listdir(EXAMPLES_DIR)
        if name.endswith(".py")
    )


def run_example(path: str, timeout: float) -> tuple[str | None, float]:
    """Run one example; return (problem-or-None, elapsed seconds)."""
    env = dict(os.environ)
    src = os.path.join(REPO_ROOT, "src")
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = src + (os.pathsep + existing if existing else "")
    relative = os.path.relpath(path, REPO_ROOT)
    start = time.perf_counter()
    with tempfile.TemporaryDirectory(prefix="repro-example-") as workdir:
        try:
            result = subprocess.run(
                [sys.executable, path],
                capture_output=True,
                text=True,
                timeout=timeout,
                env=env,
                cwd=workdir,
            )
        except subprocess.TimeoutExpired:
            return f"{relative}: timed out after {timeout:.0f}s", time.perf_counter() - start
    elapsed = time.perf_counter() - start
    if result.returncode != 0:
        tail = (result.stderr or result.stdout).strip().splitlines()[-5:]
        return f"{relative}: exited {result.returncode}: " + " | ".join(tail), elapsed
    return None, elapsed


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--timeout",
        type=float,
        default=120.0,
        help="per-example wall-clock limit in seconds (default: 120)",
    )
    args = parser.parse_args(argv)

    examples = iter_example_files()
    if not examples:
        print("examples-check: no examples found under examples/")
        return 1

    problems: list[str] = []
    for path in examples:
        problem, elapsed = run_example(path, args.timeout)
        status = "FAIL" if problem else "ok"
        print(f"  {status:4s} {os.path.relpath(path, REPO_ROOT)} ({elapsed:.1f}s)")
        if problem:
            problems.append(problem)

    if problems:
        print(f"examples-check: {len(problems)} of {len(examples)} example(s) failed:")
        for problem in problems:
            print(f"  - {problem}")
        return 1
    print(f"examples-check: all {len(examples)} example(s) ran clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
