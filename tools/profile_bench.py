#!/usr/bin/env python
"""Profile the hot-path benchmarks under cProfile (see ``make profile``).

Runs each selected benchmark module in its own subprocess under
``python -m cProfile``, writes the raw profile to
``benchmarks/results/<tag>_profile.pstats`` (load it later with
:mod:`pstats` or snakeviz-style viewers), and prints the top
``--top`` functions by cumulative time — the quickest way to see where a
storage-layer change actually moved the needle.

By default the benchmarks run at smoke scale so a full profile pass takes
seconds; pass ``--scale full`` for paper-scale profiles (minutes — the
profiler roughly doubles each benchmark's wall clock).

Usage:
    PYTHONPATH=src python tools/profile_bench.py [--scale smoke|full]
        [--top 25] [--only E10,E13]
"""

from __future__ import annotations

import argparse
import os
import pstats
import subprocess
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
RESULTS_DIR = os.path.join(REPO_ROOT, "benchmarks", "results")

#: tag -> benchmark module profiled under that tag.
BENCHMARKS = {
    "E10": "bench_platform_store.py",
    "E12": "bench_pipelined_transport.py",
    "E13": "bench_ring_rebalance.py",
    "E16": "bench_hot_path.py",
}


def profile_one(tag: str, filename: str, scale: str, top: int) -> int:
    """Profile one benchmark module; return the subprocess's exit code."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    pstats_path = os.path.join(RESULTS_DIR, f"{tag}_profile.pstats")
    bench_path = os.path.join("benchmarks", filename)
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src") + os.pathsep + env.get(
        "PYTHONPATH", ""
    )
    print(f"\n=== {tag}: {bench_path} (--bench-scale {scale}) ===", flush=True)
    result = subprocess.run(
        [
            sys.executable,
            "-m",
            "cProfile",
            "-o",
            pstats_path,
            "-m",
            "pytest",
            bench_path,
            "-q",
            f"--bench-scale={scale}",
        ],
        cwd=REPO_ROOT,
        env=env,
    )
    if result.returncode != 0:
        print(f"{tag}: benchmark failed (exit {result.returncode})")
        return result.returncode
    stats = pstats.Stats(pstats_path)
    stats.sort_stats("cumulative").print_stats(top)
    print(f"{tag}: raw profile saved to {os.path.relpath(pstats_path, REPO_ROOT)}")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--scale",
        choices=("smoke", "full"),
        default="smoke",
        help="benchmark scale to profile at (default smoke)",
    )
    parser.add_argument(
        "--top",
        type=int,
        default=25,
        help="how many functions to print, by cumulative time (default 25)",
    )
    parser.add_argument(
        "--only",
        default="",
        help="comma-separated benchmark tags to profile (default: all of "
        f"{', '.join(BENCHMARKS)})",
    )
    args = parser.parse_args(argv)

    selected = [tag.strip() for tag in args.only.split(",") if tag.strip()] or list(
        BENCHMARKS
    )
    unknown = [tag for tag in selected if tag not in BENCHMARKS]
    if unknown:
        parser.error(f"unknown benchmark tags {unknown}; known: {list(BENCHMARKS)}")

    status = 0
    for tag in selected:
        status = profile_one(tag, BENCHMARKS[tag], args.scale, args.top) or status
    return status


if __name__ == "__main__":
    sys.exit(main())
