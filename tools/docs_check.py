#!/usr/bin/env python
"""Documentation checker: lint the docs set, then smoke the quickstart.

Five checks, all cheap enough for tier-1 (see ``make docs-check`` and
``tests/integration/test_docs_check.py``):

1. **Link lint** — every relative link or image target in ``README.md`` and
   ``docs/*.md`` must point at a file or directory that exists in the repo.
   External (``http(s)://``, ``mailto:``) and pure-anchor (``#...``) targets
   are skipped; a ``path#fragment`` target is checked for the path part.
2. **Cross-page links** — every page under ``docs/`` must be linked from at
   least one *other* checked document, so the set stays a navigable web
   rather than accumulating orphan pages.
3. **Config-field coverage** — every field of ``StorageConfig``,
   ``PlatformConfig``, ``ScenarioSpec``, ``TaskType`` and
   ``AdaptivePolicy`` (read live via ``dataclasses.fields``) must be
   mentioned somewhere under ``docs/``; adding a knob without documenting
   it fails the build.
4. **Benchmark catalogue** — every ``benchmarks/bench_*.py`` file must
   appear in ``docs/benchmarks.md``, keeping the catalogue unable to go
   stale.
5. **Quickstart smoke** — ``examples/quickstart.py`` runs headlessly against
   a throwaway database and its output must prove the fault-recovery
   guarantee the README promises: the second run publishes zero new tasks.

Exit status 0 when everything passes; 1 with a per-problem report otherwise.

Usage:
    PYTHONPATH=src python tools/docs_check.py [--skip-quickstart]
"""

from __future__ import annotations

import argparse
import dataclasses
import os
import re
import subprocess
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

#: Markdown inline links and images: [text](target) / ![alt](target).
_LINK = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)\)")

#: Target prefixes that are not filesystem paths.
_EXTERNAL = ("http://", "https://", "mailto:")

#: The catalogue page every benchmark file must appear in.
BENCH_CATALOGUE = os.path.join("docs", "benchmarks.md")


def iter_doc_files() -> list[str]:
    """The markdown files under the documentation contract."""
    files = [os.path.join(REPO_ROOT, "README.md")]
    docs_dir = os.path.join(REPO_ROOT, "docs")
    if os.path.isdir(docs_dir):
        for name in sorted(os.listdir(docs_dir)):
            if name.endswith(".md"):
                files.append(os.path.join(docs_dir, name))
    return files


def lint_links(doc_path: str) -> list[str]:
    """Return one problem string per broken relative link in *doc_path*."""
    problems: list[str] = []
    with open(doc_path, "r", encoding="utf-8") as handle:
        text = handle.read()
    for match in _LINK.finditer(text):
        target = match.group(1)
        if target.startswith(_EXTERNAL) or target.startswith("#"):
            continue
        path = target.split("#", 1)[0]
        if not path:
            continue
        resolved = os.path.normpath(os.path.join(os.path.dirname(doc_path), path))
        if not os.path.exists(resolved):
            relative = os.path.relpath(doc_path, REPO_ROOT)
            problems.append(f"{relative}: broken link target {target!r}")
    return problems


def _read(doc_path: str) -> str:
    with open(doc_path, "r", encoding="utf-8") as handle:
        return handle.read()


def check_cross_links(doc_files: list[str]) -> list[str]:
    """Every docs/ page must be linked from at least one other checked doc."""
    problems: list[str] = []
    link_targets: dict[str, set[str]] = {}
    for doc_path in doc_files:
        targets: set[str] = set()
        if not os.path.exists(doc_path):
            link_targets[doc_path] = targets
            continue
        for match in _LINK.finditer(_read(doc_path)):
            target = match.group(1)
            if target.startswith(_EXTERNAL) or target.startswith("#"):
                continue
            path = target.split("#", 1)[0]
            if path:
                targets.add(
                    os.path.normpath(os.path.join(os.path.dirname(doc_path), path))
                )
        link_targets[doc_path] = targets
    for doc_path in doc_files:
        relative = os.path.relpath(doc_path, REPO_ROOT)
        if not relative.replace(os.sep, "/").startswith("docs/"):
            continue
        linked_from = [
            other
            for other, targets in link_targets.items()
            if other != doc_path and doc_path in targets
        ]
        if not linked_from:
            problems.append(
                f"{relative}: orphan page — not linked from any other "
                "documentation file"
            )
    return problems


def check_config_field_coverage(doc_files: list[str]) -> list[str]:
    """Every config/spec dataclass field must be mentioned in docs/."""
    sys.path.insert(0, os.path.join(REPO_ROOT, "src"))
    try:
        from repro.config import PlatformConfig, StorageConfig
        from repro.quality import AdaptivePolicy
        from repro.workload import ScenarioSpec, TaskType
    finally:
        sys.path.pop(0)
    docs_text = "\n".join(
        _read(doc_path)
        for doc_path in doc_files
        if os.path.relpath(doc_path, REPO_ROOT).replace(os.sep, "/").startswith("docs/")
    )
    problems: list[str] = []
    for config in (StorageConfig, PlatformConfig, ScenarioSpec, TaskType, AdaptivePolicy):
        for field in dataclasses.fields(config):
            # A mention must look like documentation of the field, not
            # incidental prose (several fields are common words: name,
            # seed, store, path...): either inside an inline-code span
            # (`engine`, `StorageConfig(engine=...)`) or as the leading
            # cell of a markdown table row.
            name = re.escape(field.name)
            pattern = re.compile(
                rf"`[^`\n]*\b{name}\b[^`\n]*`" rf"|^\|\s*`?{name}`?\s*\|",
                re.MULTILINE,
            )
            if not pattern.search(docs_text):
                problems.append(
                    f"docs/: {config.__name__}.{field.name} is not documented "
                    "anywhere under docs/ (expected in a code span or a "
                    "table row)"
                )
    return problems


def check_benchmark_catalogue() -> list[str]:
    """Every benchmarks/bench_*.py must appear in docs/benchmarks.md."""
    catalogue_path = os.path.join(REPO_ROOT, BENCH_CATALOGUE)
    if not os.path.exists(catalogue_path):
        return [f"missing benchmark catalogue: {BENCH_CATALOGUE}"]
    catalogue = _read(catalogue_path)
    bench_dir = os.path.join(REPO_ROOT, "benchmarks")
    problems: list[str] = []
    for name in sorted(os.listdir(bench_dir)):
        if name.startswith("bench_") and name.endswith(".py") and name not in catalogue:
            problems.append(
                f"{BENCH_CATALOGUE}: stale catalogue — benchmarks/{name} has "
                "no entry"
            )
    return problems


def run_quickstart() -> list[str]:
    """Run the quickstart headlessly; return problems (empty when healthy)."""
    env = dict(os.environ)
    src = os.path.join(REPO_ROOT, "src")
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = src + (os.pathsep + existing if existing else "")
    result = subprocess.run(
        [sys.executable, os.path.join(REPO_ROOT, "examples", "quickstart.py")],
        capture_output=True,
        text=True,
        timeout=120,
        env=env,
        cwd=REPO_ROOT,
    )
    if result.returncode != 0:
        tail = (result.stderr or result.stdout).strip().splitlines()[-5:]
        return ["examples/quickstart.py exited non-zero: " + " | ".join(tail)]
    # The second run must replay entirely from the cache.
    published = re.findall(r"crowd tasks published this run\s*:\s*(\d+)", result.stdout)
    if len(published) < 2 or published[-1] != "0":
        return [
            "examples/quickstart.py did not reproduce from cache "
            f"(published-per-run counts: {published})"
        ]
    return []


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--skip-quickstart",
        action="store_true",
        help="only lint links, do not execute examples/quickstart.py",
    )
    args = parser.parse_args(argv)

    problems: list[str] = []
    checked = 0
    existing: list[str] = []
    for doc_path in iter_doc_files():
        if not os.path.exists(doc_path):
            problems.append(f"missing documentation file: {os.path.relpath(doc_path, REPO_ROOT)}")
            continue
        checked += 1
        existing.append(doc_path)
        problems.extend(lint_links(doc_path))
    problems.extend(check_cross_links(existing))
    problems.extend(check_config_field_coverage(existing))
    problems.extend(check_benchmark_catalogue())
    if not args.skip_quickstart:
        problems.extend(run_quickstart())

    if problems:
        print(f"docs-check: {len(problems)} problem(s) in {checked} file(s):")
        for problem in problems:
            print(f"  - {problem}")
        return 1
    quickstart_note = "skipped" if args.skip_quickstart else "ok"
    print(
        f"docs-check: {checked} markdown file(s) link-clean and cross-linked, "
        f"config fields + benchmark catalogue covered, quickstart {quickstart_note}"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
