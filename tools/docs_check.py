#!/usr/bin/env python
"""Documentation checker: link-lint the markdown docs, then smoke the quickstart.

Two checks, both cheap enough for tier-1 (see ``make docs-check`` and
``tests/integration/test_docs_check.py``):

1. **Link lint** — every relative link or image target in ``README.md`` and
   ``docs/*.md`` must point at a file or directory that exists in the repo.
   External (``http(s)://``, ``mailto:``) and pure-anchor (``#...``) targets
   are skipped; a ``path#fragment`` target is checked for the path part.
2. **Quickstart smoke** — ``examples/quickstart.py`` runs headlessly against
   a throwaway database and its output must prove the fault-recovery
   guarantee the README promises: the second run publishes zero new tasks.

Exit status 0 when everything passes; 1 with a per-problem report otherwise.

Usage:
    PYTHONPATH=src python tools/docs_check.py [--skip-quickstart]
"""

from __future__ import annotations

import argparse
import os
import re
import subprocess
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

#: Markdown inline links and images: [text](target) / ![alt](target).
_LINK = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)\)")

#: Target prefixes that are not filesystem paths.
_EXTERNAL = ("http://", "https://", "mailto:")


def iter_doc_files() -> list[str]:
    """The markdown files under the documentation contract."""
    files = [os.path.join(REPO_ROOT, "README.md")]
    docs_dir = os.path.join(REPO_ROOT, "docs")
    if os.path.isdir(docs_dir):
        for name in sorted(os.listdir(docs_dir)):
            if name.endswith(".md"):
                files.append(os.path.join(docs_dir, name))
    return files


def lint_links(doc_path: str) -> list[str]:
    """Return one problem string per broken relative link in *doc_path*."""
    problems: list[str] = []
    with open(doc_path, "r", encoding="utf-8") as handle:
        text = handle.read()
    for match in _LINK.finditer(text):
        target = match.group(1)
        if target.startswith(_EXTERNAL) or target.startswith("#"):
            continue
        path = target.split("#", 1)[0]
        if not path:
            continue
        resolved = os.path.normpath(os.path.join(os.path.dirname(doc_path), path))
        if not os.path.exists(resolved):
            relative = os.path.relpath(doc_path, REPO_ROOT)
            problems.append(f"{relative}: broken link target {target!r}")
    return problems


def run_quickstart() -> list[str]:
    """Run the quickstart headlessly; return problems (empty when healthy)."""
    env = dict(os.environ)
    src = os.path.join(REPO_ROOT, "src")
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = src + (os.pathsep + existing if existing else "")
    result = subprocess.run(
        [sys.executable, os.path.join(REPO_ROOT, "examples", "quickstart.py")],
        capture_output=True,
        text=True,
        timeout=120,
        env=env,
        cwd=REPO_ROOT,
    )
    if result.returncode != 0:
        tail = (result.stderr or result.stdout).strip().splitlines()[-5:]
        return ["examples/quickstart.py exited non-zero: " + " | ".join(tail)]
    # The second run must replay entirely from the cache.
    published = re.findall(r"crowd tasks published this run\s*:\s*(\d+)", result.stdout)
    if len(published) < 2 or published[-1] != "0":
        return [
            "examples/quickstart.py did not reproduce from cache "
            f"(published-per-run counts: {published})"
        ]
    return []


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--skip-quickstart",
        action="store_true",
        help="only lint links, do not execute examples/quickstart.py",
    )
    args = parser.parse_args(argv)

    problems: list[str] = []
    checked = 0
    for doc_path in iter_doc_files():
        if not os.path.exists(doc_path):
            problems.append(f"missing documentation file: {os.path.relpath(doc_path, REPO_ROOT)}")
            continue
        checked += 1
        problems.extend(lint_links(doc_path))
    if not args.skip_quickstart:
        problems.extend(run_quickstart())

    if problems:
        print(f"docs-check: {len(problems)} problem(s) in {checked} file(s):")
        for problem in problems:
            print(f"  - {problem}")
        return 1
    quickstart_note = "skipped" if args.skip_quickstart else "ok"
    print(f"docs-check: {checked} markdown file(s) link-clean, quickstart {quickstart_note}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
