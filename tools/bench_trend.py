#!/usr/bin/env python
"""Benchmark trend gate: fail when a fresh run regresses a committed number.

Every full-scale benchmark writes a machine-readable trajectory to
``benchmarks/results/BENCH_<name>.json`` (see ``benchmarks/record.py``).
The files are committed, so the last committed trajectory is the baseline:
this tool compares each working-tree trajectory against ``git show
HEAD:<path>`` and exits non-zero when any tracked metric regressed by more
than ``--tolerance`` (default 20%).

What counts as a metric is keyed by suffix, recursively over the payload:

* ``*_seconds`` — lower is better (a rise beyond tolerance is a regression);
* ``*_per_s`` / ``*_per_sec`` (including ``_krows_per_s`` etc.) — higher is
  better (a fall beyond tolerance is a regression).

Everything else (counts, ratios, labels) is ignored: ratios and speedups
are already asserted by the benchmarks themselves, and sizes do not drift
with machine load.  Trajectories that exist only in the working tree (a
brand-new benchmark) or only in HEAD (a renamed one) are skipped with a
note — a baseline appears the first time the file is committed.

Absolute wall-clock shifts smaller than ``--min-delta-seconds`` (default
0.05s) are ignored even when the relative change is large: sub-50ms numbers
are dominated by scheduler noise, not code.

Usage:
    python tools/bench_trend.py [--tolerance 0.2] [--min-delta-seconds 0.05]
"""

from __future__ import annotations

import argparse
import glob
import json
import os
import subprocess
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
RESULTS_DIR = os.path.join(REPO_ROOT, "benchmarks", "results")

LOWER_IS_BETTER = ("_seconds",)
HIGHER_IS_BETTER = ("_per_s", "_per_sec")


def committed_payload(rel_path: str) -> dict | None:
    """The trajectory as committed at HEAD, or None when absent there."""
    result = subprocess.run(
        ["git", "show", f"HEAD:{rel_path}"],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
    )
    if result.returncode != 0:
        return None
    try:
        return json.loads(result.stdout)
    except json.JSONDecodeError:
        return None


def metrics(payload, prefix="") -> dict[str, float]:
    """Flatten every tracked metric in *payload* to dotted-path -> value."""
    found: dict[str, float] = {}
    if isinstance(payload, dict):
        for key, value in payload.items():
            path = f"{prefix}.{key}" if prefix else str(key)
            if isinstance(value, (dict, list)):
                found.update(metrics(value, path))
            elif isinstance(value, (int, float)) and not isinstance(value, bool):
                lowered = str(key).lower()
                if lowered.endswith(LOWER_IS_BETTER) or lowered.endswith(
                    HIGHER_IS_BETTER
                ):
                    found[path] = float(value)
    elif isinstance(payload, list):
        for index, value in enumerate(payload):
            found.update(metrics(value, f"{prefix}[{index}]"))
    return found


def compare(
    name: str,
    baseline: dict,
    current: dict,
    tolerance: float,
    min_delta_seconds: float,
) -> list[str]:
    """Return one problem string per metric regressed beyond *tolerance*."""
    problems = []
    base_metrics = metrics(baseline)
    for path, current_value in sorted(metrics(current).items()):
        baseline_value = base_metrics.get(path)
        if baseline_value is None or baseline_value <= 0:
            continue  # new metric, or a zero baseline nothing can regress from
        lowered = path.lower()
        if lowered.endswith(LOWER_IS_BETTER):
            if abs(current_value - baseline_value) < min_delta_seconds:
                continue
            change = current_value / baseline_value - 1.0
            if change > tolerance:
                problems.append(
                    f"{name}: {path} rose {change:+.0%} "
                    f"({baseline_value} -> {current_value})"
                )
        else:
            change = current_value / baseline_value - 1.0
            if change < -tolerance:
                problems.append(
                    f"{name}: {path} fell {change:+.0%} "
                    f"({baseline_value} -> {current_value})"
                )
    return problems


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.20,
        help="maximum tolerated relative regression (default 0.20 = 20%%)",
    )
    parser.add_argument(
        "--min-delta-seconds",
        type=float,
        default=0.05,
        help="ignore wall-clock shifts smaller than this many seconds",
    )
    args = parser.parse_args(argv)

    paths = sorted(glob.glob(os.path.join(RESULTS_DIR, "BENCH_*.json")))
    if not paths:
        print("bench-trend: no trajectory files under benchmarks/results/")
        return 0

    problems: list[str] = []
    checked = 0
    for path in paths:
        rel_path = os.path.relpath(path, REPO_ROOT)
        name = os.path.basename(path)
        baseline = committed_payload(rel_path)
        if baseline is None:
            print(f"bench-trend: {name}: no committed baseline yet, skipping")
            continue
        with open(path, encoding="utf-8") as handle:
            current = json.load(handle)
        problems.extend(
            compare(name, baseline, current, args.tolerance, args.min_delta_seconds)
        )
        checked += 1

    if problems:
        print(
            f"bench-trend: {len(problems)} regression(s) beyond "
            f"{args.tolerance:.0%} vs HEAD:"
        )
        for problem in problems:
            print(f"  - {problem}")
        return 1
    print(
        f"bench-trend: {checked} trajectory file(s) within "
        f"{args.tolerance:.0%} of the committed baseline"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
