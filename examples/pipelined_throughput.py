"""Pipelined transport walkthrough: overlap round-trips, keep the answers.

Every client/server call pays a wire round-trip in a real deployment.  This
example injects a small per-call latency and runs the same experiment twice:

* with the serial :class:`~repro.platform.client.PlatformClient` — one
  blocking round-trip per call, so a paged collection pays
  ``ceil(tasks / page_size)`` latencies back to back;
* with the :class:`~repro.platform.client.PipelinedClient` — publish splits
  into in-flight sub-batches and collection pumps offset slices
  concurrently, so up to ``max_in_flight`` latencies overlap.

The printed table shows the speedup; the assertions prove the contents are
identical — pipelining changes *when* calls travel, never what they do.

Run with:
    PYTHONPATH=src python examples/pipelined_throughput.py
"""

from __future__ import annotations

import time

from repro.config import PlatformConfig, WorkerPoolConfig
from repro.platform.client import PipelinedClient, PlatformClient
from repro.platform.server import PlatformServer
from repro.platform.transport import LatencyInjectingTransport
from repro.workers.pool import WorkerPool

NUM_TASKS = 2000
PAGE_SIZE = 100
LATENCY_SECONDS = 0.002
MAX_IN_FLIGHT = 8


def build_client(pipelined: bool) -> PlatformClient:
    pool = WorkerPool.from_config(WorkerPoolConfig(size=30, mean_accuracy=0.9, seed=7))
    server = PlatformServer(worker_pool=pool, config=PlatformConfig(seed=7))
    transport = LatencyInjectingTransport(latency_seconds=LATENCY_SECONDS)
    if pipelined:
        return PipelinedClient(
            server, transport=transport, max_in_flight=MAX_IN_FLIGHT, batch_size=250
        )
    return PlatformClient(server, transport=transport)


def run(pipelined: bool) -> tuple[float, list[tuple[int, list[str]]]]:
    client = build_client(pipelined)
    project = client.create_project("pipelined-throughput")
    specs = [
        {
            "info": {"url": f"img-{i:04d}", "_true_answer": "Yes"},
            "n_assignments": 1,
            "dedup_key": f"obj-{i:04d}",
        }
        for i in range(NUM_TASKS)
    ]
    start = time.perf_counter()
    client.create_tasks(project.project_id, specs)
    client.simulate_work(project_id=project.project_id)
    collected = [
        (task_id, sorted(run.answer for run in runs))
        for task_id, runs in client.iter_task_runs_for_project(
            project.project_id, PAGE_SIZE
        )
    ]
    elapsed = time.perf_counter() - start
    client.close()
    return elapsed, collected


def main() -> None:
    print(
        f"publish + simulate + collect, {NUM_TASKS} tasks, "
        f"{LATENCY_SECONDS * 1000:.0f}ms per-call latency, page size {PAGE_SIZE}\n"
    )
    serial_seconds, serial_answers = run(pipelined=False)
    pipelined_seconds, pipelined_answers = run(pipelined=True)

    assert serial_answers == pipelined_answers, "pipelining must not change results"
    print(f"  serial client    : {serial_seconds:6.2f} s")
    print(f"  pipelined client : {pipelined_seconds:6.2f} s  "
          f"(max_in_flight={MAX_IN_FLIGHT})")
    print(f"  speedup          : {serial_seconds / pipelined_seconds:6.2f} x")
    print(f"\nidentical answers for all {len(serial_answers)} tasks: yes")


if __name__ == "__main__":
    main()
