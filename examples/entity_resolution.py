#!/usr/bin/env python
"""Crowdsourced entity resolution — the paper's example application.

Deduplicates a dirty product catalog with the CrowdER-style workflow (Wang et
al. 2012): machine-side blocking prunes the pair space, the crowd verifies the
surviving candidate pairs, and connected components turn pairwise matches into
entity clusters.  The run is compared against a machine-only join and against
the unpruned all-pairs crowd cost.

Run:
    python examples/entity_resolution.py
"""

from __future__ import annotations

from repro import CrowdContext
from repro.datasets import make_entity_resolution_dataset
from repro.operators import CrowdDedup, CrowdJoin, MachineOnlyJoin
from repro.simulation import pair_metrics


def main() -> None:
    dataset = make_entity_resolution_dataset(
        num_entities=30, duplicates_per_entity=3, dirtiness=0.3, seed=42
    )
    total_pairs = len(dataset) * (len(dataset) - 1) // 2
    print(f"catalog: {len(dataset)} records, {len(dataset.clusters)} true entities, "
          f"{total_pairs} record pairs\n")

    # ------------------------------------------------ machine-only baseline --
    machine = MachineOnlyJoin(threshold=0.55).join(dataset.records)
    machine_quality = pair_metrics(machine.matches, dataset.matching_pairs)
    print("machine-only join (similarity threshold, no crowd):")
    print(f"  crowd tasks: 0   precision={machine_quality['precision']:.2f} "
          f"recall={machine_quality['recall']:.2f} f1={machine_quality['f1']:.2f}\n")

    # ------------------------------------------------------- CrowdER hybrid --
    cc = CrowdContext.in_memory(seed=42)
    join = CrowdJoin(cc, "product_join", n_assignments=3)
    result = join.join(dataset.records, ground_truth=dataset.pair_ground_truth)
    quality = pair_metrics(result.matches, dataset.matching_pairs)
    report = result.report
    print("CrowdER hybrid join (blocking + crowd verification):")
    print(f"  candidate pairs after blocking : {report.crowd_tasks} of {report.total_candidates} "
          f"({report.savings_fraction():.1%} never reach the crowd)")
    print(f"  crowd answers collected        : {report.crowd_answers}")
    print(f"  precision={quality['precision']:.2f} recall={quality['recall']:.2f} "
          f"f1={quality['f1']:.2f}\n")

    # -------------------------------------------------- end-to-end dedup -----
    dedup_cc = CrowdContext.in_memory(seed=42)
    dedup = CrowdDedup(dedup_cc, "product_dedup", use_transitivity=True)
    dedup_result = dedup.dedup(dataset.records, ground_truth=dataset.pair_ground_truth)
    print("end-to-end deduplication (transitivity-aware join + clustering):")
    print(f"  crowd tasks                  : {dedup_result.report.crowd_tasks}")
    print(f"  pairs inferred by transitivity: {dedup_result.report.inferred}")
    print(f"  entities found               : {dedup_result.num_entities()} "
          f"(truth: {len(dataset.clusters)})")

    print("\n  example clusters (canonical record first):")
    for index, cluster in enumerate(dedup_result.clusters[:5]):
        canonical = dedup_result.canonical[index]
        names = [dataset.records[record_id]["name"] for record_id in cluster]
        print(f"    entity {index}: canonical={dataset.records[canonical]['name']!r} "
              f"members={names}")

    # Because the join ran through CrowdData, the whole thing is examinable.
    lineage = result.crowddata.lineage()
    print(f"\nlineage: {len(lineage)} answers from {len(lineage.workers())} workers, "
          f"mean latency {lineage.mean_latency():.0f}s")
    cc.close()
    dedup_cc.close()


if __name__ == "__main__":
    main()
