#!/usr/bin/env python
"""Adaptive redundancy and budget tracking.

Labels a 150-image collection three ways — fixed redundancy 3, fixed
redundancy 7, and the adaptive policy that collects extra answers only for
items the crowd disagrees on — and reports the dollar cost (at $0.02 per
assignment) and label accuracy of each.  Then shows the budget tracker
stopping an experiment that would overspend.

Run:
    python examples/adaptive_budgeting.py
"""

from __future__ import annotations

from repro import AdaptivePolicy, BudgetExceededError, BudgetTracker, CrowdContext
from repro.config import ReprowdConfig, StorageConfig, WorkerPoolConfig
from repro.datasets import make_image_label_dataset
from repro.operators import CrowdLabel
from repro.presenters import ImageLabelPresenter

DATASET = make_image_label_dataset(num_images=150, seed=11)
PRICE = 0.02


def make_context(budget: BudgetTracker | None = None) -> CrowdContext:
    config = ReprowdConfig(
        storage=StorageConfig(engine="memory"),
        workers=WorkerPoolConfig(size=25, mean_accuracy=0.85, accuracy_spread=0.05, seed=11),
    )
    return CrowdContext(config=config, budget=budget or BudgetTracker(price_per_assignment=PRICE))


def run(strategy: str) -> dict:
    context = make_context()
    if strategy.startswith("fixed"):
        redundancy = int(strategy.split("-")[1])
        labeler = CrowdLabel(context, strategy, n_assignments=redundancy)
    else:
        policy = AdaptivePolicy(
            initial_assignments=2, max_assignments=7, confidence_threshold=0.75, extra_per_round=1
        )
        labeler = CrowdLabel(context, strategy, adaptive=policy)
    result = labeler.label(DATASET.images, ground_truth=DATASET.ground_truth)
    row = {
        "strategy": strategy,
        "answers": result.report.crowd_answers,
        "spend": context.budget.spent,
        "accuracy": result.accuracy_against(DATASET.labels),
    }
    context.close()
    return row


def main() -> None:
    print(f"Labeling {len(DATASET)} images at ${PRICE:.02f} per assignment\n")
    print(f"{'strategy':<12} {'answers':>8} {'spend':>8} {'accuracy':>9}")
    print("-" * 42)
    for strategy in ("fixed-3", "fixed-7", "adaptive"):
        row = run(strategy)
        print(f"{row['strategy']:<12} {row['answers']:>8} "
              f"${row['spend']:>6.2f} {row['accuracy']:>9.3f}")

    print("\nEnforcing a hard budget:")
    tight_budget = BudgetTracker(price_per_assignment=PRICE, budget=2.00)  # 100 assignments
    context = make_context(budget=tight_budget)
    data = context.CrowdData(DATASET.images, "over_budget").set_presenter(ImageLabelPresenter())
    try:
        data.publish_task(n_assignments=3)  # would need 450 assignments = $9.00
    except BudgetExceededError as error:
        print(f"  publish_task aborted: {error}")
        print(f"  committed so far: ${tight_budget.spent:.2f} "
              f"({tight_budget.total_assignments()} assignments) — "
              "already-published tasks stay cached, so raising the budget and "
              "re-running continues where it stopped.")
    context.close()


if __name__ == "__main__":
    main()
