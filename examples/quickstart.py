#!/usr/bin/env python
"""Quickstart — Bob's experiment from Figure 2 of the paper.

Bob wants to label three images.  Each image is assigned to three workers and
majority vote decides the final label.  Running this script a second time
reproduces the experiment from the cached database without publishing a
single new crowd task — which is the whole point of Reprowd.

Run:
    python examples/quickstart.py
"""

from __future__ import annotations

import os
import tempfile

from repro import CrowdContext
from repro.presenters import ImageLabelPresenter

# The images Bob wants labeled (step 1's input data) and — because the crowd
# here is simulated — the hidden ground truth the simulated workers answer
# from.  A real deployment would have humans instead of the oracle.
IMAGES = [
    "http://img.example.org/demo/img1.jpg",
    "http://img.example.org/demo/img2.jpg",
    "http://img.example.org/demo/img3.jpg",
]
GROUND_TRUTH = {IMAGES[0]: "Yes", IMAGES[1]: "No", IMAGES[2]: "Yes"}


def run_bob_experiment(db_path: str) -> None:
    """Run the five steps of Figure 2 against the database at *db_path*."""
    cc = CrowdContext.with_sqlite(db_path, seed=7)
    cc.set_ground_truth(GROUND_TRUTH.get)

    data = (
        cc.CrowdData(IMAGES, table_name="image_label")                    # 1. input data
        .set_presenter(ImageLabelPresenter(question="Is there a face?"))  # 2. choose a UI
        .publish_task(n_assignments=3)                                    # 3. publish tasks
        .get_result()                                                     # 4. collect answers
        .mv()                                                             # 5. majority vote
    )

    print("table columns :", data.columns)
    for row in data.rows():
        answers = [assignment["answer"] for assignment in row["result"]["assignments"]]
        print(f"  {row['object']}  answers={answers}  mv={row['mv']}")

    stats = cc.client.statistics()
    print(f"crowd tasks published this run : {stats['tasks']}")
    print(f"crowd answers collected        : {stats['task_runs']}")
    cc.close()


def main() -> None:
    db_path = os.path.join(tempfile.gettempdir(), "reprowd_quickstart.db")
    if os.path.exists(db_path):
        os.unlink(db_path)

    print("=== first run (Bob does the experiment) ===")
    run_bob_experiment(db_path)

    print("\n=== second run (rerunning the same code reproduces it for free) ===")
    run_bob_experiment(db_path)

    print(f"\nshared artifact: {db_path} ({os.path.getsize(db_path)} bytes)")


if __name__ == "__main__":
    main()
