#!/usr/bin/env python
"""Ally examines Bob's experiment — Figure 3 of the paper.

Bob runs an image-labeling experiment and shares (a) his code and (b) the
SQLite database file.  Ally then:

1. reruns Bob's code against the shared database and gets the identical
   result with zero crowd work,
2. extends the experiment with more images (only the new images reach the
   crowd), and
3. inspects the lineage of Bob's answers: which workers answered, when tasks
   were published, how long answers took.

Run:
    python examples/ally_examine.py
"""

from __future__ import annotations

import os
import shutil
import tempfile

from repro import CrowdContext
from repro.datasets import make_image_label_dataset
from repro.presenters import ImageLabelPresenter

DATASET = make_image_label_dataset(num_images=10, seed=13)
EXTRA_IMAGES = [f"http://img.example.org/ally/extra_{i}.jpg" for i in range(5)]
EXTRA_TRUTH = {url: ("Yes" if i % 2 == 0 else "No") for i, url in enumerate(EXTRA_IMAGES)}


def ground_truth(obj):
    """Combined oracle covering Bob's images and Ally's extensions."""
    return DATASET.ground_truth(obj) or EXTRA_TRUTH.get(obj)


def bobs_experiment(cc: CrowdContext, images):
    """Bob's code, unchanged — exactly what he shares with Ally."""
    return (
        cc.CrowdData(images, table_name="bird_labels")
        .set_presenter(ImageLabelPresenter(question="Does the image contain a bird?"))
        .publish_task(n_assignments=3)
        .get_result()
        .mv()
    )


def main() -> None:
    workdir = tempfile.mkdtemp(prefix="reprowd_ally_")
    bob_db = os.path.join(workdir, "bob.db")
    ally_db = os.path.join(workdir, "ally.db")

    # ---------------------------------------------------------------- Bob ---
    print("=== Bob runs the experiment ===")
    bob_cc = CrowdContext.with_sqlite(bob_db, seed=13)
    bob_cc.set_ground_truth(ground_truth)
    bob_data = bobs_experiment(bob_cc, DATASET.images)
    print("Bob's labels:", bob_data.column("mv"))
    print("tasks published:", bob_cc.client.statistics()["tasks"])
    bob_cc.close()

    # Bob shares code + database file.
    shutil.copy2(bob_db, ally_db)

    # ------------------------------------------------------- Ally: rerun ---
    print("\n=== Ally reruns Bob's code against the shared DB ===")
    ally_cc = CrowdContext.with_sqlite(ally_db, seed=99)  # different machine, different seed
    ally_cc.set_ground_truth(ground_truth)
    ally_data = bobs_experiment(ally_cc, DATASET.images)
    print("Ally's labels :", ally_data.column("mv"))
    print("identical to Bob's:", ally_data.column("mv") == bob_data.column("mv"))
    print("tasks published on Ally's platform:", ally_cc.client.statistics()["tasks"])

    # ------------------------------------------------- Ally: extend (L5) ---
    print("\n=== Ally extends the experiment with 5 more images ===")
    ally_data.extend(EXTRA_IMAGES).publish_task(n_assignments=3).get_result().mv()
    print("rows now:", len(ally_data))
    print("new tasks published:", ally_cc.client.statistics()["tasks"])
    print("labels for the new images:", ally_data.column("mv")[-len(EXTRA_IMAGES):])

    # --------------------------------------------- Ally: lineage (L11-16) ---
    print("\n=== Ally checks the lineage of the experiment ===")
    lineage = ally_data.lineage()
    print("distinct workers          :", len(lineage.workers()))
    print("answers per worker        :", dict(sorted(lineage.worker_contributions().items())[:5]), "...")
    start, end = lineage.publication_window()
    print(f"tasks published (sim time): {start:.0f}s .. {end:.0f}s")
    start, end = lineage.collection_window()
    print(f"answers collected         : {start:.0f}s .. {end:.0f}s")
    print(f"mean worker latency       : {lineage.mean_latency():.1f}s")
    print("answer distribution       :", lineage.answer_distribution())

    print("\n=== Ally checks what Bob actually did (manipulation log) ===")
    for manipulation in ally_data.manipulation_history():
        print(
            f"  #{manipulation.sequence:<2} {manipulation.operation:<16} "
            f"rows={manipulation.rows_affected:<3} cache_hits={manipulation.cache_hits}"
        )
    ally_cc.close()
    print(f"\n(working directory: {workdir})")


if __name__ == "__main__":
    main()
