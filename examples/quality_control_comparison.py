#!/usr/bin/env python
"""Quality-control comparison: majority vote vs. weighted vote vs. EM.

Runs the same image-labeling experiment against worker pools of decreasing
reliability (and increasing spammer share) and reports the label accuracy of
each aggregation method on the same collected answers — the experiment the
quality-control component of Figure 1 exists to support.

Run:
    python examples/quality_control_comparison.py
"""

from __future__ import annotations

from repro import CrowdContext
from repro.config import ReprowdConfig, StorageConfig, WorkerPoolConfig
from repro.datasets import make_image_label_dataset
from repro.presenters import ImageLabelPresenter


def run_condition(mean_accuracy: float, spammer_fraction: float, redundancy: int, seed: int = 7):
    """Collect answers once, then aggregate them three ways."""
    dataset = make_image_label_dataset(num_images=80, seed=seed)
    config = ReprowdConfig(
        storage=StorageConfig(engine="memory"),
        workers=WorkerPoolConfig(
            size=30,
            mean_accuracy=mean_accuracy,
            accuracy_spread=0.05,
            spammer_fraction=spammer_fraction,
            seed=seed,
        ),
    )
    cc = CrowdContext(config=config, ground_truth=dataset.ground_truth)
    data = (
        cc.CrowdData(dataset.images, "qc_comparison")
        .set_presenter(ImageLabelPresenter())
        .publish_task(n_assignments=redundancy)
        .get_result()
    )
    truth = {index: dataset.labels[url] for index, url in enumerate(dataset.images)}
    accuracies = {}
    for method in ("mv", "wmv", "em", "glad"):
        data.quality_control(method, column=method)
        accuracies[method] = data.last_aggregation.accuracy_against(truth)
    cc.close()
    return accuracies


def main() -> None:
    print("Label accuracy of each aggregation rule (80 images, redundancy 5)\n")
    header = f"{'worker pool':<38}  {'MV':>6}  {'WMV':>6}  {'EM':>6}  {'GLAD':>6}"
    print(header)
    print("-" * len(header))
    conditions = [
        ("reliable (acc 0.95, no spammers)", 0.95, 0.0),
        ("decent (acc 0.80, no spammers)", 0.80, 0.0),
        ("noisy (acc 0.70, no spammers)", 0.70, 0.0),
        ("decent + 20% spammers", 0.80, 0.2),
        ("decent + 40% spammers", 0.80, 0.4),
    ]
    for label, accuracy, spammers in conditions:
        result = run_condition(accuracy, spammers, redundancy=5)
        print(
            f"{label:<38}  {result['mv']:>6.3f}  {result['wmv']:>6.3f}  "
            f"{result['em']:>6.3f}  {result['glad']:>6.3f}"
        )
    print(
        "\nWith reliable crowds all rules agree; as spammers take over, the "
        "EM-family rules that learn per-worker quality from the data pull ahead "
        "of plain majority vote."
    )


if __name__ == "__main__":
    main()
