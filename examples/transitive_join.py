#!/usr/bin/env python
"""Transitivity-aware crowdsourced joins (Wang et al. 2013).

Shows how exploiting transitivity ("A=B and B=C, so don't ask about A=C")
reduces the number of crowd tasks relative to plain CrowdER verification, and
how the saving grows with the size of the duplicate clusters in the data.

Run:
    python examples/transitive_join.py
"""

from __future__ import annotations

from repro import CrowdContext
from repro.datasets import make_entity_resolution_dataset
from repro.operators import CrowdJoin, TransitiveCrowdJoin
from repro.simulation import pair_metrics


def compare(num_entities: int, duplicates_per_entity: int, seed: int = 7) -> dict:
    """Run both joins on the same dataset and return the comparison row."""
    dataset = make_entity_resolution_dataset(
        num_entities=num_entities, duplicates_per_entity=duplicates_per_entity, seed=seed
    )
    plain = CrowdJoin(CrowdContext.in_memory(seed=seed), "plain").join(
        dataset.records, ground_truth=dataset.pair_ground_truth
    )
    transitive = TransitiveCrowdJoin(CrowdContext.in_memory(seed=seed), "transitive").join(
        dataset.records, ground_truth=dataset.pair_ground_truth
    )
    saved = plain.report.crowd_tasks - transitive.report.crowd_tasks
    return {
        "cluster_size": duplicates_per_entity,
        "records": len(dataset),
        "crowder_tasks": plain.report.crowd_tasks,
        "transitive_tasks": transitive.report.crowd_tasks,
        "inferred": transitive.report.inferred,
        "saved": saved,
        "saved_pct": 100.0 * saved / max(1, plain.report.crowd_tasks),
        "crowder_f1": pair_metrics(plain.matches, dataset.matching_pairs)["f1"],
        "transitive_f1": pair_metrics(transitive.matches, dataset.matching_pairs)["f1"],
    }


def main() -> None:
    print("How transitive inference saves crowd tasks as duplicate clusters grow")
    print("(60 records in every configuration; only the cluster size changes)\n")
    header = (
        f"{'cluster':>7}  {'CrowdER':>8}  {'transitive':>10}  {'inferred':>8}  "
        f"{'saved':>6}  {'saved%':>6}  {'F1 (CrowdER)':>12}  {'F1 (trans)':>10}"
    )
    print(header)
    print("-" * len(header))
    for duplicates in (2, 3, 4, 5, 6):
        row = compare(num_entities=60 // duplicates, duplicates_per_entity=duplicates)
        print(
            f"{row['cluster_size']:>7}  {row['crowder_tasks']:>8}  {row['transitive_tasks']:>10}  "
            f"{row['inferred']:>8}  {row['saved']:>6}  {row['saved_pct']:>5.1f}%  "
            f"{row['crowder_f1']:>12.3f}  {row['transitive_f1']:>10.3f}"
        )
    print(
        "\nLarger clusters mean more pairs are deducible from earlier answers, "
        "so the transitivity-aware join asks the crowd less while matching "
        "CrowdER's quality."
    )


if __name__ == "__main__":
    main()
