#!/usr/bin/env python
"""Architecture tour — Figure 1 of the paper, component by component.

Walks through every box in the Reprowd architecture diagram with the smallest
possible working example of each: the storage engine, the simulated
crowdsourcing platform and worker pool, the presenters, the quality-control
component, CrowdData, and a crowdsourced operator built on top.

Run:
    python examples/architecture_tour.py
"""

from __future__ import annotations

import os
import tempfile

from repro import CrowdContext
from repro.config import PlatformConfig, WorkerPoolConfig
from repro.datasets import make_entity_resolution_dataset
from repro.operators import TransitiveCrowdJoin
from repro.platform import PlatformClient, PlatformServer
from repro.presenters import ImageLabelPresenter, RecordComparisonPresenter
from repro.quality import dawid_skene, majority_vote
from repro.storage import SqliteEngine
from repro.workers import WorkerPool


def section(title: str) -> None:
    print(f"\n{'=' * 72}\n{title}\n{'=' * 72}")


def main() -> None:
    workdir = tempfile.mkdtemp(prefix="reprowd_tour_")

    # -------------------------------------------------------------- Database
    section("1. Database (storage engine): durable task/result columns")
    engine = SqliteEngine(os.path.join(workdir, "tour.db"))
    engine.create_table("demo")
    engine.put("demo", "greeting", {"text": "hello, crowd"})
    print("stored and read back:", engine.get("demo", "greeting"))
    print("tables in the shared file:", engine.list_tables())

    # -------------------------------------------- Crowdsourcing platform ----
    section("2. Crowdsourcing platform + workers (simulated PyBossa)")
    pool = WorkerPool.from_config(WorkerPoolConfig(size=12, mean_accuracy=0.9, seed=3))
    server = PlatformServer(worker_pool=pool, config=PlatformConfig(seed=3))
    client = PlatformClient(server)
    project = client.create_project("tour-project", description="architecture tour")
    task = client.create_task(
        project.project_id,
        {"object": "http://img/1.jpg", "candidates": ["Yes", "No"], "_true_answer": "Yes"},
        n_assignments=3,
    )
    client.simulate_work(project.project_id)
    answers = [run.answer for run in client.get_task_runs(task.task_id)]
    print(f"project {project.name!r}, task {task.task_id}, answers from the crowd: {answers}")
    print("worker pool composition:", pool.statistics()["behaviors"])

    # ------------------------------------------------------------ Presenters
    section("3. Presenters (the web UI shown to workers)")
    image_presenter = ImageLabelPresenter(question="Is there a face?")
    pair_presenter = RecordComparisonPresenter()
    print("image label task HTML (truncated):")
    print("  " + image_presenter.render("http://img/1.jpg")[:100] + "...")
    print("record comparison task types known to the registry:",
          sorted({image_presenter.task_type, pair_presenter.task_type}))

    # ------------------------------------------------------ Quality control
    section("4. Quality control (answer aggregation)")
    votes = {
        "img1": [("w1", "Yes"), ("w2", "Yes"), ("w3", "No")],
        "img2": [("w1", "No"), ("w2", "No"), ("w3", "No")],
    }
    print("majority vote :", majority_vote(votes))
    print("Dawid-Skene EM:", dawid_skene(votes))

    # ------------------------------------------------------------ CrowdData
    section("5. CrowdData + CrowdContext (the bridge in the middle)")
    cc = CrowdContext.with_sqlite(os.path.join(workdir, "experiment.db"), seed=3)
    cc.set_ground_truth({"http://img/1.jpg": "Yes", "http://img/2.jpg": "No"}.get)
    data = (
        cc.CrowdData(["http://img/1.jpg", "http://img/2.jpg"], "tour_table")
        .set_presenter(image_presenter)
        .publish_task(n_assignments=3)
        .get_result()
        .mv()
    )
    print("columns:", data.columns)
    print("majority-vote labels:", data.column("mv"))
    print("manipulation log:", data.log.operations())

    # --------------------------------------------------- Crowd operators ----
    section("6. Crowdsourced operators built on CrowdData (join example)")
    er = make_entity_resolution_dataset(num_entities=8, duplicates_per_entity=3, seed=3)
    join = TransitiveCrowdJoin(cc, "tour_join")
    result = join.join(er.records, ground_truth=er.pair_ground_truth)
    print(f"candidate pairs asked: {result.report.crowd_tasks}, "
          f"inferred by transitivity: {result.report.inferred}, "
          f"matches found: {len(result.matches)} (truth: {len(er.matching_pairs)})")
    print("because the join used CrowdData, its lineage is queryable:",
          f"{len(result.crowddata.lineage())} answers recorded")

    cc.close()
    engine.close()
    print(f"\n(artifacts written under {workdir})")


if __name__ == "__main__":
    main()
