# Developer entry points. Tier-1 CI runs `make test`.

PYTEST = PYTHONPATH=src python -m pytest

.PHONY: test test-fast test-ring test-replica test-wire test-workload test-quality bench bench-smoke bench-trend profile docs-check examples-check check

test:
	$(PYTEST) -x -q

# Quick loop: skip Hypothesis property suites and slow-marked tests.
test-fast:
	$(PYTEST) -x -q -m "not property and not slow"

# Everything ring-marked: the consistent-hash engine, its rebalance crash
# sweep and property suites, plus the E13 benchmark at smoke scale.
test-ring:
	$(PYTEST) -x -q -m ring
	$(PYTEST) benchmarks/bench_ring_rebalance.py -q --bench-scale=smoke

# Everything replica-marked: the replicated-placement, failover and chaos
# suites, plus the E15 benchmark at smoke scale.
test-replica:
	$(PYTEST) -x -q -m replica
	$(PYTEST) benchmarks/bench_ring_replication.py -q --bench-scale=smoke

# Everything wire-marked: the cross-process server cluster suite plus the
# E14 benchmark at smoke scale (real sockets, spawned server processes).
test-wire:
	$(PYTEST) -x -q -m wire
	$(PYTEST) benchmarks/bench_wire_cluster.py -q --bench-scale=smoke

# Everything workload-marked: arrival/marketplace generators, the scenario
# harness and its property/chaos/RNG-audit suites, plus the E17 benchmark
# at smoke scale.
test-workload:
	$(PYTEST) -x -q -m workload
	$(PYTEST) benchmarks/bench_workload.py -q --bench-scale=smoke

# Everything quality-marked: incremental aggregation, the streaming
# adaptive loop and its property suites, plus the E18 benchmark at smoke
# scale.
test-quality:
	$(PYTEST) -x -q -m quality
	$(PYTEST) benchmarks/bench_adaptive_quality.py -q --bench-scale=smoke

# Full benchmark harness (writes tables under benchmarks/results/).
bench:
	$(PYTEST) benchmarks -q

# One-iteration benchmark sanity pass at toy scale (seconds, not minutes).
bench-smoke:
	$(PYTEST) benchmarks/bench_bulk_path.py benchmarks/bench_sharded_scan.py benchmarks/bench_platform_store.py benchmarks/bench_pipelined_transport.py benchmarks/bench_ring_rebalance.py benchmarks/bench_ring_replication.py benchmarks/bench_wire_cluster.py benchmarks/bench_hot_path.py benchmarks/bench_workload.py benchmarks/bench_adaptive_quality.py -q --bench-scale=smoke

# Diff the working-tree BENCH_*.json trajectories against the committed
# baselines at HEAD; fail on any >20% regression of a tracked metric.
bench-trend:
	python tools/bench_trend.py

# cProfile the hot-path benchmarks (smoke scale by default; SCALE=full for
# paper scale); prints top-25 by cumulative time, saves .pstats under
# benchmarks/results/.
SCALE ?= smoke
profile:
	PYTHONPATH=src python tools/profile_bench.py --scale $(SCALE) --top 25

# Lint README/docs links + cross-links, check config-field and benchmark
# coverage, and run examples/quickstart.py headlessly.
docs-check:
	PYTHONPATH=src python tools/docs_check.py

# Run every examples/*.py headlessly; each must exit 0.
examples-check:
	PYTHONPATH=src python tools/examples_check.py

# The pre-PR gate: quick tests, docs lint + quickstart, examples, bench
# smoke, and the benchmark trend gate against the committed trajectories.
check: test-fast docs-check examples-check bench-smoke bench-trend
