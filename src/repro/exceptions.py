"""Exception hierarchy for the :mod:`repro` package.

Every error raised by the library derives from :class:`ReprowdError` so that
callers can catch library failures with a single ``except`` clause while
still being able to distinguish the sub-system that failed.
"""

from __future__ import annotations


class ReprowdError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigurationError(ReprowdError):
    """Raised when a CrowdContext or component is misconfigured."""


class StorageError(ReprowdError):
    """Base class for storage-engine failures."""


class TableNotFoundError(StorageError):
    """Raised when an operation references a table that does not exist."""

    def __init__(self, table_name: str):
        super().__init__(f"table not found: {table_name!r}")
        self.table_name = table_name


class DuplicateKeyError(StorageError):
    """Raised when inserting a record whose key already exists."""

    def __init__(self, table_name: str, key: str):
        super().__init__(f"duplicate key {key!r} in table {table_name!r}")
        self.table_name = table_name
        self.key = key


class UnknownCursorError(StorageError):
    """Raised when a ``scan`` cursor is not currently a key of the table.

    A dedicated subclass (with one shared message) so the stale-cursor
    case is distinguishable from every other storage failure rather than a
    generic :class:`StorageError` each engine words its own way.
    """

    def __init__(self, table_name: str, start_after: str):
        super().__init__(
            f"scan cursor {start_after!r} is not a key of table {table_name!r}"
        )
        self.table_name = table_name
        self.start_after = start_after


class CorruptLogError(StorageError):
    """Raised when a log-structured engine finds an unreadable log entry."""


class CodecMismatchError(StorageError):
    """Raised when an engine is opened with a codec other than the one its
    durable state was written with.

    Engines record their codec name in their on-disk meta; reopening with an
    explicitly different ``StorageConfig(codec=...)`` fails loudly instead of
    silently misreading stored bytes.
    """

    def __init__(self, path: str, stored: str, requested: str):
        super().__init__(
            f"storage at {path!r} was written with codec {stored!r}; "
            f"refusing to open with codec {requested!r}"
        )
        self.path = path
        self.stored = stored
        self.requested = requested


class PlatformError(ReprowdError):
    """Base class for crowdsourcing-platform failures."""


class ProjectNotFoundError(PlatformError):
    """Raised when a platform operation references an unknown project."""

    def __init__(self, project_id: object):
        super().__init__(f"project not found: {project_id!r}")
        self.project_id = project_id


class TaskNotFoundError(PlatformError):
    """Raised when a platform operation references an unknown task."""

    def __init__(self, task_id: object):
        super().__init__(f"task not found: {task_id!r}")
        self.task_id = task_id


class PlatformUnavailableError(PlatformError):
    """Raised by the fault-injection transport to simulate outages."""


class WorkerError(ReprowdError):
    """Base class for simulated-worker failures."""


class NoEligibleWorkerError(WorkerError):
    """Raised when no worker in the pool may answer a task."""


class PresenterError(ReprowdError):
    """Base class for presenter failures."""


class InvalidAnswerError(PresenterError):
    """Raised when a crowd answer does not match the presenter's schema."""


class QualityControlError(ReprowdError):
    """Base class for answer-aggregation failures."""


class InsufficientAnswersError(QualityControlError):
    """Raised when an aggregation rule has no answers to aggregate."""


class OperatorError(ReprowdError):
    """Base class for crowdsourced-operator failures."""


class LineageError(ReprowdError):
    """Raised when lineage information is requested but unavailable."""


class CrowdDataError(ReprowdError):
    """Raised for invalid CrowdData manipulations."""


class CrashInjected(ReprowdError):
    """Raised by the crash-injection harness to simulate a process crash.

    The fault-recovery benchmarks catch this exception at the experiment
    boundary to emulate the process dying and being re-run.
    """

    def __init__(self, step: str, detail: str = ""):
        message = f"injected crash at step {step!r}"
        if detail:
            message = f"{message}: {detail}"
        super().__init__(message)
        self.step = step
        self.detail = detail
