"""Zipf-skewed object keys — hot-spot traffic for the placement layer.

Real workloads re-request a small set of popular objects; a ring that
partitions keys uniformly sees very non-uniform load.  The generator draws
keys from a Zipf(s) distribution over a fixed universe ``k00000..``:
``P(rank r) ∝ 1 / r^s``.  ``skew=0`` degenerates to the uniform
distribution; larger *skew* concentrates mass on the lowest ranks.  Sampling
is inverse-CDF (one ``bisect`` per draw against a precomputed table), so a
draw costs O(log n) and consumes exactly one ``rng.random()`` — which keeps
replays byte-identical regardless of the skew.
"""

from __future__ import annotations

import bisect
import random

from repro.exceptions import ConfigurationError
from repro.utils.validation import require_positive


class ZipfKeyGenerator:
    """Seeded Zipf(s) sampler over the key universe ``k00000..k{n-1:05d}``."""

    def __init__(self, num_keys: int, skew: float = 0.0):
        self.num_keys = int(require_positive("num_keys", num_keys))
        if skew < 0:
            raise ConfigurationError(f"zipf skew must be >= 0, got {skew}")
        self.skew = float(skew)
        weights = [1.0 / (rank**self.skew) for rank in range(1, self.num_keys + 1)]
        total = sum(weights)
        self._cdf: list[float] = []
        cumulative = 0.0
        for weight in weights:
            cumulative += weight / total
            self._cdf.append(cumulative)
        self._cdf[-1] = 1.0  # guard against float round-off at the tail

    def key(self, rank: int) -> str:
        """The key string for 0-based popularity *rank*."""
        if not 0 <= rank < self.num_keys:
            raise ConfigurationError(
                f"rank {rank} out of range for {self.num_keys} keys"
            )
        return f"k{rank:05d}"

    def probabilities(self) -> list[float]:
        """Exact per-rank probabilities (most popular first)."""
        previous = 0.0
        out = []
        for value in self._cdf:
            out.append(value - previous)
            previous = value
        return out

    def sample(self, rng: random.Random) -> str:
        """Draw one key (one ``rng.random()`` consumed per draw)."""
        rank = bisect.bisect_left(self._cdf, rng.random())
        return self.key(min(rank, self.num_keys - 1))

    def sample_many(self, count: int, rng: random.Random) -> list[str]:
        """Draw *count* keys in order."""
        return [self.sample(rng) for _ in range(count)]

    def __repr__(self) -> str:
        return f"ZipfKeyGenerator(num_keys={self.num_keys}, skew={self.skew})"
