"""The marketplace model: heterogeneous tasks over an unreliable crowd.

Layers three production behaviours over the existing ``workers/`` stack:

* **Task types** — every object key is deterministically assigned a
  :class:`TaskType` (weighted by a stable hash of the key, so the same key
  is always the same type on every backend and every rerun).  A type
  carries its own candidate answers, payout, SLA and duration
  distribution; the per-type duration reaches the workers through
  :class:`~repro.workers.latency.PerTypeLatency`.
* **Worker heterogeneity** — acceptance (a worker may decline an offer,
  forcing a redraw), speed (a per-worker multiplier on task durations;
  stragglers are workers slowed by ``straggler_slowdown``), and the usual
  behaviour mix (noisy accuracy jitter, baseline spammers).
* **Spammer waves** — a deterministic window of the run during which a
  chosen fraction of the pool answers uniformly at random
  (:meth:`MarketplaceWorkerPool.set_wave_active` swaps behaviours in and
  out; the :class:`~repro.workload.scenario.ScenarioRunner` toggles it per
  publish batch).

Everything draws from seeded ``random.Random`` instances, so the whole
marketplace is a pure function of its parameters and seed.
"""

from __future__ import annotations

import random
import zlib
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Mapping, Sequence

from repro.exceptions import ConfigurationError
from repro.presenters.base import BasePresenter, registry
from repro.utils.validation import require_positive
from repro.workers.behavior import NoisyWorker, SpammerWorker, WorkerBehavior
from repro.workers.latency import LogNormalLatency, PerTypeLatency
from repro.workers.pool import SimulatedWorker, WorkerPool


@dataclass(frozen=True)
class TaskType:
    """One heterogeneous task kind in the marketplace.

    Attributes:
        name: Stable identifier stamped into each task's ``info`` (drives
            skill profiles and per-type latency dispatch).
        candidates: The answers a worker may give for this type.
        weight: Relative share of the key universe assigned to this type.
        payout: Marketplace price per assignment of this type (reported in
            the cost section; the hard budget cap uses the scenario-wide
            price).
        sla_seconds: Latency target: a task attains its SLA when its
            simulated completion latency is at or under this.
        mean_latency_seconds: Median of the type's log-normal duration.
        latency_sigma: Log-space spread of the type's duration.
    """

    name: str
    candidates: tuple[Any, ...] = ("Yes", "No")
    weight: float = 1.0
    payout: float = 0.01
    sla_seconds: float = 600.0
    mean_latency_seconds: float = 30.0
    latency_sigma: float = 0.5

    def validate(self) -> None:
        if not self.name:
            raise ConfigurationError("TaskType.name must be non-empty")
        if len(self.candidates) < 2:
            raise ConfigurationError(
                f"TaskType {self.name!r} needs >= 2 candidates, got {self.candidates!r}"
            )
        require_positive(f"TaskType[{self.name}].weight", self.weight)
        require_positive(f"TaskType[{self.name}].payout", self.payout)
        require_positive(f"TaskType[{self.name}].sla_seconds", self.sla_seconds)
        require_positive(
            f"TaskType[{self.name}].mean_latency_seconds", self.mean_latency_seconds
        )
        require_positive(f"TaskType[{self.name}].latency_sigma", self.latency_sigma)

    def to_mapping(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "candidates": list(self.candidates),
            "weight": self.weight,
            "payout": self.payout,
            "sla_seconds": self.sla_seconds,
            "mean_latency_seconds": self.mean_latency_seconds,
            "latency_sigma": self.latency_sigma,
        }

    @classmethod
    def from_mapping(cls, mapping: Mapping[str, Any]) -> "TaskType":
        data = dict(mapping)
        if "candidates" in data:
            data["candidates"] = tuple(data["candidates"])
        return cls(**data)


#: The default three-type marketplace: cheap fast labels, mid-priced pair
#: comparisons, expensive slow transcriptions.  SLAs leave headroom over the
#: p99 of a max-over-redundancy draw from each duration distribution.
DEFAULT_TASK_TYPES: tuple[TaskType, ...] = (
    TaskType(
        name="label",
        candidates=("Yes", "No"),
        weight=3.0,
        payout=0.01,
        sla_seconds=360.0,
        mean_latency_seconds=20.0,
        latency_sigma=0.4,
    ),
    TaskType(
        name="compare",
        candidates=("A", "B"),
        weight=2.0,
        payout=0.02,
        sla_seconds=600.0,
        mean_latency_seconds=45.0,
        latency_sigma=0.5,
    ),
    TaskType(
        name="transcribe",
        candidates=("alpha", "beta", "gamma", "delta"),
        weight=1.0,
        payout=0.05,
        sla_seconds=1200.0,
        mean_latency_seconds=90.0,
        latency_sigma=0.6,
    ),
)


@dataclass(frozen=True)
class SpammerWave:
    """A spammer infestation over a window of the run.

    Attributes:
        start_fraction: Run fraction (by arrival count, in [0, 1)) at which
            the wave starts.
        end_fraction: Run fraction at which it ends (exclusive; > start).
        pool_fraction: Fraction of the pool that turns spammer while active.
    """

    start_fraction: float = 0.3
    end_fraction: float = 0.6
    pool_fraction: float = 0.3

    def validate(self) -> None:
        if not 0.0 <= self.start_fraction < self.end_fraction <= 1.0:
            raise ConfigurationError(
                "spammer wave needs 0 <= start_fraction < end_fraction <= 1, got "
                f"[{self.start_fraction}, {self.end_fraction})"
            )
        if not 0.0 < self.pool_fraction <= 1.0:
            raise ConfigurationError(
                f"spammer wave pool_fraction must be in (0, 1], got {self.pool_fraction}"
            )

    def active_at(self, fraction: float) -> bool:
        """True when run-progress *fraction* falls inside the wave window."""
        return self.start_fraction <= fraction < self.end_fraction

    def to_mapping(self) -> dict[str, Any]:
        return {
            "start_fraction": self.start_fraction,
            "end_fraction": self.end_fraction,
            "pool_fraction": self.pool_fraction,
        }

    @classmethod
    def from_mapping(cls, mapping: Mapping[str, Any]) -> "SpammerWave":
        return cls(**dict(mapping))


# -- deterministic key -> type / truth assignment ------------------------------


def _stable_fraction(tag: str, key: str) -> float:
    """A uniform-ish fraction in [0, 1) derived from a stable hash of *key*."""
    return (zlib.crc32(f"{tag}:{key}".encode("utf-8")) % 1_000_000) / 1_000_000.0


def assign_task_type(key: str, types: Sequence[TaskType]) -> TaskType:
    """Deterministically pick the :class:`TaskType` owning object *key*.

    Weighted by ``TaskType.weight`` over a stable hash of the key, so the
    assignment is identical across reruns, backends and processes.
    """
    if not types:
        raise ConfigurationError("assign_task_type needs at least one TaskType")
    total = sum(t.weight for t in types)
    point = _stable_fraction("type", key) * total
    cumulative = 0.0
    for task_type in types:
        cumulative += task_type.weight
        if point < cumulative:
            return task_type
    return types[-1]


def marketplace_ground_truth(
    types: Sequence[TaskType],
) -> Callable[[Any], Any]:
    """Oracle mapping a marketplace object to its hidden true answer.

    The truth is a stable hash of the object key into the type's candidate
    list — no RNG, so it never perturbs the seeded simulation streams.
    """
    by_name = {t.name: t for t in types}

    def truth(obj: Any) -> Any:
        key = obj["key"] if isinstance(obj, Mapping) else str(obj)
        name = obj.get("type") if isinstance(obj, Mapping) else None
        task_type = by_name.get(name) or assign_task_type(key, list(types))
        rank = zlib.crc32(f"truth:{key}".encode("utf-8"))
        return task_type.candidates[rank % len(task_type.candidates)]

    return truth


def make_objects(keys: Iterable[str], types: Sequence[TaskType]) -> list[dict[str, Any]]:
    """Build one marketplace object per key: ``{"key": ..., "type": ...}``."""
    return [
        {"key": key, "type": assign_task_type(key, types).name} for key in keys
    ]


# -- presenter -----------------------------------------------------------------


@registry.register
class MarketplacePresenter(BasePresenter):
    """Presenter whose tasks carry their *object's* type, not the class's.

    One CrowdData table has one presenter, but a marketplace batch mixes
    task types.  The platform reads ``candidates`` and ``task_type`` from
    each task's ``info`` (not from the project), so overriding
    :meth:`build_task_info` per object is all heterogeneity needs.  The
    presenter-level candidate list is the union over types, which keeps
    ``validate_answer`` permissive across the whole batch.
    """

    task_type = "marketplace"

    def __init__(
        self,
        question: str = "",
        candidates: list[Any] | None = None,
        task_types: Sequence[TaskType] | None = None,
    ):
        types = tuple(task_types) if task_types else ()
        self._types: dict[str, TaskType] = {t.name: t for t in types}
        if candidates is None and types:
            union: list[Any] = []
            for task_type in types:
                for candidate in task_type.candidates:
                    if candidate not in union:
                        union.append(candidate)
            candidates = union
        super().__init__(
            question=question or "Complete this marketplace task",
            candidates=candidates,
        )

    def render_object(self, obj: Any) -> str:
        key = obj["key"] if isinstance(obj, Mapping) else obj
        return f'<span class="object">{key}</span>'

    def build_task_info(self, obj: Any, true_answer: Any = None) -> dict[str, Any]:
        info = super().build_task_info(obj, true_answer=true_answer)
        if isinstance(obj, Mapping):
            spec = self._types.get(obj.get("type"))
            if spec is not None:
                info["task_type"] = spec.name
                info["candidates"] = list(spec.candidates)
        return info


# -- worker pool ---------------------------------------------------------------


class MarketplaceWorkerPool(WorkerPool):
    """A :class:`WorkerPool` whose workers may decline offers and turn spammer.

    Every draw is an *offer*: the sampled worker accepts with their
    per-worker acceptance probability, otherwise the offer is declined and
    the platform redraws (the decline is counted and the rng advances, so
    declines are part of the deterministic stream).  When every eligible
    worker has declined a task it is re-offered from scratch — someone has
    to do the work, exactly like a real queue that sits until picked up.
    """

    def __init__(
        self,
        workers: Iterable[SimulatedWorker],
        seed: int = 7,
        acceptance: Mapping[str, float] | None = None,
        wave_worker_ids: Sequence[str] = (),
    ):
        super().__init__(workers, seed=seed)
        self._acceptance = dict(acceptance or {})
        self._wave_ids = list(wave_worker_ids)
        self._saved_behaviors: dict[str, WorkerBehavior] = {}
        self._wave_active = False
        self.offers = 0
        self.declines = 0
        self.wave_toggles = 0

    # -- acceptance ------------------------------------------------------------

    def _accepts(self, worker: SimulatedWorker) -> bool:
        self.offers += 1
        probability = self._acceptance.get(worker.worker_id, 1.0)
        if probability >= 1.0 or self._rng.random() < probability:
            return True
        self.declines += 1
        return False

    def draw(self, exclude: Iterable[str] = ()) -> SimulatedWorker:
        excluded = frozenset(exclude)
        eligible = sum(
            1 for worker in self._workers if worker.worker_id not in excluded
        )
        if eligible == 0:
            return super().draw(excluded)  # raises NoEligibleWorkerError
        declined: set[str] = set()
        while True:
            worker = super().draw(excluded | declined)
            if self._accepts(worker):
                return worker
            declined.add(worker.worker_id)
            if len(declined) >= eligible:
                declined.clear()

    def draw_distinct(self, count: int) -> list[SimulatedWorker]:
        if count > len(self._workers):
            return super().draw_distinct(count)  # raises NoEligibleWorkerError
        chosen: list[SimulatedWorker] = []
        declined: set[str] = set()
        while len(chosen) < count:
            taken = {worker.worker_id for worker in chosen}
            if len(taken) + len(declined) >= len(self._workers):
                declined.clear()
            worker = super().draw(taken | declined)
            if self._accepts(worker):
                chosen.append(worker)
            else:
                declined.add(worker.worker_id)
        return chosen

    # -- spammer waves ---------------------------------------------------------

    @property
    def wave_active(self) -> bool:
        return self._wave_active

    @property
    def wave_worker_ids(self) -> list[str]:
        return list(self._wave_ids)

    def set_wave_active(self, active: bool) -> None:
        """Swap the wave workers' behaviour to spammer (and back)."""
        if active == self._wave_active:
            return
        self._wave_active = active
        self.wave_toggles += 1
        if active:
            for worker_id in self._wave_ids:
                worker = self.worker(worker_id)
                self._saved_behaviors[worker_id] = worker.behavior
                worker.behavior = SpammerWorker()
        else:
            for worker_id, behavior in self._saved_behaviors.items():
                self.worker(worker_id).behavior = behavior
            self._saved_behaviors.clear()

    def statistics(self) -> dict[str, Any]:
        stats = super().statistics()
        stats.update(
            {
                "offers": self.offers,
                "declines": self.declines,
                "wave_toggles": self.wave_toggles,
                "wave_pool": len(self._wave_ids),
            }
        )
        return stats


def build_marketplace_pool(
    size: int,
    types: Sequence[TaskType] = DEFAULT_TASK_TYPES,
    seed: int = 7,
    *,
    mean_accuracy: float = 0.85,
    accuracy_spread: float = 0.10,
    spammer_fraction: float = 0.0,
    acceptance_mean: float = 0.9,
    acceptance_spread: float = 0.1,
    speed_spread: float = 0.5,
    straggler_fraction: float = 0.0,
    straggler_slowdown: float = 10.0,
    wave: SpammerWave | None = None,
) -> MarketplaceWorkerPool:
    """Generate a heterogeneous pool — the marketplace's supply side.

    Deterministic in (parameters, seed): worker identities, behaviours,
    acceptance rates, speeds, straggler picks and wave membership all come
    from one ``random.Random(seed)``.
    """
    require_positive("size", size)
    for task_type in types:
        task_type.validate()
    if wave is not None:
        wave.validate()
    if not 0.0 <= straggler_fraction <= 1.0:
        raise ConfigurationError(
            f"straggler_fraction must be in [0, 1], got {straggler_fraction}"
        )
    require_positive("straggler_slowdown", straggler_slowdown)
    if speed_spread < 0 or speed_spread >= 1.0:
        raise ConfigurationError(
            f"speed_spread must be in [0, 1), got {speed_spread}"
        )

    rng = random.Random(seed)
    duration_models = {
        t.name: LogNormalLatency(
            median=t.mean_latency_seconds, sigma=t.latency_sigma
        )
        for t in types
    }
    num_spammers = int(round(spammer_fraction * size))
    workers: list[SimulatedWorker] = []
    acceptance: dict[str, float] = {}
    for index in range(size):
        worker_id = f"w{index:04d}"
        if index < num_spammers:
            behavior: WorkerBehavior = SpammerWorker()
        else:
            jitter = rng.uniform(-accuracy_spread, accuracy_spread)
            behavior = NoisyWorker(accuracy=min(1.0, max(0.0, mean_accuracy + jitter)))
        speed = max(0.1, 1.0 + rng.uniform(-speed_spread, speed_spread))
        # Clamp acceptance away from zero: a worker who never accepts would
        # stall the re-offer loop forever, which no real queue does either.
        offer_jitter = rng.uniform(-acceptance_spread, acceptance_spread)
        acceptance[worker_id] = min(1.0, max(0.05, acceptance_mean + offer_jitter))
        workers.append(
            SimulatedWorker(
                worker_id=worker_id,
                behavior=behavior,
                latency=PerTypeLatency(duration_models, speed=speed),
            )
        )

    num_stragglers = int(round(straggler_fraction * size))
    for index in sorted(rng.sample(range(size), num_stragglers)):
        current = workers[index].latency
        workers[index].latency = PerTypeLatency(
            duration_models, speed=max(0.01, current.speed / straggler_slowdown)
        )

    wave_ids: list[str] = []
    if wave is not None:
        wave_size = max(1, int(round(wave.pool_fraction * size)))
        wave_ids = [
            workers[index].worker_id
            for index in sorted(rng.sample(range(size), wave_size))
        ]
    return MarketplaceWorkerPool(
        workers, seed=seed, acceptance=acceptance, wave_worker_ids=wave_ids
    )
