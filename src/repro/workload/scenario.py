"""ScenarioSpec + ScenarioRunner: production-shaped end-to-end runs.

A :class:`ScenarioSpec` is a frozen, JSON-round-trippable description of a
whole experiment: the arrival process, the key skew, the task-type mix, the
supply side (pool size, acceptance, stragglers, spammer waves) and the
stack under test (storage engine × transport × durable platform × group
commit).  :class:`ScenarioRunner` drives the spec through the ordinary
CrowdData verbs — extend → publish → collect per arrival batch, then one
quality-control pass — and emits a :class:`ScenarioResult` carrying:

* a structured metrics report (throughput, p50/p95/p99 latency and
  SLA-attainment per task type, budget spent, accuracy vs ground truth);
* a per-batch event log;
* the canonical collected answers.

**Determinism contract.**  Everything except the ``timing`` section of the
report is a pure function of the spec: the same spec replays
byte-identically (``canonical_report`` / ``canonical_collected`` /
``canonical_events`` are stable strings) on every backend, which is what
makes the runner usable as a regression harness — a scenario on the ring
must produce the exact bytes the sqlite reference produced.  Wall-clock
throughput lives only in ``report["timing"]`` and is excluded from the
canonical forms.

A task's *completion latency* is the slowest of its assignments' simulated
latencies (workers answer in parallel); its SLA is attained when that
latency is at or under its type's ``sla_seconds``.
"""

from __future__ import annotations

import json
import math
import os
import random
import time
import zlib
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Mapping

from repro.config import PlatformConfig, ReprowdConfig, StorageConfig, WorkerPoolConfig
from repro.core.budget import BudgetTracker
from repro.core.context import CrowdContext
from repro.exceptions import ConfigurationError
from repro.quality.adaptive import AdaptiveCollectionStats, AdaptivePolicy
from repro.utils.validation import require_positive
from repro.workload.arrivals import Arrival, build_arrival_process
from repro.workload.keys import ZipfKeyGenerator
from repro.workload.marketplace import (
    DEFAULT_TASK_TYPES,
    MarketplacePresenter,
    SpammerWave,
    TaskType,
    build_marketplace_pool,
    make_objects,
    marketplace_ground_truth,
)
from repro.workload.metrics import latency_summary, sla_attainment

ARRIVAL_KINDS = ("poisson", "bursty", "diurnal")
STORAGE_KINDS = ("memory", "sqlite", "sharded", "ring")
TRANSPORT_KINDS = ("direct", "pipelined", "wire")


def canonical_json(payload: Any) -> str:
    """Stable byte-for-byte JSON encoding (sorted keys, no whitespace)."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def _derive_seed(seed: int, stream: str) -> int:
    """A per-stream child seed so generators never share an RNG."""
    return (seed * 2654435761 + zlib.crc32(stream.encode("utf-8"))) % 2**32


@dataclass(frozen=True)
class ScenarioSpec:
    """One production-shaped scenario, fully described and fully seeded.

    Attributes:
        name: Scenario (and CrowdData table / platform project) name.
        seed: Master seed; every RNG stream in the run derives from it.
        arrival: Arrival process — ``"poisson"``, ``"bursty"`` or
            ``"diurnal"``.
        rate: Base arrival rate in tasks per virtual second.
        num_tasks: Total arrivals to generate (repeat keys included).
        batch_size: Arrivals per publish→collect batch.
        burst_multiplier: Bursty only — rate multiplier inside a burst.
        burst_every_seconds: Bursty only — period between burst starts.
        burst_duration_seconds: Bursty only — burst window length.
        diurnal_amplitude: Diurnal only — relative rate swing in [0, 1).
        diurnal_period_seconds: Diurnal only — day/night cycle length.
        num_keys: Size of the object-key universe (0 means ``num_tasks``).
        zipf_skew: Zipf exponent over the key universe; 0 is uniform and
            larger values concentrate arrivals on hot keys.
        task_types: Marketplace task-type mix; empty means the default
            label/compare/transcribe trio.
        redundancy: Assignments requested per task.
        pool_size: Number of simulated workers.
        mean_accuracy: Mean worker accuracy.
        accuracy_spread: Half-width of per-worker accuracy jitter.
        spammer_fraction: Baseline fraction of the pool answering randomly.
        acceptance_mean: Mean per-worker offer-acceptance probability.
        acceptance_spread: Half-width of acceptance jitter.
        speed_spread: Half-width of the per-worker speed multiplier jitter.
        straggler_fraction: Fraction of workers slowed by
            ``straggler_slowdown``.
        straggler_slowdown: Speed divisor applied to stragglers.
        spammer_wave: Optional mid-run spammer infestation window.
        storage: Cache engine under test — ``"memory"``, ``"sqlite"``,
            ``"sharded"`` or ``"ring"``.
        storage_shards: Member count for sharded/ring storage.
        replicas: Ring only — copies kept of every key.
        transport: Platform transport — ``"direct"``, ``"pipelined"`` or
            ``"wire"``.
        durable_platform: Back the platform's task store with a storage
            engine instead of in-process dicts.
        group_commit: Durable platform only — one durability barrier per
            write wave.
        price_per_assignment: Price charged to the budget per assignment.
        budget: Optional hard budget cap (None is uncapped).
        quality_method: Aggregator applied at the end (``"mv"``, ``"em"``,
            ...).
        adaptive: Collect with per-object adaptive redundancy instead of a
            fixed count — tasks start at 2 assignments, only ambiguous
            items buy more, capped at ``redundancy`` (see
            ``docs/quality.md``).
        adaptive_threshold: Adaptive only — stop purchasing answers for an
            item once its plurality confidence reaches this fraction.
    """

    name: str = "scenario"
    seed: int = 7
    # -- demand side: what arrives, when, and under which key ----------------
    arrival: str = "poisson"
    rate: float = 5.0
    num_tasks: int = 200
    batch_size: int = 50
    burst_multiplier: float = 8.0
    burst_every_seconds: float = 60.0
    burst_duration_seconds: float = 5.0
    diurnal_amplitude: float = 0.8
    diurnal_period_seconds: float = 600.0
    num_keys: int = 0
    zipf_skew: float = 0.0
    task_types: tuple[TaskType, ...] = ()
    # -- supply side: the crowd ----------------------------------------------
    redundancy: int = 3
    pool_size: int = 25
    mean_accuracy: float = 0.85
    accuracy_spread: float = 0.10
    spammer_fraction: float = 0.0
    acceptance_mean: float = 0.9
    acceptance_spread: float = 0.1
    speed_spread: float = 0.5
    straggler_fraction: float = 0.0
    straggler_slowdown: float = 10.0
    spammer_wave: SpammerWave | None = None
    # -- stack under test ----------------------------------------------------
    storage: str = "memory"
    storage_shards: int = 3
    replicas: int = 1
    transport: str = "direct"
    durable_platform: bool = False
    group_commit: bool = False
    # -- economics + aggregation ---------------------------------------------
    price_per_assignment: float = 0.01
    budget: float | None = None
    quality_method: str = "mv"
    adaptive: bool = False
    adaptive_threshold: float = 0.75

    # -- derived -------------------------------------------------------------

    @property
    def resolved_task_types(self) -> tuple[TaskType, ...]:
        return self.task_types or DEFAULT_TASK_TYPES

    @property
    def resolved_num_keys(self) -> int:
        return self.num_keys or self.num_tasks

    @property
    def total_batches(self) -> int:
        return max(1, math.ceil(self.num_tasks / self.batch_size))

    # -- validation ----------------------------------------------------------

    def validate(self) -> None:
        """Raise :class:`ConfigurationError` on any inconsistent field."""
        if not self.name:
            raise ConfigurationError("ScenarioSpec.name must be non-empty")
        if self.arrival not in ARRIVAL_KINDS:
            raise ConfigurationError(
                f"unknown arrival {self.arrival!r}; expected one of {ARRIVAL_KINDS}"
            )
        if self.storage not in STORAGE_KINDS:
            raise ConfigurationError(
                f"unknown storage {self.storage!r}; expected one of {STORAGE_KINDS}"
            )
        if self.transport not in TRANSPORT_KINDS:
            raise ConfigurationError(
                f"unknown transport {self.transport!r}; expected one of {TRANSPORT_KINDS}"
            )
        require_positive("rate", self.rate)
        require_positive("num_tasks", self.num_tasks)
        require_positive("batch_size", self.batch_size)
        require_positive("redundancy", self.redundancy)
        require_positive("price_per_assignment", self.price_per_assignment)
        if not 0.0 < self.adaptive_threshold <= 1.0:
            raise ConfigurationError(
                "adaptive_threshold must be in (0, 1], got "
                f"{self.adaptive_threshold}"
            )
        if self.budget is not None:
            require_positive("budget", self.budget)
        if self.pool_size < self.redundancy:
            raise ConfigurationError(
                f"pool_size ({self.pool_size}) must be >= redundancy "
                f"({self.redundancy}) to draw distinct workers"
            )
        if self.zipf_skew < 0:
            raise ConfigurationError(
                f"zipf_skew must be >= 0, got {self.zipf_skew}"
            )
        if self.num_keys < 0:
            raise ConfigurationError(f"num_keys must be >= 0, got {self.num_keys}")
        for task_type in self.resolved_task_types:
            task_type.validate()
        names = [t.name for t in self.resolved_task_types]
        if len(set(names)) != len(names):
            raise ConfigurationError(f"duplicate task type names: {names}")
        if self.spammer_wave is not None:
            self.spammer_wave.validate()
        if self.replicas < 1:
            raise ConfigurationError(f"replicas must be >= 1, got {self.replicas}")
        if self.replicas > 1 and self.storage != "ring":
            raise ConfigurationError(
                "replicas > 1 requires storage='ring' "
                f"(got storage={self.storage!r})"
            )
        if self.storage in ("sharded", "ring"):
            require_positive("storage_shards", self.storage_shards)
            if self.replicas > self.storage_shards:
                raise ConfigurationError(
                    f"replicas ({self.replicas}) cannot exceed storage_shards "
                    f"({self.storage_shards})"
                )
        if self.group_commit and not self.durable_platform:
            raise ConfigurationError(
                "group_commit requires durable_platform=True"
            )
        if self.transport == "wire":
            # A wire server runs in its own process with a uniform pool built
            # from (pool_size, mean_accuracy); the in-process marketplace
            # pool never sees its draws, so supply-side heterogeneity would
            # silently not apply.  Refuse rather than lie.
            unsupported = {
                "spammer_wave": self.spammer_wave is not None,
                "straggler_fraction": self.straggler_fraction > 0,
                "spammer_fraction": self.spammer_fraction > 0,
                "acceptance_mean": self.acceptance_mean != 1.0,
                "acceptance_spread": self.acceptance_spread != 0.0,
                "speed_spread": self.speed_spread != 0.0,
                "accuracy_spread": self.accuracy_spread != 0.0,
                "group_commit": self.group_commit,
            }
            offending = sorted(k for k, bad in unsupported.items() if bad)
            if offending:
                raise ConfigurationError(
                    "transport='wire' simulates a uniform remote pool; "
                    f"unsupported spec fields for wire: {offending} "
                    "(reset them to their neutral values)"
                )

    # -- (de)serialisation ----------------------------------------------------

    def to_mapping(self) -> dict[str, Any]:
        """JSON-friendly mapping; ``from_mapping`` round-trips it exactly."""
        payload: dict[str, Any] = {
            "name": self.name,
            "seed": self.seed,
            "arrival": self.arrival,
            "rate": self.rate,
            "num_tasks": self.num_tasks,
            "batch_size": self.batch_size,
            "burst_multiplier": self.burst_multiplier,
            "burst_every_seconds": self.burst_every_seconds,
            "burst_duration_seconds": self.burst_duration_seconds,
            "diurnal_amplitude": self.diurnal_amplitude,
            "diurnal_period_seconds": self.diurnal_period_seconds,
            "num_keys": self.num_keys,
            "zipf_skew": self.zipf_skew,
            "task_types": [t.to_mapping() for t in self.task_types],
            "redundancy": self.redundancy,
            "pool_size": self.pool_size,
            "mean_accuracy": self.mean_accuracy,
            "accuracy_spread": self.accuracy_spread,
            "spammer_fraction": self.spammer_fraction,
            "acceptance_mean": self.acceptance_mean,
            "acceptance_spread": self.acceptance_spread,
            "speed_spread": self.speed_spread,
            "straggler_fraction": self.straggler_fraction,
            "straggler_slowdown": self.straggler_slowdown,
            "spammer_wave": (
                self.spammer_wave.to_mapping() if self.spammer_wave else None
            ),
            "storage": self.storage,
            "storage_shards": self.storage_shards,
            "replicas": self.replicas,
            "transport": self.transport,
            "durable_platform": self.durable_platform,
            "group_commit": self.group_commit,
            "price_per_assignment": self.price_per_assignment,
            "budget": self.budget,
            "quality_method": self.quality_method,
            "adaptive": self.adaptive,
            "adaptive_threshold": self.adaptive_threshold,
        }
        return payload

    @classmethod
    def from_mapping(cls, mapping: Mapping[str, Any]) -> "ScenarioSpec":
        """Build a spec from parsed JSON (inverse of :meth:`to_mapping`)."""
        data = dict(mapping)
        if data.get("task_types"):
            data["task_types"] = tuple(
                TaskType.from_mapping(entry) for entry in data["task_types"]
            )
        else:
            data["task_types"] = ()
        if isinstance(data.get("spammer_wave"), Mapping):
            data["spammer_wave"] = SpammerWave.from_mapping(data["spammer_wave"])
        return cls(**data)

    def with_backend(
        self,
        storage: str,
        *,
        replicas: int | None = None,
        transport: str | None = None,
    ) -> "ScenarioSpec":
        """The same workload on a different stack (the A/B helper).

        When *replicas* is not given it carries over only onto a ring
        target — any other engine is single-copy, so re-targeting a ring
        R=2 spec at sqlite must not drag the replication factor along.
        """
        if replicas is None:
            replicas = self.replicas if storage == "ring" else 1
        return replace(
            self,
            storage=storage,
            replicas=replicas,
            transport=self.transport if transport is None else transport,
        )


@dataclass
class ScenarioResult:
    """Everything one scenario run produced.

    Attributes:
        spec: The spec that ran.
        report: Structured metrics report (``report["timing"]`` is the one
            non-deterministic section).
        event_log: One entry per publish batch, in order.
        collected: Canonical per-unique-key collected answers, sorted by key.
        run_dir: Directory holding this run's durable artifacts ("" for a
            purely in-memory run).
    """

    spec: ScenarioSpec
    report: dict[str, Any]
    event_log: list[dict[str, Any]] = field(default_factory=list)
    collected: list[dict[str, Any]] = field(default_factory=list)
    run_dir: str = ""

    @property
    def canonical_report(self) -> str:
        """Byte-stable report encoding, timing excluded."""
        deterministic = {k: v for k, v in self.report.items() if k != "timing"}
        return canonical_json(deterministic)

    @property
    def canonical_collected(self) -> str:
        """Byte-stable encoding of every collected answer."""
        return canonical_json(self.collected)

    @property
    def canonical_events(self) -> str:
        """Byte-stable encoding of the per-batch event log."""
        return canonical_json(self.event_log)


class ScenarioRunner:
    """Drives :class:`ScenarioSpec` runs end to end under *base_dir*.

    Every run gets a fresh directory (``<name>-runNNN``) so a replay of the
    same spec re-purchases its crowd work instead of silently resuming from
    the previous run's fault-recovery cache — replay determinism is the
    property under test, warm-cache resumption is a different one.
    """

    def __init__(self, base_dir: str):
        self.base_dir = str(base_dir)
        self._run_counter = 0

    def _fresh_run_dir(self, spec: ScenarioSpec) -> str:
        while True:
            run_dir = os.path.join(
                self.base_dir, f"{spec.name}-run{self._run_counter:03d}"
            )
            self._run_counter += 1
            if not os.path.exists(run_dir):
                os.makedirs(run_dir)
                return run_dir

    def _build_config(self, spec: ScenarioSpec, run_dir: str) -> ReprowdConfig:
        if spec.storage == "memory":
            storage = StorageConfig(engine="memory", path=":memory:")
        elif spec.storage == "sqlite":
            storage = StorageConfig(
                engine="sqlite", path=os.path.join(run_dir, "cache.db")
            )
        elif spec.storage == "sharded":
            storage = StorageConfig(
                engine="sharded",
                path=os.path.join(run_dir, "cache-shards"),
                shards=spec.storage_shards,
            )
        else:  # ring
            storage = StorageConfig(
                engine="ring",
                path=os.path.join(run_dir, "cache-ring"),
                shards=spec.storage_shards,
                replicas=spec.replicas,
            )
        store_engine = None
        if spec.transport == "wire" and spec.durable_platform:
            store_engine = StorageConfig(
                engine="sqlite", path=os.path.join(run_dir, "platform.db")
            )
        platform = PlatformConfig(
            seed=spec.seed,
            default_redundancy=spec.redundancy,
            transport=spec.transport,
            store="durable" if spec.durable_platform else "memory",
            store_engine=store_engine,
            group_commit=spec.group_commit,
        )
        workers = WorkerPoolConfig(
            size=spec.pool_size,
            mean_accuracy=spec.mean_accuracy,
            accuracy_spread=0.0,
            seed=spec.seed,
        )
        return ReprowdConfig(
            storage=storage, platform=platform, workers=workers, seed=spec.seed
        )

    def run(
        self,
        spec: ScenarioSpec,
        on_batch: Callable[[CrowdContext, int], None] | None = None,
    ) -> ScenarioResult:
        """Run *spec* end to end and return its :class:`ScenarioResult`.

        Args:
            spec: The scenario to run (validated first).
            on_batch: Optional chaos hook called after each batch's
                publish+collect with ``(context, batch_index)`` — e.g. kill
                a ring member or trigger a rebalance mid-run.
        """
        spec.validate()
        run_dir = self._fresh_run_dir(spec)
        types = list(spec.resolved_task_types)
        arrivals = build_arrival_process(
            spec.arrival,
            spec.rate,
            burst_multiplier=spec.burst_multiplier,
            burst_every_seconds=spec.burst_every_seconds,
            burst_duration_seconds=spec.burst_duration_seconds,
            diurnal_amplitude=spec.diurnal_amplitude,
            diurnal_period_seconds=spec.diurnal_period_seconds,
        ).generate(spec.num_tasks, random.Random(_derive_seed(spec.seed, "arrivals")))
        key_rng = random.Random(_derive_seed(spec.seed, "keys"))
        keygen = ZipfKeyGenerator(spec.resolved_num_keys, spec.zipf_skew)
        pool = build_marketplace_pool(
            spec.pool_size,
            types,
            seed=spec.seed,
            mean_accuracy=spec.mean_accuracy,
            accuracy_spread=spec.accuracy_spread,
            spammer_fraction=spec.spammer_fraction,
            acceptance_mean=spec.acceptance_mean,
            acceptance_spread=spec.acceptance_spread,
            speed_spread=spec.speed_spread,
            straggler_fraction=spec.straggler_fraction,
            straggler_slowdown=spec.straggler_slowdown,
            wave=spec.spammer_wave,
        )
        budget = BudgetTracker(
            price_per_assignment=spec.price_per_assignment, budget=spec.budget
        )
        truth = marketplace_ground_truth(types)
        config = self._build_config(spec, run_dir)
        event_log: list[dict[str, Any]] = []
        started = time.perf_counter()

        adaptive_policy = (
            AdaptivePolicy(
                initial_assignments=min(2, spec.redundancy),
                min_assignments=min(2, spec.redundancy),
                max_assignments=spec.redundancy,
                confidence_threshold=spec.adaptive_threshold,
            )
            if spec.adaptive
            else None
        )
        adaptive_totals = AdaptiveCollectionStats()
        with CrowdContext(
            config=config,
            worker_pool=pool,
            ground_truth=truth,
            budget=budget,
        ) as context:
            data = context.CrowdData([], spec.name)
            data.set_presenter(MarketplacePresenter(task_types=types))
            seen_keys: dict[str, str] = {}  # key -> type name
            for batch_index in range(spec.total_batches):
                batch = arrivals[
                    batch_index * spec.batch_size : (batch_index + 1) * spec.batch_size
                ]
                if not batch:
                    break
                fraction = batch[0].index / spec.num_tasks
                wave_active = bool(
                    spec.spammer_wave and spec.spammer_wave.active_at(fraction)
                )
                pool.set_wave_active(wave_active)
                batch_keys = [keygen.sample(key_rng) for _ in batch]
                new_keys = 0
                objects = make_objects(batch_keys, types)
                for obj in objects:
                    if obj["key"] not in seen_keys:
                        seen_keys[obj["key"]] = obj["type"]
                        new_keys += 1
                data.extend(objects)
                if adaptive_policy is not None:
                    data.publish_task(
                        n_assignments=adaptive_policy.initial_assignments
                    )
                    # Collect inside the batch so the crowd answers under this
                    # batch's marketplace conditions (wave on/off), not at the
                    # end of the run under the final ones.
                    data.get_result_adaptive(adaptive_policy)
                    batch_stats = data.last_adaptive_stats
                    for stat_field in vars(batch_stats):
                        setattr(
                            adaptive_totals,
                            stat_field,
                            getattr(adaptive_totals, stat_field)
                            + getattr(batch_stats, stat_field),
                        )
                else:
                    data.publish_task(n_assignments=spec.redundancy)
                    data.get_result(blocking=True)
                event_log.append(
                    {
                        "batch": batch_index,
                        "arrivals": len(batch),
                        "first_arrival": round(batch[0].time, 6),
                        "last_arrival": round(batch[-1].time, 6),
                        "new_keys": new_keys,
                        "wave_active": wave_active,
                        "spent": round(budget.spent, 10),
                    }
                )
                if on_batch is not None:
                    on_batch(context, batch_index)
            pool.set_wave_active(False)
            data.quality_control(spec.quality_method)
            report, collected = self._summarise(
                spec,
                data,
                pool,
                budget,
                arrivals,
                seen_keys,
                started,
                adaptive_stats=adaptive_totals if spec.adaptive else None,
            )
        return ScenarioResult(
            spec=spec,
            report=report,
            event_log=event_log,
            collected=collected,
            run_dir=run_dir,
        )

    # -- metrics --------------------------------------------------------------

    def _summarise(
        self,
        spec: ScenarioSpec,
        data: Any,
        pool: Any,
        budget: BudgetTracker,
        arrivals: list[Arrival],
        seen_keys: Mapping[str, str],
        started: float,
        adaptive_stats: AdaptiveCollectionStats | None = None,
    ) -> tuple[dict[str, Any], list[dict[str, Any]]]:
        types = {t.name: t for t in spec.resolved_task_types}
        decisions = data.column(spec.quality_method)
        objects = data.column("object")
        results = data.column("result")
        truth = marketplace_ground_truth(list(types.values()))

        collected: list[dict[str, Any]] = []
        latencies_by_type: dict[str, list[float]] = {name: [] for name in types}
        correct_by_type: dict[str, int] = {name: 0 for name in types}
        count_by_type: dict[str, int] = {name: 0 for name in types}
        answers_total = 0
        seen: set[str] = set()
        for obj, result, decision in zip(objects, results, decisions):
            key = obj["key"]
            if key in seen:
                continue  # duplicate arrivals share one task
            seen.add(key)
            type_name = obj["type"]
            assignments = result["assignments"] if result else []
            answers_total += len(assignments)
            latency = max(
                (a["latency_seconds"] for a in assignments), default=0.0
            )
            latencies_by_type[type_name].append(latency)
            count_by_type[type_name] += 1
            expected = truth(obj)
            if decision == expected:
                correct_by_type[type_name] += 1
            collected.append(
                {
                    "key": key,
                    "type": type_name,
                    "answers": [
                        [a["worker_id"], a["answer"]] for a in assignments
                    ],
                    "latency": round(latency, 6),
                    "decision": decision,
                    "truth": expected,
                }
            )
        collected.sort(key=lambda entry: entry["key"])

        all_latencies = [
            value for values in latencies_by_type.values() for value in values
        ]
        by_type = {}
        for name, task_type in types.items():
            values = latencies_by_type[name]
            summary = latency_summary(values)
            summary["sla"] = task_type.sla_seconds
            summary["sla_attainment"] = sla_attainment(values, task_type.sla_seconds)
            summary["accuracy"] = (
                correct_by_type[name] / count_by_type[name]
                if count_by_type[name]
                else 1.0
            )
            by_type[name] = summary
        unique_tasks = len(seen)
        total_correct = sum(correct_by_type.values())
        marketplace_cost = sum(
            types[name].payout * spec.redundancy * count_by_type[name]
            for name in types
        )
        wall = time.perf_counter() - started
        report: dict[str, Any] = {
            "scenario": spec.to_mapping(),
            "workload": {
                "arrivals": len(arrivals),
                "unique_tasks": unique_tasks,
                "duplicate_arrivals": len(arrivals) - unique_tasks,
                "batches": spec.total_batches,
                "virtual_makespan": round(arrivals[-1].time, 6) if arrivals else 0.0,
                "answers": answers_total,
            },
            "latency": {
                "overall": latency_summary(all_latencies),
                "by_type": by_type,
            },
            "quality": {
                "method": spec.quality_method,
                "accuracy": (total_correct / unique_tasks) if unique_tasks else 1.0,
                **(
                    {"adaptive": adaptive_stats.to_dict()}
                    if adaptive_stats is not None
                    else {}
                ),
            },
            "economics": {
                "assignments_purchased": int(
                    round(budget.spent / spec.price_per_assignment)
                )
                if spec.price_per_assignment
                else 0,
                "spent": round(budget.spent, 10),
                "budget": spec.budget,
                "marketplace_cost": round(marketplace_cost, 10),
            },
            "pool": pool.statistics(),
            "timing": {
                "wall_seconds": wall,
                "arrivals_per_s": len(arrivals) / wall if wall > 0 else 0.0,
                "answers_per_s": answers_total / wall if wall > 0 else 0.0,
            },
        }
        # Round float latency stats so canonical comparisons are robust to
        # repr noise (the values themselves are already deterministic).
        for summary in [report["latency"]["overall"], *by_type.values()]:
            for stat_key, value in list(summary.items()):
                if isinstance(value, float):
                    summary[stat_key] = round(value, 6)
        return report, collected
