"""Latency-percentile and SLA math for scenario reports.

Kept free of any simulation state so the property suite can cross-check the
arithmetic against naive reference implementations (and against
``statistics.quantiles``) on arbitrary inputs.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence


def percentile(values: Sequence[float], q: float) -> float:
    """Return the *q*-th percentile of *values* (0 <= q <= 100).

    Uses inclusive linear interpolation between closest ranks — the same
    definition as ``statistics.quantiles(..., method="inclusive")`` — so a
    single observation is every percentile of itself and q=0/q=100 are the
    min/max.

    Raises:
        ValueError: On an empty input or a q outside [0, 100].
    """
    if not values:
        raise ValueError("percentile() of empty sequence")
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile q must be in [0, 100], got {q}")
    ordered = sorted(values)
    if len(ordered) == 1:
        return float(ordered[0])
    rank = (q / 100.0) * (len(ordered) - 1)
    low = int(rank)
    high = min(low + 1, len(ordered) - 1)
    fraction = rank - low
    return float(ordered[low] + (ordered[high] - ordered[low]) * fraction)


def latency_summary(values: Sequence[float]) -> dict[str, float]:
    """Return count/mean/p50/p95/p99/max for one latency population."""
    if not values:
        return {"count": 0}
    return {
        "count": len(values),
        "mean": sum(values) / len(values),
        "p50": percentile(values, 50),
        "p95": percentile(values, 95),
        "p99": percentile(values, 99),
        "max": max(values),
    }


def sla_attainment(values: Iterable[float], sla_seconds: float) -> float:
    """Fraction of latencies at or under *sla_seconds* (1.0 when empty).

    Raises:
        ValueError: When *sla_seconds* is not positive.
    """
    if sla_seconds <= 0:
        raise ValueError(f"sla_seconds must be positive, got {sla_seconds}")
    total = 0
    within = 0
    for value in values:
        total += 1
        if value <= sla_seconds:
            within += 1
    if total == 0:
        return 1.0
    return within / total


def accuracy(decisions: Mapping[int, object], truths: Mapping[int, object]) -> float:
    """Fraction of *truths* keys whose decision matches (1.0 when empty)."""
    if not truths:
        return 1.0
    correct = sum(1 for key, truth in truths.items() if decisions.get(key) == truth)
    return correct / len(truths)
