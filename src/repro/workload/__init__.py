"""Production-shaped workload generation and scenario harness.

Turns the uniform for-loop synthetic tasks the benchmarks were built on
into traffic that looks like production: bursty/diurnal arrivals, a
heterogeneous task marketplace over an unreliable crowd, Zipf-skewed
object keys — driven end-to-end through any configured storage × transport
stack by :class:`ScenarioRunner`, with byte-identical replay from a seed.
See ``docs/workloads.md``.
"""

from repro.workload.arrivals import (
    Arrival,
    ArrivalProcess,
    BurstyProcess,
    DiurnalProcess,
    PoissonProcess,
    build_arrival_process,
)
from repro.workload.keys import ZipfKeyGenerator
from repro.workload.marketplace import (
    DEFAULT_TASK_TYPES,
    MarketplacePresenter,
    MarketplaceWorkerPool,
    SpammerWave,
    TaskType,
    assign_task_type,
    build_marketplace_pool,
    make_objects,
    marketplace_ground_truth,
)
from repro.workload.metrics import (
    accuracy,
    latency_summary,
    percentile,
    sla_attainment,
)
from repro.workload.scenario import (
    ScenarioResult,
    ScenarioRunner,
    ScenarioSpec,
    canonical_json,
)

__all__ = [
    "Arrival",
    "ArrivalProcess",
    "PoissonProcess",
    "BurstyProcess",
    "DiurnalProcess",
    "build_arrival_process",
    "ZipfKeyGenerator",
    "TaskType",
    "DEFAULT_TASK_TYPES",
    "SpammerWave",
    "MarketplacePresenter",
    "MarketplaceWorkerPool",
    "assign_task_type",
    "build_marketplace_pool",
    "make_objects",
    "marketplace_ground_truth",
    "percentile",
    "latency_summary",
    "sla_attainment",
    "accuracy",
    "ScenarioSpec",
    "ScenarioRunner",
    "ScenarioResult",
    "canonical_json",
]
