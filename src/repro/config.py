"""Configuration objects shared across the repro library.

The paper's CrowdContext takes a platform endpoint, an API key and a local
cache database path.  In this reproduction the platform is an in-process
simulator, so the configuration instead captures the knobs that matter for
reproducibility: storage location, default task redundancy, random seed and
platform behaviour.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, replace
from typing import Any, Mapping

DEFAULT_DB_FILENAME = "reprowd.db"
DEFAULT_REDUNDANCY = 3
DEFAULT_SEED = 7


@dataclass(frozen=True)
class StorageConfig:
    """Configuration of the persistence layer.

    Attributes:
        engine: One of ``"sqlite"``, ``"memory"``, ``"log"``, ``"sharded"``
            or ``"ring"``.
        path: Filesystem path of the database (ignored for ``"memory"``).
            For ``"sharded"`` and ``"ring"`` this is a *directory*; each
            child lives in its own file underneath it (``shard-00.db`` /
            ``ring-00.db``, ...).
        synchronous: When True the SQLite engine commits after every write,
            matching the durability the paper relies on for crash-and-rerun.
        snapshot_every: For the log-structured engine, how many log records
            are written between snapshots.
        shards: For the sharded and ring engines, how many child engines
            keys are partitioned across.  For ``"ring"`` this is only the
            *initial* membership: reopening a directory that a rebalance has
            grown or shrunk rediscovers the actual members.
        shard_engine: For the sharded and ring engines, the child engine
            type — one of ``"sqlite"``, ``"memory"`` or ``"log"``.
        shard_workers: For the sharded and ring engines, the number of
            threads a ``put_many`` batch fans out over (one child
            transaction per member).  0 (the default) keeps writes serial.
        virtual_nodes: For the ring engine, how many points each member
            contributes to the hash ring; more points spread ownership (and
            rebalance moves) more evenly.  Ignored on reopen in favour of
            the value stored in the ring's membership manifest.
        rebalance_batch_size: For the ring engine, how many keys each
            migration wave copies and deletes per batch during
            ``rebalance``.
        replicas: For the ring engine, how many distinct ring members keep
            a copy of every key (write-all / read-any-fresh).  The default
            1 keeps single-copy placement; 2 survives any single member
            loss with transparent failover.  Must not exceed ``shards``,
            and is ignored on reopen in favour of the value stored in the
            ring's membership manifest.
        codec: Name of the record codec values are stored under — ``"json"``
            (the default: strict sorted-key JSON text) or ``"binary"`` (a
            compact length-prefixed binary format; same value domain, often
            smaller and faster to encode).  Durable engines record the codec
            in their metadata and rediscover it on reopen, so None (the
            default) means "whatever the database was written with, else
            json"; naming a codec that contradicts the stored one raises
            :class:`~repro.exceptions.CodecMismatchError`.
    """

    engine: str = "sqlite"
    path: str = DEFAULT_DB_FILENAME
    synchronous: bool = True
    snapshot_every: int = 1000
    shards: int = 4
    shard_engine: str = "sqlite"
    shard_workers: int = 0
    virtual_nodes: int = 64
    rebalance_batch_size: int = 256
    replicas: int = 1
    codec: str | None = None

    def with_path(self, path: str) -> "StorageConfig":
        """Return a copy of this config pointing at *path*."""
        return replace(self, path=path)


@dataclass(frozen=True)
class PlatformConfig:
    """Configuration of the simulated crowdsourcing platform.

    Attributes:
        name: Human-readable platform name (mirrors PyBossa's endpoint).
        api_key: Accepted API key; the simulated server rejects others.
        default_redundancy: Number of assignments per task when a CrowdData
            publish call does not override it.
        failure_rate: Probability that a transport call fails with
            :class:`repro.exceptions.PlatformUnavailableError` (fault
            injection; 0 disables it).
        duplicate_delivery_rate: Probability that a completed task run is
            delivered twice by the transport, exercising idempotent result
            ingestion.
        seed: Seed for the platform's internal randomness.
        store: Which task store backs the server's state — ``"memory"``
            (the default in-process dicts) or ``"durable"`` (projects,
            tasks, task runs, dedup keys and id counters live on a storage
            engine, so the platform survives a restart).
        store_engine: For a durable store, the :class:`StorageConfig` of the
            engine holding the platform's tables.  When None, a
            :class:`~repro.core.context.CrowdContext` shares its own cache
            engine — the whole experiment (client cache and platform state)
            then lives in one sharable artifact.
        transport: Which client drives the transport — ``"direct"`` (one
            blocking round-trip per call, the default), ``"pipelined"``
            (a :class:`~repro.platform.client.PipelinedClient` over an
            :class:`~repro.platform.transport.AsyncTransport` keeps up to
            ``max_in_flight`` calls on the wire; see ``docs/transport.md``)
            or ``"wire"`` (a :class:`~repro.platform.wire.WireClient`
            talking length-prefixed JSON over a real TCP socket to a
            server in another process; see ``docs/wire.md``).
        wire_host: For the wire transport, the server host to connect to
            (and the interface a spawned private server binds).
        wire_port: For the wire transport, the server port.  0 — the
            default — means "no server yet": the context spawns a private
            ``python -m repro.platform.wire`` process for this experiment
            and tears it down on close.  Non-zero connects to an already
            running external server at ``wire_host:wire_port``.
        wire_max_frame_bytes: Frame-size cap for the wire protocol; calls
            whose request or response exceeds it fail with a non-retryable
            error (use the paged verbs for large projects).
        retry_backoff_seconds: Base delay between retried transport
            attempts (exponential with jitter).  None — the default —
            picks per transport: 0 for the in-process transports (retries
            are instant, the seed behaviour) and a small base for the wire
            transport, where hammering a restarting server would exhaust
            the retry budget before it comes back.
        max_in_flight: For the pipelined transport, the maximum number of
            concurrent in-flight calls (the bounded window further
            ``call_async`` submissions block on).
        pipeline_batch_size: For the pipelined transport, how many task
            specs each in-flight ``create_tasks`` sub-batch carries (also
            the default slice size of pipelined iteration).
        append_batch_size: For a durable store, how many task-run appends
            are coalesced into one engine write (``simulate_work``'s
            write-behind batch).  1, the default, writes every append
            through immediately.
        group_commit: For a durable store, defer the engine's durability
            barrier across each multi-table write wave (task publishes,
            coalesced run appends) and commit the whole wave with one
            ``commit_group`` — one fsync per storage member per wave
            instead of one per write.  A crash loses at most the last
            uncommitted wave, never a torn prefix of it; the idempotent
            publish/ingest paths heal a rerun.  Off by default.
    """

    name: str = "simulated-pybossa"
    api_key: str = "test-api-key"
    default_redundancy: int = DEFAULT_REDUNDANCY
    failure_rate: float = 0.0
    duplicate_delivery_rate: float = 0.0
    seed: int = DEFAULT_SEED
    store: str = "memory"
    store_engine: StorageConfig | None = None
    transport: str = "direct"
    wire_host: str = "127.0.0.1"
    wire_port: int = 0
    wire_max_frame_bytes: int = 16 * 1024 * 1024
    retry_backoff_seconds: float | None = None
    max_in_flight: int = 8
    pipeline_batch_size: int = 500
    append_batch_size: int = 1
    group_commit: bool = False


@dataclass(frozen=True)
class WorkerPoolConfig:
    """Configuration of the simulated worker pool.

    Attributes:
        size: Number of simulated workers.
        mean_accuracy: Mean per-worker accuracy used when generating the
            pool (each worker's accuracy is drawn around this mean).
        accuracy_spread: Half-width of the uniform accuracy jitter.
        spammer_fraction: Fraction of the pool that answers uniformly at
            random regardless of the true label.
        adversarial_fraction: Fraction of the pool that answers the opposite
            of the true label.
        seed: Seed for worker generation and answer sampling.
    """

    size: int = 25
    mean_accuracy: float = 0.85
    accuracy_spread: float = 0.10
    spammer_fraction: float = 0.0
    adversarial_fraction: float = 0.0
    seed: int = DEFAULT_SEED


@dataclass(frozen=True)
class ReprowdConfig:
    """Top-level configuration consumed by :class:`repro.core.CrowdContext`."""

    storage: StorageConfig = field(default_factory=StorageConfig)
    platform: PlatformConfig = field(default_factory=PlatformConfig)
    workers: WorkerPoolConfig = field(default_factory=WorkerPoolConfig)
    seed: int = DEFAULT_SEED

    @classmethod
    def in_memory(cls, seed: int = DEFAULT_SEED) -> "ReprowdConfig":
        """Return a configuration that keeps everything in memory.

        Useful for tests and quick experiments that do not need the
        sharable database file.
        """
        return cls(
            storage=StorageConfig(engine="memory", path=":memory:"),
            platform=PlatformConfig(seed=seed),
            workers=WorkerPoolConfig(seed=seed),
            seed=seed,
        )

    @classmethod
    def sqlite(cls, path: str, seed: int = DEFAULT_SEED) -> "ReprowdConfig":
        """Return a configuration backed by a SQLite file at *path*."""
        return cls(
            storage=StorageConfig(engine="sqlite", path=path),
            platform=PlatformConfig(seed=seed),
            workers=WorkerPoolConfig(seed=seed),
            seed=seed,
        )

    @classmethod
    def durable(cls, path: str, seed: int = DEFAULT_SEED) -> "ReprowdConfig":
        """Return a SQLite configuration whose *platform* state is durable too.

        On top of :meth:`sqlite` (the client-side fault-recovery cache in
        the file at *path*), the simulated platform keeps its projects,
        tasks, task runs and id counters in the same file — so killing and
        reopening the whole experiment, server included, resumes with
        identical ids and no re-purchased crowd work.
        """
        return cls(
            storage=StorageConfig(engine="sqlite", path=path),
            platform=PlatformConfig(seed=seed, store="durable"),
            workers=WorkerPoolConfig(seed=seed),
            seed=seed,
        )

    @classmethod
    def from_mapping(cls, mapping: Mapping[str, Any]) -> "ReprowdConfig":
        """Build a configuration from a nested mapping (e.g. parsed JSON)."""
        storage = StorageConfig(**dict(mapping.get("storage", {})))
        platform_mapping = dict(mapping.get("platform", {}))
        if isinstance(platform_mapping.get("store_engine"), Mapping):
            platform_mapping["store_engine"] = StorageConfig(
                **dict(platform_mapping["store_engine"])
            )
        platform = PlatformConfig(**platform_mapping)
        workers = WorkerPoolConfig(**dict(mapping.get("workers", {})))
        seed = int(mapping.get("seed", DEFAULT_SEED))
        return cls(storage=storage, platform=platform, workers=workers, seed=seed)

    def resolve_db_path(self, base_dir: str | None = None) -> str:
        """Return the absolute path of the database file.

        Args:
            base_dir: Directory to resolve relative paths against; defaults
                to the current working directory.
        """
        if self.storage.engine == "memory":
            return ":memory:"
        path = self.storage.path
        if os.path.isabs(path):
            return path
        return os.path.abspath(os.path.join(base_dir or os.getcwd(), path))
