"""SQLite-backed storage engine — the default, like the original Reprowd.

The whole experiment lives in one SQLite file, which is exactly the artefact
Bob shares with Ally in the paper: code + database file = reproducible
experiment.

Layout: one physical SQLite table ``reprowd_records`` holds every logical
table's records, keyed by (table_name, key).  Using a single physical table
keeps logical table creation cheap and makes cross-table scans (lineage
export) a single query.
"""

from __future__ import annotations

import os
import sqlite3
import threading
from typing import Any, Iterable, Iterator, Sequence

from repro.exceptions import (
    CodecMismatchError,
    DuplicateKeyError,
    StorageError,
    TableNotFoundError,
    UnknownCursorError,
)
from repro.storage.engine import StorageEngine
from repro.storage.records import Codec, Record, resolve_codec

_SCHEMA = """
CREATE TABLE IF NOT EXISTS reprowd_tables (
    table_name TEXT PRIMARY KEY
);
CREATE TABLE IF NOT EXISTS reprowd_records (
    table_name TEXT NOT NULL,
    key        TEXT NOT NULL,
    value      TEXT NOT NULL,
    version    INTEGER NOT NULL DEFAULT 1,
    seq        INTEGER PRIMARY KEY AUTOINCREMENT,
    UNIQUE (table_name, key)
);
CREATE INDEX IF NOT EXISTS idx_records_table ON reprowd_records (table_name);
CREATE TABLE IF NOT EXISTS reprowd_meta (
    meta_key   TEXT PRIMARY KEY,
    meta_value TEXT NOT NULL
);
"""


class SqliteEngine(StorageEngine):
    """Durable storage engine backed by a single SQLite file."""

    engine_name = "sqlite"

    def __init__(
        self,
        path: str,
        synchronous: bool = True,
        codec: str | Codec | None = None,
    ) -> None:
        """Open (creating if necessary) the database at *path*.

        Args:
            path: Filesystem path of the database file, or ``":memory:"``.
            synchronous: Commit after every write.  Matches the durability
                the paper's crash-and-rerun semantics require; disable only
                for throughput experiments.
            codec: Value codec (name or instance).  ``None`` adopts whatever
                the database was written with (strict JSON on a fresh file);
                an explicit codec that disagrees with the stored one raises
                :class:`~repro.exceptions.CodecMismatchError`.
        """
        self.path = path
        self.synchronous = synchronous
        if path != ":memory:":
            parent = os.path.dirname(os.path.abspath(path))
            os.makedirs(parent, exist_ok=True)
        self._lock = threading.RLock()
        try:
            # A 30s busy timeout (up from sqlite3's 5s default) rides out
            # cross-process write contention when several wire servers
            # share one platform database file.
            self._conn = sqlite3.connect(path, check_same_thread=False, timeout=30.0)
        except sqlite3.Error as exc:
            raise StorageError(f"cannot open SQLite database at {path!r}: {exc}") from exc
        self._conn.executescript(_SCHEMA)
        self.codec = self._settle_codec(codec)
        self._conn.commit()
        self._dirty = False
        self._closed = False

    # -- internal helpers ----------------------------------------------------

    def _settle_codec(self, requested: str | Codec | None) -> Codec:
        """Reconcile the requested codec with the one recorded in meta.

        The stored name wins when no codec is requested; an explicit
        disagreement raises.  A database that predates the meta row but
        already holds records is implicitly ``json`` (all pre-codec data is
        JSON text).  The settled name is recorded so every future open
        rediscovers it with no config change.
        """
        row = self._conn.execute(
            "SELECT meta_value FROM reprowd_meta WHERE meta_key = 'codec'"
        ).fetchone()
        stored = row[0] if row is not None else None
        if stored is None:
            has_records = (
                self._conn.execute("SELECT 1 FROM reprowd_records LIMIT 1").fetchone()
                is not None
            )
            if has_records:
                stored = "json"
        if requested is None:
            codec = resolve_codec(stored)
        else:
            codec = resolve_codec(requested)
            if stored is not None and codec.name != stored:
                raise CodecMismatchError(self.path, stored, codec.name)
        self._conn.execute(
            "INSERT OR IGNORE INTO reprowd_meta (meta_key, meta_value) "
            "VALUES ('codec', ?)",
            (codec.name,),
        )
        return codec

    def _commit(self, defer: bool = False) -> None:
        if defer:
            self._dirty = True
            return
        if self.synchronous:
            self._conn.commit()
            self._dirty = False

    def _require_table(self, table_name: str) -> None:
        cursor = self._conn.execute(
            "SELECT 1 FROM reprowd_tables WHERE table_name = ?", (table_name,)
        )
        if cursor.fetchone() is None:
            raise TableNotFoundError(table_name)

    # -- table management ----------------------------------------------------

    def create_table(self, table_name: str) -> None:
        with self._lock:
            self._conn.execute(
                "INSERT OR IGNORE INTO reprowd_tables (table_name) VALUES (?)",
                (table_name,),
            )
            self._commit()

    def drop_table(self, table_name: str) -> None:
        with self._lock:
            self._conn.execute(
                "DELETE FROM reprowd_records WHERE table_name = ?", (table_name,)
            )
            self._conn.execute(
                "DELETE FROM reprowd_tables WHERE table_name = ?", (table_name,)
            )
            self._commit()

    def list_tables(self) -> list[str]:
        with self._lock:
            cursor = self._conn.execute(
                "SELECT table_name FROM reprowd_tables ORDER BY table_name"
            )
            return [row[0] for row in cursor.fetchall()]

    def has_table(self, table_name: str) -> bool:
        with self._lock:
            cursor = self._conn.execute(
                "SELECT 1 FROM reprowd_tables WHERE table_name = ?", (table_name,)
            )
            return cursor.fetchone() is not None

    # -- record access -------------------------------------------------------

    def put(self, table_name: str, key: str, value: Any) -> Record:
        encoded = self.codec.encode(value)
        with self._lock:
            self._require_table(table_name)
            cursor = self._conn.execute(
                "SELECT version FROM reprowd_records WHERE table_name = ? AND key = ?",
                (table_name, key),
            )
            row = cursor.fetchone()
            if row is None:
                version = 1
                self._conn.execute(
                    "INSERT INTO reprowd_records (table_name, key, value, version) "
                    "VALUES (?, ?, ?, ?)",
                    (table_name, key, encoded, version),
                )
            else:
                version = row[0] + 1
                self._conn.execute(
                    "UPDATE reprowd_records SET value = ?, version = ? "
                    "WHERE table_name = ? AND key = ?",
                    (encoded, version, table_name, key),
                )
            self._commit()
            return Record(key=key, value=value, version=version)

    def put_new(self, table_name: str, key: str, value: Any) -> Record:
        # A direct INSERT (no prior existence check) makes put_new atomic
        # across *processes* sharing the database file, not just across
        # threads sharing this handle — the UNIQUE(table_name, key)
        # constraint is the arbiter, so exactly one writer wins a race
        # and every loser gets DuplicateKeyError.  The platform store's
        # id-allocation leases rely on this.
        encoded = self.codec.encode(value)
        with self._lock:
            self._require_table(table_name)
            try:
                self._conn.execute(
                    "INSERT INTO reprowd_records (table_name, key, value, version) "
                    "VALUES (?, ?, ?, 1)",
                    (table_name, key, encoded),
                )
            except sqlite3.IntegrityError:
                raise DuplicateKeyError(table_name, key) from None
            self._commit()
            return Record(key=key, value=value, version=1)

    def get(self, table_name: str, key: str, default: Any = None) -> Any:
        record = self.get_record(table_name, key)
        return record.value if record is not None else default

    def get_record(self, table_name: str, key: str) -> Record | None:
        with self._lock:
            self._require_table(table_name)
            cursor = self._conn.execute(
                "SELECT value, version FROM reprowd_records "
                "WHERE table_name = ? AND key = ?",
                (table_name, key),
            )
            row = cursor.fetchone()
        if row is None:
            return None
        return Record(key=key, value=self.codec.decode(row[0]), version=row[1])

    def delete(self, table_name: str, key: str) -> bool:
        with self._lock:
            self._require_table(table_name)
            cursor = self._conn.execute(
                "DELETE FROM reprowd_records WHERE table_name = ? AND key = ?",
                (table_name, key),
            )
            self._commit()
            return cursor.rowcount > 0

    def contains(self, table_name: str, key: str) -> bool:
        with self._lock:
            self._require_table(table_name)
            cursor = self._conn.execute(
                "SELECT 1 FROM reprowd_records WHERE table_name = ? AND key = ?",
                (table_name, key),
            )
            return cursor.fetchone() is not None

    def scan(
        self, table_name: str, limit: int | None = None, start_after: str | None = None
    ) -> Iterator[Record]:
        if limit is not None and limit < 0:
            raise ValueError(f"scan limit must be non-negative, got {limit}")
        with self._lock:
            self._require_table(table_name)
            clauses = "table_name = ?"
            params: list[Any] = [table_name]
            if start_after is not None:
                cursor = self._conn.execute(
                    "SELECT seq FROM reprowd_records WHERE table_name = ? AND key = ?",
                    (table_name, start_after),
                )
                row = cursor.fetchone()
                if row is None:
                    raise UnknownCursorError(table_name, start_after)
                clauses += " AND seq > ?"
                params.append(row[0])
            sql = (
                "SELECT key, value, version FROM reprowd_records "
                f"WHERE {clauses} ORDER BY seq"
            )
            if limit is not None:
                sql += " LIMIT ?"
                params.append(limit)
            rows = self._conn.execute(sql, params).fetchall()
        for key, value, version in rows:
            yield Record(key=key, value=self.codec.decode(value), version=version)

    def scan_keys(
        self, table_name: str, limit: int | None = None, start_after: str | None = None
    ) -> list[str]:
        if limit is not None and limit < 0:
            raise ValueError(f"scan limit must be non-negative, got {limit}")
        with self._lock:
            self._require_table(table_name)
            clauses = "table_name = ?"
            params: list[Any] = [table_name]
            if start_after is not None:
                cursor = self._conn.execute(
                    "SELECT seq FROM reprowd_records WHERE table_name = ? AND key = ?",
                    (table_name, start_after),
                )
                row = cursor.fetchone()
                if row is None:
                    raise UnknownCursorError(table_name, start_after)
                clauses += " AND seq > ?"
                params.append(row[0])
            sql = f"SELECT key FROM reprowd_records WHERE {clauses} ORDER BY seq"
            if limit is not None:
                sql += " LIMIT ?"
                params.append(limit)
            return [row[0] for row in self._conn.execute(sql, params).fetchall()]

    def count(self, table_name: str) -> int:
        with self._lock:
            self._require_table(table_name)
            cursor = self._conn.execute(
                "SELECT COUNT(*) FROM reprowd_records WHERE table_name = ?",
                (table_name,),
            )
            return int(cursor.fetchone()[0])

    # -- bulk record access ----------------------------------------------------

    #: Keys per IN-clause chunk; well below SQLite's bound-parameter limit.
    _CHUNK = 400

    def _fetch_records(self, table_name: str, keys: Sequence[str]) -> dict[str, tuple[str, int]]:
        """Return raw (encoded value, version) per existing key, chunked."""
        found: dict[str, tuple[str, int]] = {}
        distinct = list(dict.fromkeys(keys))
        for start in range(0, len(distinct), self._CHUNK):
            chunk = distinct[start : start + self._CHUNK]
            placeholders = ",".join("?" * len(chunk))
            cursor = self._conn.execute(
                "SELECT key, value, version FROM reprowd_records "
                f"WHERE table_name = ? AND key IN ({placeholders})",
                (table_name, *chunk),
            )
            for key, value, version in cursor.fetchall():
                found[key] = (value, version)
        return found

    def put_many(
        self,
        table_name: str,
        items: Iterable[tuple[str, Any]],
        if_absent: bool = False,
        *,
        defer_commit: bool = False,
    ) -> list[Record]:
        """Batch write as a single transaction: one read, one ``executemany``."""
        items = list(items)
        with self._lock:
            self._require_table(table_name)
            if not items:
                return []
            if if_absent:
                return self._put_many_if_absent(
                    table_name, items, defer_commit=defer_commit
                )
            raw = self._fetch_records(table_name, [key for key, _ in items])
            # Batch-encode every value up front (all-or-nothing validation),
            # then replay put semantics in memory and write only each key's
            # final state; intermediate versions of a key repeated in the
            # batch exist only in the returned records, exactly as if the
            # puts had run one at a time.
            encoded_values = self.codec.encode_many([value for _, value in items])
            stored: dict[str, Record] = {}
            pending: dict[str, tuple[Any, int]] = {}
            records: list[Record] = []
            for (key, value), encoded in zip(items, encoded_values):
                prior = stored.get(key)
                if prior is None and key in raw:
                    existing_value, existing_version = raw[key]
                    prior = Record(
                        key=key,
                        value=self.codec.decode(existing_value),
                        version=existing_version,
                    )
                    stored[key] = prior
                record = prior.bump(value) if prior else Record(key=key, value=value)
                stored[key] = record
                pending[key] = (encoded, record.version)
                records.append(record)
            if pending:
                self._conn.executemany(
                    "INSERT INTO reprowd_records (table_name, key, value, version) "
                    "VALUES (?, ?, ?, ?) "
                    "ON CONFLICT (table_name, key) "
                    "DO UPDATE SET value = excluded.value, version = excluded.version",
                    [
                        (table_name, key, encoded, version)
                        for key, (encoded, version) in pending.items()
                    ],
                )
                self._commit(defer=defer_commit)
            return records

    def _put_many_if_absent(
        self,
        table_name: str,
        items: list[tuple[str, Any]],
        defer_commit: bool = False,
    ) -> list[Record]:
        """``INSERT OR IGNORE`` then read back: cross-process first-writer-wins.

        A read-then-upsert implementation would let two processes both
        believe they inserted a key; pushing the conflict resolution into
        SQLite's unique constraint guarantees exactly one writer's value
        survives, and the fetch-back returns that authoritative record to
        winners and losers alike (the dedup-claim protocol depends on it).
        """
        # Validate the whole batch up front, matching the update path.
        encoded_values = self.codec.encode_many([value for _, value in items])
        first: dict[str, Any] = {}
        for (key, _), encoded in zip(items, encoded_values):
            first.setdefault(key, encoded)
        self._conn.executemany(
            "INSERT OR IGNORE INTO reprowd_records (table_name, key, value, version) "
            "VALUES (?, ?, ?, 1)",
            [(table_name, key, encoded) for key, encoded in first.items()],
        )
        self._commit(defer=defer_commit)
        raw = self._fetch_records(table_name, [key for key, _ in items])
        records: list[Record] = []
        for key, _ in items:
            value, version = raw[key]
            records.append(
                Record(key=key, value=self.codec.decode(value), version=version)
            )
        return records

    def delete_many(
        self,
        table_name: str,
        keys: Sequence[str],
        *,
        defer_commit: bool = False,
    ) -> int:
        """Chunked batch delete: one ``DELETE ... IN`` per chunk, one commit."""
        with self._lock:
            self._require_table(table_name)
            distinct = list(dict.fromkeys(keys))
            deleted = 0
            for start in range(0, len(distinct), self._CHUNK):
                chunk = distinct[start : start + self._CHUNK]
                placeholders = ",".join("?" * len(chunk))
                cursor = self._conn.execute(
                    "DELETE FROM reprowd_records "
                    f"WHERE table_name = ? AND key IN ({placeholders})",
                    (table_name, *chunk),
                )
                deleted += cursor.rowcount
            if distinct:
                self._commit(defer=defer_commit)
            return deleted

    def commit_group(self) -> None:
        """Commit writes deferred with ``defer_commit=True`` (one barrier)."""
        with self._lock:
            if self._dirty:
                self._conn.commit()
                self._dirty = False

    def get_many(
        self, table_name: str, keys: Sequence[str], default: Any = None
    ) -> list[Any]:
        with self._lock:
            self._require_table(table_name)
            raw = self._fetch_records(table_name, keys)
        values: list[Any] = []
        for key in keys:
            hit = raw.get(key)
            values.append(self.codec.decode(hit[0]) if hit is not None else default)
        return values

    # -- lifecycle -------------------------------------------------------------

    def flush(self) -> None:
        with self._lock:
            self._conn.commit()
            self._dirty = False

    def close(self) -> None:
        if not self._closed:
            with self._lock:
                self._conn.commit()
                self._conn.close()
            self._closed = True
