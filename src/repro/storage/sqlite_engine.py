"""SQLite-backed storage engine — the default, like the original Reprowd.

The whole experiment lives in one SQLite file, which is exactly the artefact
Bob shares with Ally in the paper: code + database file = reproducible
experiment.

Layout: one physical SQLite table ``reprowd_records`` holds every logical
table's records, keyed by (table_name, key).  Using a single physical table
keeps logical table creation cheap and makes cross-table scans (lineage
export) a single query.
"""

from __future__ import annotations

import os
import sqlite3
import threading
from typing import Any, Iterator

from repro.exceptions import DuplicateKeyError, StorageError, TableNotFoundError
from repro.storage.engine import StorageEngine
from repro.storage.records import Record, RecordCodec

_SCHEMA = """
CREATE TABLE IF NOT EXISTS reprowd_tables (
    table_name TEXT PRIMARY KEY
);
CREATE TABLE IF NOT EXISTS reprowd_records (
    table_name TEXT NOT NULL,
    key        TEXT NOT NULL,
    value      TEXT NOT NULL,
    version    INTEGER NOT NULL DEFAULT 1,
    seq        INTEGER PRIMARY KEY AUTOINCREMENT,
    UNIQUE (table_name, key)
);
CREATE INDEX IF NOT EXISTS idx_records_table ON reprowd_records (table_name);
"""


class SqliteEngine(StorageEngine):
    """Durable storage engine backed by a single SQLite file."""

    engine_name = "sqlite"

    def __init__(self, path: str, synchronous: bool = True) -> None:
        """Open (creating if necessary) the database at *path*.

        Args:
            path: Filesystem path of the database file, or ``":memory:"``.
            synchronous: Commit after every write.  Matches the durability
                the paper's crash-and-rerun semantics require; disable only
                for throughput experiments.
        """
        self.path = path
        self.synchronous = synchronous
        if path != ":memory:":
            parent = os.path.dirname(os.path.abspath(path))
            os.makedirs(parent, exist_ok=True)
        self._lock = threading.RLock()
        try:
            self._conn = sqlite3.connect(path, check_same_thread=False)
        except sqlite3.Error as exc:
            raise StorageError(f"cannot open SQLite database at {path!r}: {exc}") from exc
        self._conn.executescript(_SCHEMA)
        self._conn.commit()
        self._closed = False

    # -- internal helpers ----------------------------------------------------

    def _commit(self) -> None:
        if self.synchronous:
            self._conn.commit()

    def _require_table(self, table_name: str) -> None:
        cursor = self._conn.execute(
            "SELECT 1 FROM reprowd_tables WHERE table_name = ?", (table_name,)
        )
        if cursor.fetchone() is None:
            raise TableNotFoundError(table_name)

    # -- table management ----------------------------------------------------

    def create_table(self, table_name: str) -> None:
        with self._lock:
            self._conn.execute(
                "INSERT OR IGNORE INTO reprowd_tables (table_name) VALUES (?)",
                (table_name,),
            )
            self._commit()

    def drop_table(self, table_name: str) -> None:
        with self._lock:
            self._conn.execute(
                "DELETE FROM reprowd_records WHERE table_name = ?", (table_name,)
            )
            self._conn.execute(
                "DELETE FROM reprowd_tables WHERE table_name = ?", (table_name,)
            )
            self._commit()

    def list_tables(self) -> list[str]:
        with self._lock:
            cursor = self._conn.execute(
                "SELECT table_name FROM reprowd_tables ORDER BY table_name"
            )
            return [row[0] for row in cursor.fetchall()]

    def has_table(self, table_name: str) -> bool:
        with self._lock:
            cursor = self._conn.execute(
                "SELECT 1 FROM reprowd_tables WHERE table_name = ?", (table_name,)
            )
            return cursor.fetchone() is not None

    # -- record access -------------------------------------------------------

    def put(self, table_name: str, key: str, value: Any) -> Record:
        encoded = RecordCodec.encode(value)
        with self._lock:
            self._require_table(table_name)
            cursor = self._conn.execute(
                "SELECT version FROM reprowd_records WHERE table_name = ? AND key = ?",
                (table_name, key),
            )
            row = cursor.fetchone()
            if row is None:
                version = 1
                self._conn.execute(
                    "INSERT INTO reprowd_records (table_name, key, value, version) "
                    "VALUES (?, ?, ?, ?)",
                    (table_name, key, encoded, version),
                )
            else:
                version = row[0] + 1
                self._conn.execute(
                    "UPDATE reprowd_records SET value = ?, version = ? "
                    "WHERE table_name = ? AND key = ?",
                    (encoded, version, table_name, key),
                )
            self._commit()
            return Record(key=key, value=value, version=version)

    def put_new(self, table_name: str, key: str, value: Any) -> Record:
        with self._lock:
            self._require_table(table_name)
            if self.contains(table_name, key):
                raise DuplicateKeyError(table_name, key)
            return self.put(table_name, key, value)

    def get(self, table_name: str, key: str, default: Any = None) -> Any:
        record = self.get_record(table_name, key)
        return record.value if record is not None else default

    def get_record(self, table_name: str, key: str) -> Record | None:
        with self._lock:
            self._require_table(table_name)
            cursor = self._conn.execute(
                "SELECT value, version FROM reprowd_records "
                "WHERE table_name = ? AND key = ?",
                (table_name, key),
            )
            row = cursor.fetchone()
        if row is None:
            return None
        return Record(key=key, value=RecordCodec.decode(row[0]), version=row[1])

    def delete(self, table_name: str, key: str) -> bool:
        with self._lock:
            self._require_table(table_name)
            cursor = self._conn.execute(
                "DELETE FROM reprowd_records WHERE table_name = ? AND key = ?",
                (table_name, key),
            )
            self._commit()
            return cursor.rowcount > 0

    def contains(self, table_name: str, key: str) -> bool:
        with self._lock:
            self._require_table(table_name)
            cursor = self._conn.execute(
                "SELECT 1 FROM reprowd_records WHERE table_name = ? AND key = ?",
                (table_name, key),
            )
            return cursor.fetchone() is not None

    def scan(self, table_name: str) -> Iterator[Record]:
        with self._lock:
            self._require_table(table_name)
            cursor = self._conn.execute(
                "SELECT key, value, version FROM reprowd_records "
                "WHERE table_name = ? ORDER BY seq",
                (table_name,),
            )
            rows = cursor.fetchall()
        for key, value, version in rows:
            yield Record(key=key, value=RecordCodec.decode(value), version=version)

    def count(self, table_name: str) -> int:
        with self._lock:
            self._require_table(table_name)
            cursor = self._conn.execute(
                "SELECT COUNT(*) FROM reprowd_records WHERE table_name = ?",
                (table_name,),
            )
            return int(cursor.fetchone()[0])

    # -- lifecycle -------------------------------------------------------------

    def flush(self) -> None:
        with self._lock:
            self._conn.commit()

    def close(self) -> None:
        if not self._closed:
            with self._lock:
                self._conn.commit()
                self._conn.close()
            self._closed = True
