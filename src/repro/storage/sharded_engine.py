"""Partitioned storage engines: N child engines behind one ``StorageEngine`` face.

Every key is routed to one of N child engines by a stable hash of the key, so
a table's records — and therefore its write load and its on-disk footprint —
spread across shard files instead of funnelling through a single SQLite file.
The children are ordinary engines (any mix the factory can build: sqlite
files, log directories, in-memory dicts), which keeps the partitioning logic
engine-agnostic and lets every child keep its own durability story.

Two partitioning schemes share one implementation:

* :class:`ShardedEngine` (this module) routes by ``hash(key) mod N`` — fast
  and simple, but the membership is fixed: changing N remaps almost every
  key.
* :class:`~repro.storage.ring.ConsistentHashEngine` routes over a
  virtual-node hash ring, so membership can change online — growing from N
  to N+1 children moves only ~K/(N+1) keys (see ``ring.py``).

The hard part, common to both, is honouring the single-engine contract
*exactly*, so the cross-engine property suites can treat a partitioned
engine as just another member of the equivalence class.  That shared
machinery lives in :class:`PartitionedEngine`:

* **Insertion order.** ``scan`` must yield records in global insertion order,
  but each child only knows its own local order.  The engine therefore wraps
  every stored value in a tiny envelope ``{"s": seq, "v": value}`` carrying a
  per-table global sequence number assigned at first insert (and kept across
  overwrites, matching how an upsert keeps its original scan position on
  every other engine).  Within one child, records are always inserted in
  ascending ``seq`` order, so each child's local scan is already sorted by
  ``seq`` — a lazy k-way merge on ``seq`` across the child streams
  reconstructs the exact global order without materialising any child's
  table.
* **Pagination.** ``(limit, start_after)`` hold across children: the cursor
  key is routed to its owning child to resolve its sequence number (raising
  :class:`~repro.exceptions.StorageError` for an unknown cursor, like every
  other engine), and the merge then yields only records with a larger
  sequence, up to ``limit``.  Child streams are themselves paginated
  (``_merge_page_size`` records per child page), so a merge-scan holds
  O(children x page) records, never a whole table.
* **Batches.** ``put_many`` validates the entire batch up front, assigns
  sequence numbers in item order, then fans out one child ``put_many`` per
  child — one transaction/group-append *per child*.  With ``shard_workers``
  > 0 the per-child transactions run concurrently on a thread pool (the
  children are independent files, so the only shared resource is the disk);
  the default keeps them serial.  A crash mid-batch can leave some children
  applied and others not — a child *prefix* when serial, an arbitrary
  whole-child *subset* when parallel; either way it is the torn-batch shape
  the fault-recovery cache already heals, because its batches use
  ``if_absent=True`` (put_new-per-key) semantics and a rerun fills only the
  missing keys.

The sequence counter is not persisted separately: it is recovered lazily per
table by taking the maximum envelope sequence across children, so reopening a
partitioned database needs no extra metadata file and cannot disagree with
the data it describes.
"""

from __future__ import annotations

import hashlib
import heapq
from concurrent.futures import ThreadPoolExecutor
from itertools import islice
from typing import Any, Iterable, Iterator, Sequence

from repro.exceptions import (
    DuplicateKeyError,
    StorageError,
    TableNotFoundError,
    UnknownCursorError,
)
from repro.storage.engine import StorageEngine
from repro.storage.records import Record

#: Envelope field holding the global insertion sequence number.
_SEQ = "s"
#: Envelope field holding the caller's actual value.
_VALUE = "v"
#: Envelope field holding the logical per-key version (ring engine only; the
#: modulo-sharded engine reuses its child's version counter, which is stable
#: because a key never changes child).
_VER = "n"

_ABSENT = object()


def stable_hash64(text: str) -> int:
    """Stable 64-bit hash (SHA-1 prefix) — identical across processes.

    The one routing hash both partitioning schemes build on: SHA-1 rather
    than Python's per-process-randomised builtin ``hash``, because reopening
    a partitioned database must send every key back to the child that
    stored it.
    """
    digest = hashlib.sha1(text.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


def shard_index(key: str, num_shards: int) -> int:
    """Return the stable shard index for *key* among *num_shards* shards."""
    return stable_hash64(key) % num_shards


class PartitionedEngine(StorageEngine):
    """Shared machinery for engines that partition one table space over
    child engines: envelope sequence numbers, the k-way merge-scan, and the
    per-child batch fan-out.

    Subclasses maintain ``self._members`` (the child engines currently
    holding data) and implement :meth:`_owner_index` (which member a key is
    *written* to).  The ring engine additionally overrides the lookup hooks
    (:meth:`_read_envelope_record`, :meth:`_bulk_lookup_envelopes`) so reads
    stay correct while a rebalance is migrating keys between members, sets
    ``_envelope_versions`` so a key's logical version survives moving to a
    child that has never seen it, and replaces the merge-scan wholesale with
    its sequence index (see ``ring.py``).
    """

    #: Records fetched per member page during a merge-scan.
    _merge_page_size = 256

    #: When True, the logical per-key version is carried in the envelope
    #: (field ``"n"``) instead of borrowed from the child's version counter.
    _envelope_versions = False

    def __init__(self, shard_workers: int = 0):
        self.shard_workers = max(0, int(shard_workers))
        self._executor: ThreadPoolExecutor | None = None
        # Next global sequence number per table, recovered lazily from the
        # members on first write after open.
        self._next_seq: dict[str, int] = {}
        self._members: list[StorageEngine] = []
        self._closed = False

    def _adopt_member_codec(self) -> None:
        """Adopt the children's (shared) codec as this engine's codec.

        Called by subclasses once ``self._members`` is populated.  The
        children each settled their codec against their own durable meta, so
        disagreement means the partition was assembled from files written
        with different codecs — refuse loudly rather than half-misread.
        """
        names = {member.codec.name for member in self._members}
        if len(names) > 1:
            raise StorageError(
                f"partition members disagree on codec: {sorted(names)}"
            )
        self.codec = self._members[0].codec

    # -- routing hooks ---------------------------------------------------------

    def _owner_index(self, key: str) -> int:
        """Index into ``self._members`` of the member *key* is written to."""
        raise NotImplementedError

    def _owner(self, key: str) -> StorageEngine:
        return self._members[self._owner_index(key)]

    def _write_indexes(self, key: str) -> list[int]:
        """Indexes into ``self._members`` a write of *key* must land on.

        The modulo-sharded engine writes each key to exactly one member; the
        ring engine overrides this to return the key's full live replica set
        (write-all) when it is configured with ``replicas`` > 1.
        """
        return [self._owner_index(key)]

    def _read_envelope_record(self, table_name: str, key: str) -> Record | None:
        """Return the raw (enveloped) record for *key*, or None when absent.

        The default reads the key's owner; the ring engine overrides this to
        also consult the key's *previous* owner while a rebalance is in
        flight (read-from-both-owners).
        """
        return self._owner(key).get_record(table_name, key)

    def _note_write(self, table_name: str, key: str, envelope: dict[str, Any]) -> None:
        """Hook fired after *key*'s envelope is (about to be) written.

        The modulo-sharded engine needs no bookkeeping; the ring engine uses
        this to maintain its per-table sequence index (child physical order
        stops being scan order once a migration has appended moved keys).
        """

    def _bulk_lookup_envelopes(self, table_name: str, keys: Sequence[str]) -> dict[str, Any]:
        """Return envelope values for every present key, one ``get_many`` per
        member touched (the bulk analogue of :meth:`_read_envelope_record`)."""
        by_member: dict[int, list[str]] = {}
        for key in keys:
            by_member.setdefault(self._owner_index(key), []).append(key)
        found: dict[str, Any] = {}
        for index, member_keys in by_member.items():
            envelopes = self._members[index].get_many(
                table_name, member_keys, default=_ABSENT
            )
            for key, envelope in zip(member_keys, envelopes):
                if envelope is not _ABSENT:
                    found[key] = envelope
        return found

    # -- envelopes -------------------------------------------------------------

    def _wrap(self, seq: int, value: Any, version: int | None = None) -> dict[str, Any]:
        envelope = {_SEQ: seq, _VALUE: value}
        if version is not None:
            envelope[_VER] = version
        return envelope

    def _unwrap(self, record: Record) -> Record:
        return Record(
            key=record.key,
            value=record.value[_VALUE],
            version=record.value.get(_VER, record.version),
        )

    def _require_table(self, table_name: str) -> None:
        if not self._members[0].has_table(table_name):
            raise TableNotFoundError(table_name)

    def _allocate_seq(self, table_name: str, count: int = 1) -> int:
        """Reserve *count* sequence numbers; return the first.

        On the first allocation for a table after open, the counter is
        recovered as one past the largest envelope sequence stored in any
        member.  Within a member insertion order is ascending sequence
        order, so the member's maximum is its *last* record — found by
        paging the key-only scan (bounded memory, no value decoding) and
        reading one record per member.
        """
        next_seq = self._next_seq.get(table_name)
        if next_seq is None:
            next_seq = 1
            for member in self._members:
                last_key = self._last_key(member, table_name)
                if last_key is not None:
                    last = member.get_record(table_name, last_key)
                    next_seq = max(next_seq, last.value[_SEQ] + 1)
        self._next_seq[table_name] = next_seq + count
        return next_seq

    def _last_key(self, member: StorageEngine, table_name: str) -> str | None:
        """Return the key of the member's last record, paging in bounded memory."""
        cursor: str | None = None
        last: str | None = None
        while True:
            page = member.scan_keys(
                table_name, limit=self._merge_page_size, start_after=cursor
            )
            if page:
                last = page[-1]
            if len(page) < self._merge_page_size:
                return last
            cursor = page[-1]

    # -- table management ------------------------------------------------------

    def create_table(self, table_name: str) -> None:
        for member in self._members:
            member.create_table(table_name)

    def drop_table(self, table_name: str) -> None:
        for member in self._members:
            member.drop_table(table_name)
        self._next_seq.pop(table_name, None)

    def list_tables(self) -> list[str]:
        names: set[str] = set()
        for member in self._members:
            names.update(member.list_tables())
        return sorted(names)

    def has_table(self, table_name: str) -> bool:
        return all(member.has_table(table_name) for member in self._members)

    # -- record access ---------------------------------------------------------

    def put(self, table_name: str, key: str, value: Any) -> Record:
        self.codec.encode(value)
        existing = self._read_envelope_record(table_name, key)
        if existing is not None:
            seq = existing.value[_SEQ]
        else:
            seq = self._allocate_seq(table_name)
        version = None
        if self._envelope_versions:
            version = existing.value[_VER] + 1 if existing is not None else 1
        envelope = self._wrap(seq, value, version)
        stored = self._write_envelope(table_name, key, envelope)
        self._note_write(table_name, key, envelope)
        return self._unwrap(stored)

    def put_new(self, table_name: str, key: str, value: Any) -> Record:
        if self._read_envelope_record(table_name, key) is not None:
            raise DuplicateKeyError(table_name, key)
        # The key is known absent, so skip put()'s second existence read
        # and allocate its sequence number directly.
        self.codec.encode(value)
        seq = self._allocate_seq(table_name)
        version = 1 if self._envelope_versions else None
        envelope = self._wrap(seq, value, version)
        stored = self._write_envelope(table_name, key, envelope)
        self._note_write(table_name, key, envelope)
        return self._unwrap(stored)

    def _write_envelope(self, table_name: str, key: str, envelope: dict[str, Any]) -> Record:
        """Write one envelope to every member :meth:`_write_indexes` names."""
        stored: Record | None = None
        for index in self._write_indexes(key):
            record = self._members[index].put(table_name, key, envelope)
            if stored is None:
                stored = record
        return stored

    def get(self, table_name: str, key: str, default: Any = None) -> Any:
        record = self._read_envelope_record(table_name, key)
        return record.value[_VALUE] if record is not None else default

    def get_record(self, table_name: str, key: str) -> Record | None:
        record = self._read_envelope_record(table_name, key)
        return self._unwrap(record) if record is not None else None

    def delete(self, table_name: str, key: str) -> bool:
        return self._owner(key).delete(table_name, key)

    def contains(self, table_name: str, key: str) -> bool:
        return self._read_envelope_record(table_name, key) is not None

    def count(self, table_name: str) -> int:
        return sum(member.count(table_name) for member in self._members)

    # -- merge scan ------------------------------------------------------------

    def _member_stream(
        self, index: int, table_name: str, start_key: str | None
    ) -> Iterator[tuple[int, int, Record]]:
        """Yield (seq, member index, raw record) from one member in
        ascending-seq order.

        Pages through the child's own paginated scan (from the member-local
        exclusive cursor *start_key*) so no member table is ever materialised
        whole.
        """
        member = self._members[index]
        cursor = start_key
        while True:
            page = list(
                member.scan(table_name, limit=self._merge_page_size, start_after=cursor)
            )
            for record in page:
                yield (record.value[_SEQ], index, record)
            if len(page) < self._merge_page_size:
                return
            cursor = page[-1].key

    def _local_cursor(
        self, member: StorageEngine, table_name: str, min_seq: int
    ) -> str | None:
        """Translate the global cursor into one member's exclusive scan cursor.

        Returns the key of the member's last record with sequence <= *min_seq*
        (or None when the member holds none).  Within a member insertion order
        is ascending sequence order, so the boundary is found by walking
        key-only pages — one single-record read per page decides whether the
        whole page is before the cursor — and binary-searching inside the one
        page that straddles it.  Memory stays bounded by the merge page size
        and no member value is ever decoded wholesale.
        """
        cursor: str | None = None
        best: str | None = None
        while True:
            page = member.scan_keys(
                table_name, limit=self._merge_page_size, start_after=cursor
            )
            if not page:
                return best
            last_seq = member.get_record(table_name, page[-1]).value[_SEQ]
            if last_seq <= min_seq:
                best = page[-1]
                if len(page) < self._merge_page_size:
                    return best
                cursor = page[-1]
                continue
            # The boundary lies inside this page: binary search it.
            low, high = 0, len(page)
            while low < high:
                mid = (low + high) // 2
                if member.get_record(table_name, page[mid]).value[_SEQ] <= min_seq:
                    low = mid + 1
                else:
                    high = mid
            return page[low - 1] if low else best

    def _merged(
        self, table_name: str, limit: int | None, start_after: str | None
    ) -> Iterator[Record]:
        if limit is not None and limit < 0:
            raise ValueError(f"scan limit must be non-negative, got {limit}")
        self._require_table(table_name)
        min_seq: int | None = None
        if start_after is not None:
            cursor_record = self._read_envelope_record(table_name, start_after)
            if cursor_record is None:
                raise UnknownCursorError(table_name, start_after)
            min_seq = cursor_record.value[_SEQ]
        streams = [
            self._member_stream(
                index,
                table_name,
                None
                if min_seq is None
                else self._local_cursor(self._members[index], table_name, min_seq),
            )
            for index in range(len(self._members))
        ]
        merged = heapq.merge(*streams, key=lambda entry: entry[0])
        if limit is not None:
            # islice stops *at* the limit rather than pulling one extra
            # merge item (which could trigger a whole discarded member page).
            merged = islice(merged, limit)
        for _, _, record in merged:
            yield self._unwrap(record)

    def scan(
        self, table_name: str, limit: int | None = None, start_after: str | None = None
    ) -> Iterator[Record]:
        yield from self._merged(table_name, limit, start_after)

    # -- bulk record access ------------------------------------------------------

    def put_many(
        self,
        table_name: str,
        items: Iterable[tuple[str, Any]],
        if_absent: bool = False,
        *,
        defer_commit: bool = False,
    ) -> list[Record]:
        """Fan a batch out per member: one child ``put_many`` (one transaction
        or group append) per member touched, after validating every value.

        ``defer_commit=True`` is forwarded to every child batch, so a whole
        fan-out wave can share one :meth:`commit_group` barrier per child
        instead of one per batch.
        """
        self._require_table(table_name)
        items = list(items)
        if not items:
            return []
        self.codec.encode_many([value for _, value in items])

        # Resolve existing envelopes for every distinct key with one
        # get_many per member (the ring engine also consults old owners).
        distinct = list(dict.fromkeys(key for key, _ in items))
        envelopes = self._bulk_lookup_envelopes(table_name, distinct)
        if self._envelope_versions:
            return self._put_many_versioned(
                table_name, items, envelopes, if_absent, defer_commit=defer_commit
            )

        seqs = {key: envelope[_SEQ] for key, envelope in envelopes.items()}
        # Assign fresh sequence numbers in item order so the merge-scan order
        # of new keys matches their position in the batch, then build each
        # member's sub-batch preserving relative item order.
        new_keys = [key for key in distinct if key not in seqs]
        if new_keys:
            first = self._allocate_seq(table_name, count=len(new_keys))
            order_of_first_occurrence: dict[str, int] = {}
            for key, _ in items:
                if key not in seqs and key not in order_of_first_occurrence:
                    order_of_first_occurrence[key] = first + len(order_of_first_occurrence)
            seqs.update(order_of_first_occurrence)

        member_items: dict[int, list[tuple[str, Any]]] = {}
        for key, value in items:
            member_items.setdefault(self._owner_index(key), []).append(
                (key, self._wrap(seqs[key], value))
            )
        member_results = {
            index: iter(batch_records)
            for index, batch_records in self._run_member_batches(
                table_name, member_items, if_absent, defer_commit=defer_commit
            ).items()
        }
        return [
            self._unwrap(next(member_results[self._owner_index(key)]))
            for key, _ in items
        ]

    def _put_many_versioned(
        self,
        table_name: str,
        items: list[tuple[str, Any]],
        envelopes: dict[str, Any],
        if_absent: bool,
        defer_commit: bool = False,
    ) -> list[Record]:
        """The envelope-versioned batch path (ring engine).

        ``if_absent`` is resolved client-side against the looked-up
        envelopes (which already cover both owners during a migration), so
        child batches carry only the items that actually write; the logical
        version is threaded through the envelope, making it survive a key's
        move to a child whose own version counter has never seen it.
        """
        current: dict[str, Any] = dict(envelopes)
        new_keys = [
            key
            for key in dict.fromkeys(key for key, _ in items)
            if key not in current
        ]
        next_fresh = self._allocate_seq(table_name, count=len(new_keys)) if new_keys else 0
        fresh_seqs: dict[str, int] = {}
        for key in new_keys:
            fresh_seqs[key] = next_fresh
            next_fresh += 1

        results: list[Record] = []
        writes: dict[int, list[tuple[str, Any]]] = {}
        written: dict[str, Any] = {}  # first-occurrence (= sequence) order
        for key, value in items:
            envelope = current.get(key)
            if if_absent and envelope is not None:
                results.append(Record(key=key, value=envelope[_VALUE], version=envelope[_VER]))
                continue
            seq = envelope[_SEQ] if envelope is not None else fresh_seqs[key]
            version = envelope[_VER] + 1 if envelope is not None else 1
            new_envelope = self._wrap(seq, value, version)
            current[key] = new_envelope
            for member_index in self._write_indexes(key):
                writes.setdefault(member_index, []).append((key, new_envelope))
            written.setdefault(key, new_envelope)
            results.append(Record(key=key, value=value, version=version))
        self._run_member_batches(
            table_name, writes, if_absent=False, defer_commit=defer_commit
        )
        for key, new_envelope in written.items():
            self._note_write(table_name, key, new_envelope)
        return results

    def _run_member_batches(
        self,
        table_name: str,
        member_items: dict[int, list[tuple[str, Any]]],
        if_absent: bool,
        defer_commit: bool = False,
    ) -> dict[int, list[Record]]:
        """Issue one child ``put_many`` per member touched, serial or threaded.

        With ``shard_workers`` > 0 and more than one member touched, the
        child transactions run concurrently on a pool — each member is an
        independent engine (its own file, its own lock), so the batches
        cannot contend on anything but the disk.  Per-member atomicity is
        unchanged (one transaction/group-append per member); a crash
        mid-batch leaves an arbitrary whole-member *subset* applied when
        parallel (a prefix when serial), which ``if_absent=True`` reruns
        heal either way.  ``defer_commit=True`` forwards the wave-barrier
        contract to each child batch.
        """
        if self.shard_workers and len(member_items) > 1:
            futures = {
                index: self._member_pool().submit(
                    self._members[index].put_many,
                    table_name,
                    batch,
                    if_absent,
                    defer_commit=defer_commit,
                )
                for index, batch in member_items.items()
            }
            return {index: future.result() for index, future in futures.items()}
        return {
            index: self._members[index].put_many(
                table_name, batch, if_absent=if_absent, defer_commit=defer_commit
            )
            for index, batch in member_items.items()
        }

    def delete_many(
        self,
        table_name: str,
        keys: Sequence[str],
        *,
        defer_commit: bool = False,
    ) -> int:
        """Batch delete across members: one child ``delete_many`` per member.

        Returns the number of distinct requested keys that existed (replica
        copies are not double-counted).
        """
        self._require_table(table_name)
        distinct = list(dict.fromkeys(keys))
        if not distinct:
            return 0
        present = self._bulk_lookup_envelopes(table_name, distinct)
        per_member: dict[int, list[str]] = {}
        for key in distinct:
            for index in self._write_indexes(key):
                per_member.setdefault(index, []).append(key)
        for index, member_keys in per_member.items():
            self._members[index].delete_many(
                table_name, member_keys, defer_commit=defer_commit
            )
        for key in present:
            self._note_delete(table_name, key)
        return len(present)

    def _note_delete(self, table_name: str, key: str) -> None:
        """Hook fired after *key* is deleted (ring index bookkeeping)."""

    def commit_group(self) -> None:
        """Fan the wave barrier out: one ``commit_group`` per member.

        With ``shard_workers`` > 0 the member barriers (sqlite commits, log
        fsyncs) run concurrently on the same pool the batches used.
        """
        members = list(self._members)
        if self.shard_workers and len(members) > 1:
            pool = self._member_pool()
            futures = [pool.submit(member.commit_group) for member in members]
            for future in futures:
                future.result()
        else:
            for member in members:
                member.commit_group()

    def _member_pool(self) -> ThreadPoolExecutor:
        if self._executor is None:
            self._executor = ThreadPoolExecutor(
                max_workers=min(self.shard_workers, len(self._members)),
                thread_name_prefix="shard-put",
            )
        return self._executor

    def get_many(
        self, table_name: str, keys: Sequence[str], default: Any = None
    ) -> list[Any]:
        self._require_table(table_name)
        found = self._bulk_lookup_envelopes(table_name, list(dict.fromkeys(keys)))
        return [
            found[key][_VALUE] if key in found else default for key in keys
        ]

    # -- lifecycle ----------------------------------------------------------------

    def flush(self) -> None:
        for member in self._members:
            member.flush()

    def close(self) -> None:
        if not self._closed:
            if self._executor is not None:
                self._executor.shutdown(wait=True)
                self._executor = None
            for member in self._members:
                member.close()
            self._closed = True


class ShardedEngine(PartitionedEngine):
    """Hash-partitions one logical table space over a *fixed* N children."""

    engine_name = "sharded"

    def __init__(self, shards: Sequence[StorageEngine], shard_workers: int = 0):
        """Wrap *shards* (at least one child engine, already open).

        Args:
            shards: The child engines keys are hash-partitioned across.
            shard_workers: Number of threads a ``put_many`` batch fans its
                per-shard child transactions out over.  0 (the default)
                keeps shard writes serial; any positive value caps the pool
                size (never more threads than shards touched).  Safe because
                each shard's sub-batch goes to exactly one thread and every
                child engine serialises its own access.
        """
        if not shards:
            raise ValueError("ShardedEngine needs at least one child engine")
        super().__init__(shard_workers=shard_workers)
        self.shards = list(shards)
        self._members = self.shards
        self._adopt_member_codec()

    def _owner_index(self, key: str) -> int:
        return shard_index(key, len(self.shards))

    def describe(self) -> dict[str, Any]:
        description = super().describe()
        description["shard_workers"] = self.shard_workers
        description["shards"] = [
            {"engine": shard.engine_name, "records": sum(shard.describe()["tables"].values())}
            for shard in self.shards
        ]
        return description
