"""Sharded storage engine: N child engines behind one ``StorageEngine`` face.

Every key is routed to one of N child engines (shards) by a stable hash of
the key, so a table's records — and therefore its write load and its on-disk
footprint — spread evenly across shard files instead of funnelling through a
single SQLite file.  The children are ordinary engines (any mix the factory
can build: sqlite files, log directories, in-memory dicts), which keeps the
sharding logic engine-agnostic and lets every child keep its own durability
story.

The hard part is honouring the single-engine contract *exactly*, so the
cross-engine property suites can treat the sharded engine as just another
member of the equivalence class:

* **Insertion order.** ``scan`` must yield records in global insertion order,
  but each child only knows its own local order.  The sharded engine
  therefore wraps every stored value in a tiny envelope ``{"s": seq, "v":
  value}`` carrying a per-table global sequence number assigned at first
  insert (and kept across overwrites, matching how an upsert keeps its
  original scan position on every other engine).  Within one shard, records
  are always inserted in ascending ``seq`` order, so each shard's local scan
  is already sorted by ``seq`` — a lazy k-way merge on ``seq`` across the
  shard streams reconstructs the exact global order without materialising
  any shard's table.
* **Pagination.** ``(limit, start_after)`` hold across shards: the cursor
  key is routed to its owning shard to resolve its sequence number (raising
  :class:`~repro.exceptions.StorageError` for an unknown cursor, like every
  other engine), and the merge then yields only records with a larger
  sequence, up to ``limit``.  Shard streams are themselves paginated
  (``_merge_page_size`` records per shard page), so a merge-scan holds
  O(shards x page) records, never a whole table.
* **Batches.** ``put_many`` validates the entire batch up front, assigns
  sequence numbers in item order, then fans out one child ``put_many`` per
  shard — one transaction/group-append *per shard*.  With ``shard_workers``
  > 0 the per-shard transactions run concurrently on a thread pool (the
  shards are independent files, so the only shared resource is the disk);
  the default keeps them serial.  A crash mid-batch can leave some shards
  applied and others not — a shard *prefix* when serial, an arbitrary
  whole-shard *subset* when parallel; either way it is the torn-batch shape
  the fault-recovery cache already heals, because its batches use
  ``if_absent=True`` (put_new-per-key) semantics and a rerun fills only the
  missing keys.

The sequence counter is not persisted separately: it is recovered lazily per
table by taking the maximum envelope sequence across shards, so reopening a
sharded database needs no extra metadata file and cannot disagree with the
data it describes.
"""

from __future__ import annotations

import hashlib
import heapq
from concurrent.futures import ThreadPoolExecutor
from itertools import islice
from typing import Any, Iterable, Iterator, Sequence

from repro.exceptions import DuplicateKeyError, TableNotFoundError, UnknownCursorError
from repro.storage.engine import StorageEngine
from repro.storage.records import Record, RecordCodec

#: Envelope field holding the global insertion sequence number.
_SEQ = "s"
#: Envelope field holding the caller's actual value.
_VALUE = "v"

_ABSENT = object()


def shard_index(key: str, num_shards: int) -> int:
    """Return the stable shard index for *key* among *num_shards* shards.

    Uses SHA-1 rather than Python's builtin ``hash`` so the routing is
    identical across processes and interpreter runs — reopening a sharded
    database must send every key back to the shard that stored it.
    """
    digest = hashlib.sha1(key.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") % num_shards


class ShardedEngine(StorageEngine):
    """Hash-partitions one logical table space over N child engines."""

    engine_name = "sharded"

    #: Records fetched per shard page during a merge-scan.
    _merge_page_size = 256

    def __init__(self, shards: Sequence[StorageEngine], shard_workers: int = 0):
        """Wrap *shards* (at least one child engine, already open).

        Args:
            shards: The child engines keys are hash-partitioned across.
            shard_workers: Number of threads a ``put_many`` batch fans its
                per-shard child transactions out over.  0 (the default)
                keeps shard writes serial; any positive value caps the pool
                size (never more threads than shards touched).  Safe because
                each shard's sub-batch goes to exactly one thread and every
                child engine serialises its own access.
        """
        if not shards:
            raise ValueError("ShardedEngine needs at least one child engine")
        self.shards = list(shards)
        self.shard_workers = max(0, int(shard_workers))
        self._executor: ThreadPoolExecutor | None = None
        # Next global sequence number per table, recovered lazily from the
        # shards on first write after open.
        self._next_seq: dict[str, int] = {}
        self._closed = False

    # -- routing and envelopes -----------------------------------------------

    def _shard(self, key: str) -> StorageEngine:
        return self.shards[shard_index(key, len(self.shards))]

    @staticmethod
    def _wrap(seq: int, value: Any) -> dict[str, Any]:
        return {_SEQ: seq, _VALUE: value}

    @staticmethod
    def _unwrap(record: Record) -> Record:
        return Record(
            key=record.key, value=record.value[_VALUE], version=record.version
        )

    def _require_table(self, table_name: str) -> None:
        if not self.shards[0].has_table(table_name):
            raise TableNotFoundError(table_name)

    def _allocate_seq(self, table_name: str, count: int = 1) -> int:
        """Reserve *count* sequence numbers; return the first.

        On the first allocation for a table after open, the counter is
        recovered as one past the largest envelope sequence stored in any
        shard.  Within a shard insertion order is ascending sequence order,
        so the shard's maximum is its *last* record — found by paging the
        key-only scan (bounded memory, no value decoding) and reading one
        record per shard.
        """
        next_seq = self._next_seq.get(table_name)
        if next_seq is None:
            next_seq = 1
            for shard in self.shards:
                last_key = self._last_key(shard, table_name)
                if last_key is not None:
                    last = shard.get_record(table_name, last_key)
                    next_seq = max(next_seq, last.value[_SEQ] + 1)
        self._next_seq[table_name] = next_seq + count
        return next_seq

    def _last_key(self, shard: StorageEngine, table_name: str) -> str | None:
        """Return the key of the shard's last record, paging in bounded memory."""
        cursor: str | None = None
        last: str | None = None
        while True:
            page = shard.scan_keys(
                table_name, limit=self._merge_page_size, start_after=cursor
            )
            if page:
                last = page[-1]
            if len(page) < self._merge_page_size:
                return last
            cursor = page[-1]

    # -- table management ------------------------------------------------------

    def create_table(self, table_name: str) -> None:
        for shard in self.shards:
            shard.create_table(table_name)

    def drop_table(self, table_name: str) -> None:
        for shard in self.shards:
            shard.drop_table(table_name)
        self._next_seq.pop(table_name, None)

    def list_tables(self) -> list[str]:
        names: set[str] = set()
        for shard in self.shards:
            names.update(shard.list_tables())
        return sorted(names)

    def has_table(self, table_name: str) -> bool:
        return all(shard.has_table(table_name) for shard in self.shards)

    # -- record access ---------------------------------------------------------

    def put(self, table_name: str, key: str, value: Any) -> Record:
        RecordCodec.encode(value)
        shard = self._shard(key)
        existing = shard.get_record(table_name, key)
        if existing is not None:
            seq = existing.value[_SEQ]
        else:
            seq = self._allocate_seq(table_name)
        return self._unwrap(shard.put(table_name, key, self._wrap(seq, value)))

    def put_new(self, table_name: str, key: str, value: Any) -> Record:
        shard = self._shard(key)
        if shard.get_record(table_name, key) is not None:
            raise DuplicateKeyError(table_name, key)
        # The key is known absent, so skip put()'s second existence read
        # and allocate its sequence number directly.
        RecordCodec.encode(value)
        seq = self._allocate_seq(table_name)
        return self._unwrap(shard.put(table_name, key, self._wrap(seq, value)))

    def get(self, table_name: str, key: str, default: Any = None) -> Any:
        record = self._shard(key).get_record(table_name, key)
        return record.value[_VALUE] if record is not None else default

    def get_record(self, table_name: str, key: str) -> Record | None:
        record = self._shard(key).get_record(table_name, key)
        return self._unwrap(record) if record is not None else None

    def delete(self, table_name: str, key: str) -> bool:
        return self._shard(key).delete(table_name, key)

    def contains(self, table_name: str, key: str) -> bool:
        return self._shard(key).contains(table_name, key)

    def count(self, table_name: str) -> int:
        return sum(shard.count(table_name) for shard in self.shards)

    # -- merge scan ------------------------------------------------------------

    def _shard_stream(
        self, shard: StorageEngine, table_name: str, start_key: str | None
    ) -> Iterator[tuple[int, Record]]:
        """Yield (seq, raw record) from one shard in ascending-seq order.

        Pages through the child's own paginated scan (from the shard-local
        exclusive cursor *start_key*) so no shard table is ever materialised
        whole.
        """
        cursor = start_key
        while True:
            page = list(
                shard.scan(table_name, limit=self._merge_page_size, start_after=cursor)
            )
            for record in page:
                yield (record.value[_SEQ], record)
            if len(page) < self._merge_page_size:
                return
            cursor = page[-1].key

    def _local_cursor(
        self, shard: StorageEngine, table_name: str, min_seq: int
    ) -> str | None:
        """Translate the global cursor into one shard's exclusive scan cursor.

        Returns the key of the shard's last record with sequence <= *min_seq*
        (or None when the shard holds none).  Within a shard insertion order
        is ascending sequence order, so the boundary is found by walking
        key-only pages — one single-record read per page decides whether the
        whole page is before the cursor — and binary-searching inside the one
        page that straddles it.  Memory stays bounded by the merge page size
        and no shard value is ever decoded wholesale.
        """
        cursor: str | None = None
        best: str | None = None
        while True:
            page = shard.scan_keys(
                table_name, limit=self._merge_page_size, start_after=cursor
            )
            if not page:
                return best
            last_seq = shard.get_record(table_name, page[-1]).value[_SEQ]
            if last_seq <= min_seq:
                best = page[-1]
                if len(page) < self._merge_page_size:
                    return best
                cursor = page[-1]
                continue
            # The boundary lies inside this page: binary search it.
            low, high = 0, len(page)
            while low < high:
                mid = (low + high) // 2
                if shard.get_record(table_name, page[mid]).value[_SEQ] <= min_seq:
                    low = mid + 1
                else:
                    high = mid
            return page[low - 1] if low else best

    def _merged(
        self, table_name: str, limit: int | None, start_after: str | None
    ) -> Iterator[Record]:
        if limit is not None and limit < 0:
            raise ValueError(f"scan limit must be non-negative, got {limit}")
        self._require_table(table_name)
        min_seq: int | None = None
        if start_after is not None:
            cursor_record = self._shard(start_after).get_record(table_name, start_after)
            if cursor_record is None:
                raise UnknownCursorError(table_name, start_after)
            min_seq = cursor_record.value[_SEQ]
        streams = [
            self._shard_stream(
                shard,
                table_name,
                None if min_seq is None else self._local_cursor(shard, table_name, min_seq),
            )
            for shard in self.shards
        ]
        merged = heapq.merge(*streams, key=lambda pair: pair[0])
        if limit is not None:
            # islice stops *at* the limit rather than pulling one extra
            # merge item (which could trigger a whole discarded shard page).
            merged = islice(merged, limit)
        for _, record in merged:
            yield self._unwrap(record)

    def scan(
        self, table_name: str, limit: int | None = None, start_after: str | None = None
    ) -> Iterator[Record]:
        yield from self._merged(table_name, limit, start_after)

    # -- bulk record access ------------------------------------------------------

    def put_many(
        self,
        table_name: str,
        items: Iterable[tuple[str, Any]],
        if_absent: bool = False,
    ) -> list[Record]:
        """Fan a batch out per shard: one child ``put_many`` (one transaction
        or group append) per shard touched, after validating every value."""
        self._require_table(table_name)
        items = list(items)
        if not items:
            return []
        for _, value in items:
            RecordCodec.encode(value)

        # Resolve existing sequence numbers for every distinct key with one
        # get_many per shard.
        distinct = list(dict.fromkeys(key for key, _ in items))
        by_shard_keys: dict[int, list[str]] = {}
        for key in distinct:
            by_shard_keys.setdefault(shard_index(key, len(self.shards)), []).append(key)
        seqs: dict[str, int] = {}
        for index, keys in by_shard_keys.items():
            envelopes = self.shards[index].get_many(table_name, keys, default=_ABSENT)
            for key, envelope in zip(keys, envelopes):
                if envelope is not _ABSENT:
                    seqs[key] = envelope[_SEQ]

        # Assign fresh sequence numbers in item order so the merge-scan order
        # of new keys matches their position in the batch, then build each
        # shard's sub-batch preserving relative item order.
        new_keys = [key for key in distinct if key not in seqs]
        if new_keys:
            first = self._allocate_seq(table_name, count=len(new_keys))
            order_of_first_occurrence: dict[str, int] = {}
            for key, _ in items:
                if key not in seqs and key not in order_of_first_occurrence:
                    order_of_first_occurrence[key] = first + len(order_of_first_occurrence)
            seqs.update(order_of_first_occurrence)

        shard_items: dict[int, list[tuple[str, Any]]] = {}
        for key, value in items:
            shard_items.setdefault(shard_index(key, len(self.shards)), []).append(
                (key, self._wrap(seqs[key], value))
            )
        shard_results = {
            index: iter(batch_records)
            for index, batch_records in self._run_shard_batches(
                table_name, shard_items, if_absent
            ).items()
        }
        return [
            self._unwrap(next(shard_results[shard_index(key, len(self.shards))]))
            for key, _ in items
        ]

    def _run_shard_batches(
        self,
        table_name: str,
        shard_items: dict[int, list[tuple[str, Any]]],
        if_absent: bool,
    ) -> dict[int, list[Record]]:
        """Issue one child ``put_many`` per shard touched, serial or threaded.

        With ``shard_workers`` > 0 and more than one shard touched, the
        child transactions run concurrently on a pool — each shard is an
        independent engine (its own file, its own lock), so the batches
        cannot contend on anything but the disk.  Per-shard atomicity is
        unchanged (one transaction/group-append per shard); a crash
        mid-batch leaves an arbitrary whole-shard *subset* applied when
        parallel (a prefix when serial), which ``if_absent=True`` reruns
        heal either way.
        """
        if self.shard_workers and len(shard_items) > 1:
            futures = {
                index: self._shard_pool().submit(
                    self.shards[index].put_many, table_name, batch, if_absent
                )
                for index, batch in shard_items.items()
            }
            return {index: future.result() for index, future in futures.items()}
        return {
            index: self.shards[index].put_many(table_name, batch, if_absent=if_absent)
            for index, batch in shard_items.items()
        }

    def _shard_pool(self) -> ThreadPoolExecutor:
        if self._executor is None:
            self._executor = ThreadPoolExecutor(
                max_workers=min(self.shard_workers, len(self.shards)),
                thread_name_prefix="shard-put",
            )
        return self._executor

    def get_many(
        self, table_name: str, keys: Sequence[str], default: Any = None
    ) -> list[Any]:
        self._require_table(table_name)
        by_shard: dict[int, list[str]] = {}
        for key in keys:
            by_shard.setdefault(shard_index(key, len(self.shards)), []).append(key)
        found: dict[str, Any] = {}
        for index, shard_keys in by_shard.items():
            envelopes = self.shards[index].get_many(
                table_name, shard_keys, default=_ABSENT
            )
            for key, envelope in zip(shard_keys, envelopes):
                if envelope is not _ABSENT:
                    found[key] = envelope[_VALUE]
        return [found.get(key, default) for key in keys]

    # -- lifecycle ----------------------------------------------------------------

    def flush(self) -> None:
        for shard in self.shards:
            shard.flush()

    def close(self) -> None:
        if not self._closed:
            if self._executor is not None:
                self._executor.shutdown(wait=True)
                self._executor = None
            for shard in self.shards:
                shard.close()
            self._closed = True

    def describe(self) -> dict[str, Any]:
        description = super().describe()
        description["shard_workers"] = self.shard_workers
        description["shards"] = [
            {"engine": shard.engine_name, "records": sum(shard.describe()["tables"].values())}
            for shard in self.shards
        ]
        return description
