"""Consistent-hash storage engine with online rebalance.

:class:`~repro.storage.sharded_engine.ShardedEngine` routes keys by
``hash(key) mod N``, which welds the data to a fixed N: growing capacity
means remapping (and rewriting) almost every key.
:class:`ConsistentHashEngine` replaces the modulo with a **virtual-node hash
ring** (the classic elastic-membership construction used by partitioned
stores): every member contributes ``virtual_nodes`` points on a 64-bit ring,
and a key belongs to the first member point at or after its own hash.
Adding one member to N therefore steals only ~K/(N+1) keys, spread evenly
across the old members — the property :meth:`rebalance` turns into an
*online* operation.

Envelope sequence numbers, dual-owner lookups and per-member batch
transactions are inherited from
:class:`~repro.storage.sharded_engine.PartitionedEngine`, so the ring engine
passes the cross-engine equivalence suites unchanged.  Two departures from
the modulo-sharded engine:

* the logical per-key version rides *in* the envelope (field ``"n"``),
  because a migrated key lands on a child whose own version counter has
  never seen it;
* ``scan`` runs off a per-table **sequence index** (key -> seq dict plus an
  append-only seq-sorted entry list, rebuilt lazily from the children on
  open) instead of the sharded engine's k-way merge of per-child streams.
  Migration appends moved keys at the *end* of their new child's physical
  order, so child-local order stops implying global order the moment a ring
  has ever rebalanced; the index keeps scans exact anyway, makes
  ``scan_keys``/``count``/cursor resolution O(1)-per-record, and is immune
  to the both-owners window mid-migration (each key appears in it once, and
  values are fetched through the dual-owner bulk lookup).  The trade: O(keys)
  index memory per scanned table — values themselves are still fetched in
  bounded pages — which is the price of elastic membership.

Membership metadata
-------------------

Each child carries a reserved table ``__ring__`` (hidden from
``list_tables``) holding two replicated records:

* ``members`` — the membership **manifest**: an epoch counter, the member
  names, and the virtual-node count.  Written at first open and rewritten
  (epoch + 1) when a rebalance completes.  On reopen the manifest with the
  highest epoch is authoritative: children the manifest does not name are
  dropped (a drained ex-member file is harmless), and reopening *without* a
  manifest member raises — silently re-routing around a missing member would
  misplace every key it owns.
* ``journal`` — present only while a rebalance is in flight: the old and new
  member-name sets plus the epoch the transition started from.

The rebalance protocol
----------------------

``rebalance(add=..., remove=...)`` runs entirely online:

1. **Journal.** The transition ``{old, new, epoch}`` is written to every
   member (old and new) — one durable record per child.  From this moment
   writes route by the *new* ring, and every read that misses at a key's new
   owner falls back to its old owner (read-from-both-owners), so no window
   ever returns stale or missing data.
2. **Migration waves.** For every table and every old member, the keys whose
   new-ring owner differs are enumerated (paged ``scan_keys``, bounded
   memory) and moved in waves of ``rebalance_batch_size``: one
   ``put_many(..., if_absent=True)`` per destination (``if_absent`` so a
   concurrent fresh write at the destination is never clobbered by the stale
   copy), then the wave's source records are deleted.  Envelopes move
   verbatim, so sequence numbers — and therefore the global scan order — and
   logical versions are preserved exactly.
3. **Finalize.** The manifest is rewritten at epoch + 1 on every new member,
   the journal records are deleted, and removed members (now drained) are
   closed.

Every step is idempotent, and the waves re-derive their remaining work from
the data itself, so a crash in *any* window is resumable: constructing the
engine over the same children finds the journal, replays the remaining
waves (copies that already landed are ``if_absent`` no-ops; deletes that
already happened find nothing) and finalizes.  During the in-flight window a
key can exist at both owners under the same sequence number; the sequence
index lists it once and the dual-owner lookup returns the current owner's
(possibly fresher) copy.
"""

from __future__ import annotations

import bisect
from typing import Any, Callable, Iterable, Iterator, Mapping

from repro.exceptions import StorageError, TableNotFoundError, UnknownCursorError
from repro.storage.engine import StorageEngine
from repro.storage.records import Record
from repro.storage.sharded_engine import (
    _SEQ,
    _VALUE,
    _VER,
    PartitionedEngine,
    stable_hash64,
)

#: Reserved per-child table holding the replicated manifest and journal.
RING_META_TABLE = "__ring__"
_MANIFEST_KEY = "members"
_JOURNAL_KEY = "journal"

#: Event callback invoked before every durable step of a rebalance; tests
#: inject crashes by raising from it.
RebalanceObserver = Callable[[str], None]


class HashRing:
    """A virtual-node consistent-hash ring over member names.

    Deterministic: the ring depends only on the member-name set and the
    virtual-node count (never on insertion order or process state), so two
    processes — or one process before and after a reopen — always agree on
    every key's owner.
    """

    def __init__(self, names: Iterable[str], virtual_nodes: int = 64):
        self.names = sorted(set(names))
        if not self.names:
            raise ValueError("HashRing needs at least one member name")
        self.virtual_nodes = max(1, int(virtual_nodes))
        points: list[tuple[int, str]] = []
        for name in self.names:
            for vnode in range(self.virtual_nodes):
                points.append((stable_hash64(f"{name}#{vnode}"), name))
        # Ties (vanishingly rare) break on the name, keeping the ring a pure
        # function of its inputs.
        points.sort()
        self._points = points
        self._hashes = [point for point, _ in points]

    def owner(self, key: str) -> str:
        """Return the member name owning *key*."""
        index = bisect.bisect_right(self._hashes, stable_hash64(key))
        if index == len(self._points):
            index = 0  # wrap around the top of the ring
        return self._points[index][1]


class _SequenceIndex:
    """Per-table scan index: every live key's global sequence number.

    ``entries`` is an append-only ``(seq, key)`` list in ascending sequence
    order (fresh keys always take a new maximal sequence, so appends keep it
    sorted); deletions only drop the key from ``seq_by_key``, leaving a
    tombstone entry that iteration skips when its recorded sequence no
    longer matches.  A key deleted and re-put appends a fresh entry under
    its new sequence, exactly matching the "re-insert moves to the scan
    tail" semantics of every other engine.
    """

    __slots__ = ("seq_by_key", "entries")

    def __init__(self, seq_by_key: dict[str, int]):
        self.seq_by_key = seq_by_key
        self.entries: list[tuple[int, str]] = sorted(
            (seq, key) for key, seq in seq_by_key.items()
        )

    def note_write(self, key: str, seq: int) -> None:
        if self.seq_by_key.get(key) == seq:
            return  # overwrite in place: sequence (scan position) unchanged
        self.seq_by_key[key] = seq
        self.entries.append((seq, key))

    def note_delete(self, key: str) -> None:
        self.seq_by_key.pop(key, None)

    def live_after(self, min_seq: int) -> Iterator[tuple[int, str]]:
        """Yield live (seq, key) entries with seq > *min_seq*, in order."""
        start = bisect.bisect_left(self.entries, (min_seq + 1, ""))
        position = start
        while position < len(self.entries):
            seq, key = self.entries[position]
            position += 1
            if self.seq_by_key.get(key) == seq:
                yield seq, key


class ConsistentHashEngine(PartitionedEngine):
    """Virtual-node hash ring over *named* child engines, with online
    :meth:`rebalance`."""

    engine_name = "ring"
    _envelope_versions = True

    def __init__(
        self,
        children: Mapping[str, StorageEngine],
        virtual_nodes: int = 64,
        rebalance_batch_size: int = 256,
        shard_workers: int = 0,
    ):
        """Wrap *children* (name -> already-open engine).

        On construction the engine reads each child's ``__ring__`` table:

        * a pending rebalance **journal** is resumed to completion before
          the engine serves anything (the crash-recovery path);
        * otherwise the highest-epoch **manifest** is authoritative —
          ``virtual_nodes`` is adopted from it, children it does not name
          are closed and dropped, and a missing manifest member raises
          :class:`~repro.exceptions.StorageError`;
        * a fresh set of children (no manifest anywhere) writes the epoch-1
          manifest.

        Args:
            children: Named child engines.  Names are the ring identities:
                reopening must use the same names for the same data.
            virtual_nodes: Ring points per member (ignored in favour of the
                stored manifest when one exists).
            rebalance_batch_size: Keys migrated per copy/delete wave.
            shard_workers: Threads a ``put_many`` fans per-member child
                transactions out over (0 = serial), as on ``ShardedEngine``.
        """
        if not children:
            raise ValueError("ConsistentHashEngine needs at least one child engine")
        super().__init__(shard_workers=shard_workers)
        self.rebalance_batch_size = max(1, int(rebalance_batch_size))
        self.virtual_nodes = max(1, int(virtual_nodes))
        self._children: dict[str, StorageEngine] = dict(children)
        self._indexes: dict[str, _SequenceIndex] = {}
        self._epoch = 1
        # (old ring, retired name -> engine) while a migration is in flight.
        self._pending: tuple[HashRing, dict[str, StorageEngine]] | None = None
        for child in self._children.values():
            child.create_table(RING_META_TABLE)
        journal = self._find_journal()
        if journal is not None:
            self._resume_from_journal(journal)
        else:
            self._adopt_manifest()
        self._rebuild_membership()
        if journal is not None:
            self._run_migration(lambda event: None)
            self._finalize(lambda event: None)

    # -- membership bookkeeping ------------------------------------------------

    def _rebuild_membership(self) -> None:
        """Recompute the member list and ring after a membership change.

        ``self._members`` (what the merge-scan, table ops and sequence
        recovery iterate) covers the current children plus, mid-migration,
        the retired members still being drained.
        """
        members: list[StorageEngine] = []
        index: dict[str, int] = {}
        for name in sorted(self._children):
            index[name] = len(members)
            members.append(self._children[name])
        if self._pending is not None:
            for name, engine in sorted(self._pending[1].items()):
                index[name] = len(members)
                members.append(engine)
        self._members = members
        self._member_index = index
        self._ring = HashRing(self._children, self.virtual_nodes)

    def _find_journal(self) -> dict[str, Any] | None:
        for child in self._children.values():
            journal = child.get(RING_META_TABLE, _JOURNAL_KEY)
            if journal is not None:
                return journal
        return None

    def _adopt_manifest(self) -> None:
        manifest: dict[str, Any] | None = None
        for child in self._children.values():
            candidate = child.get(RING_META_TABLE, _MANIFEST_KEY)
            if candidate is not None and (
                manifest is None or candidate["epoch"] > manifest["epoch"]
            ):
                manifest = candidate
        if manifest is None:
            self._epoch = 1
            self._write_manifest(self._children)
            return
        self._epoch = manifest["epoch"]
        self.virtual_nodes = manifest["virtual_nodes"]
        names = set(manifest["members"])
        missing = sorted(names - set(self._children))
        if missing:
            raise StorageError(
                f"ring manifest (epoch {self._epoch}) names members "
                f"{missing} that were not provided; reopening without a "
                "member would misroute every key it owns"
            )
        # Children beyond the manifest are drained ex-members (e.g. a file
        # left on disk by a completed remove): authoritative membership wins.
        for name in sorted(set(self._children) - names):
            self._children.pop(name).close()

    def _write_manifest(self, children: Mapping[str, StorageEngine]) -> None:
        manifest = {
            "epoch": self._epoch,
            "members": sorted(children),
            "virtual_nodes": self.virtual_nodes,
        }
        for child in children.values():
            child.put(RING_META_TABLE, _MANIFEST_KEY, manifest)

    def _resume_from_journal(self, journal: dict[str, Any]) -> None:
        """Rebuild the in-flight transition recorded by *journal*.

        The caller must have provided every engine the journal names (old
        and new members alike): the drain needs the retired members' data
        and the fallback reads need their engines.
        """
        old_names = set(journal["old"])
        new_names = set(journal["new"])
        missing = sorted((old_names | new_names) - set(self._children))
        if missing:
            raise StorageError(
                f"ring journal records an unfinished rebalance involving "
                f"members {missing} that were not provided; supply them so "
                "the migration can resume"
            )
        self._epoch = journal["epoch"]
        self.virtual_nodes = journal["virtual_nodes"]
        retired = {
            name: self._children.pop(name) for name in sorted(old_names - new_names)
        }
        for name in sorted(set(self._children) - new_names):
            # Provided but in neither set: a drained ex-member from an even
            # earlier epoch.  Drop it, as _adopt_manifest would.
            self._children.pop(name).close()
        self._pending = (HashRing(old_names, self.virtual_nodes), retired)

    # -- routing with migration fallback --------------------------------------

    def _owner_index(self, key: str) -> int:
        return self._member_index[self._ring.owner(key)]

    def _old_owner(self, key: str) -> StorageEngine | None:
        """The key's owner under the outgoing ring, when a migration is in
        flight and it differs from the current owner."""
        if self._pending is None:
            return None
        old_ring, retired = self._pending
        name = old_ring.owner(key)
        if name == self._ring.owner(key):
            return None
        return retired.get(name) or self._children.get(name)

    def _require_table(self, table_name: str) -> None:
        # The reserved metadata table is invisible through the facade: its
        # records are not enveloped, so letting any data operation reach it
        # would crash on a missing sequence field (or corrupt the journal).
        if table_name == RING_META_TABLE:
            raise TableNotFoundError(table_name)
        super()._require_table(table_name)

    def _read_envelope_record(self, table_name: str, key: str) -> Record | None:
        if table_name == RING_META_TABLE:
            raise TableNotFoundError(table_name)
        record = self._owner(key).get_record(table_name, key)
        if record is None:
            old_owner = self._old_owner(key)
            if old_owner is not None:
                record = old_owner.get_record(table_name, key)
        return record

    def _bulk_lookup_envelopes(self, table_name: str, keys) -> dict[str, Any]:
        found = super()._bulk_lookup_envelopes(table_name, keys)
        if self._pending is not None:
            misses = [key for key in keys if key not in found]
            if misses:
                old_ring, retired = self._pending
                by_old: dict[str, list[str]] = {}
                for key in misses:
                    old_name = old_ring.owner(key)
                    if old_name != self._ring.owner(key):
                        by_old.setdefault(old_name, []).append(key)
                for old_name, old_keys in by_old.items():
                    engine = retired.get(old_name) or self._children[old_name]
                    sentinel = object()
                    for key, envelope in zip(
                        old_keys, engine.get_many(table_name, old_keys, default=sentinel)
                    ):
                        if envelope is not sentinel:
                            found[key] = envelope
        return found

    def delete(self, table_name: str, key: str) -> bool:
        if table_name == RING_META_TABLE:
            raise TableNotFoundError(table_name)
        deleted = self._owner(key).delete(table_name, key)
        old_owner = self._old_owner(key)
        if old_owner is not None:
            # Mid-migration both copies must go, or the stale one would be
            # "resurrected" by the fallback read (and by the drain wave).
            deleted = old_owner.delete(table_name, key) or deleted
        if deleted:
            index = self._indexes.get(table_name)
            if index is not None:
                index.note_delete(key)
        return deleted

    # -- the sequence index and the scans it serves ----------------------------

    def _index(self, table_name: str) -> _SequenceIndex:
        """The table's sequence index, built lazily from the children.

        One full pass per member per open; a key found at two owners (the
        mid-migration window) collapses naturally because both copies carry
        the same sequence number.  Writes and deletes afterwards maintain
        the index incrementally, and migration never touches it — moving a
        key changes neither its sequence nor its liveness.
        """
        index = self._indexes.get(table_name)
        if index is None:
            self._require_table(table_name)
            seq_by_key: dict[str, int] = {}
            for member in self._members:
                if not member.has_table(table_name):
                    continue
                cursor: str | None = None
                while True:
                    page = list(
                        member.scan(
                            table_name,
                            limit=self._merge_page_size,
                            start_after=cursor,
                        )
                    )
                    for record in page:
                        seq_by_key[record.key] = record.value[_SEQ]
                    if len(page) < self._merge_page_size:
                        break
                    cursor = page[-1].key
            index = _SequenceIndex(seq_by_key)
            self._indexes[table_name] = index
        return index

    def _note_write(self, table_name: str, key: str, envelope: dict[str, Any]) -> None:
        index = self._indexes.get(table_name)
        if index is not None:
            index.note_write(key, envelope[_SEQ])

    def _allocate_seq(self, table_name: str, count: int = 1) -> int:
        # The sharded recovery ("a member's last record holds its largest
        # sequence") assumes child physical order is sequence order, which a
        # past migration breaks; recover from the index instead, whose tail
        # entry is the true maximum even if its key was since deleted.
        next_seq = self._next_seq.get(table_name)
        if next_seq is None:
            entries = self._index(table_name).entries
            next_seq = entries[-1][0] + 1 if entries else 1
        self._next_seq[table_name] = next_seq + count
        return next_seq

    def _resolve_cursor(self, table_name: str, start_after: str | None) -> int:
        if start_after is None:
            return 0
        seq = self._index(table_name).seq_by_key.get(start_after)
        if seq is None:
            raise UnknownCursorError(table_name, start_after)
        return seq

    def scan(
        self, table_name: str, limit: int | None = None, start_after: str | None = None
    ) -> Iterator[Record]:
        if limit is not None and limit < 0:
            raise ValueError(f"scan limit must be non-negative, got {limit}")
        self._require_table(table_name)
        min_seq = self._resolve_cursor(table_name, start_after)
        if limit == 0:
            return
        remaining = limit

        def pages() -> Iterator[list[str]]:
            page: list[str] = []
            budget = remaining
            for _, key in self._index(table_name).live_after(min_seq):
                page.append(key)
                if budget is not None:
                    budget -= 1
                    if budget == 0:
                        break
                if len(page) == self._merge_page_size:
                    yield page
                    page = []
            if page:
                yield page

        for page_keys in pages():
            # The dual-owner bulk lookup keeps mid-migration reads exact.
            envelopes = self._bulk_lookup_envelopes(table_name, page_keys)
            for key in page_keys:
                envelope = envelopes.get(key)
                if envelope is not None:
                    yield Record(
                        key=key, value=envelope[_VALUE], version=envelope[_VER]
                    )

    def scan_keys(
        self, table_name: str, limit: int | None = None, start_after: str | None = None
    ) -> list[str]:
        if limit is not None and limit < 0:
            raise ValueError(f"scan limit must be non-negative, got {limit}")
        self._require_table(table_name)
        min_seq = self._resolve_cursor(table_name, start_after)
        if limit == 0:
            return []
        keys: list[str] = []
        for _, key in self._index(table_name).live_after(min_seq):
            keys.append(key)
            if limit is not None and len(keys) == limit:
                break
        return keys

    def count(self, table_name: str) -> int:
        self._require_table(table_name)
        return len(self._index(table_name).seq_by_key)

    # -- table management (hide the reserved table) ----------------------------

    def list_tables(self) -> list[str]:
        return [name for name in super().list_tables() if name != RING_META_TABLE]

    def drop_table(self, table_name: str) -> None:
        if table_name == RING_META_TABLE:
            raise StorageError(f"{RING_META_TABLE!r} is reserved for ring metadata")
        super().drop_table(table_name)
        self._indexes.pop(table_name, None)

    # -- rebalance -------------------------------------------------------------

    def rebalance(
        self,
        add: Mapping[str, StorageEngine] | None = None,
        remove: Iterable[str] | None = None,
        on_event: RebalanceObserver | None = None,
    ) -> dict[str, Any]:
        """Change the ring membership online, migrating only displaced keys.

        Args:
            add: New members (name -> already-open engine) to join the ring.
            remove: Names of current members to drain and retire; their
                engines are closed once empty.
            on_event: Test hook called with a label *before* every durable
                step (journal writes, copy waves, delete waves, manifest
                writes, journal clears).  Raising from it models a crash in
                that exact window; reconstructing the engine over the same
                children resumes and completes the migration.

        Returns:
            A report: ``keys_moved``, ``tables`` (per-table move counts),
            ``waves``, ``added``, ``removed``, ``epoch``.

        Reads and writes issued from ``on_event`` (or, more generally,
        interleaved with the waves by a single-threaded caller) see a
        consistent view throughout: writes route by the new ring, reads
        fall back to the old owner, scans deduplicate the one window where
        both copies exist.
        """
        add = dict(add or {})
        remove = sorted(set(remove or []))
        notify = on_event or (lambda event: None)

        if self._pending is not None:
            raise StorageError(
                "a rebalance is already in flight; reconstruct the engine "
                "over the same children to resume it before starting another"
            )
        for name in add:
            if name in self._children:
                raise StorageError(f"ring member {name!r} already exists")
        for name in remove:
            if name not in self._children:
                raise StorageError(f"cannot remove unknown ring member {name!r}")
            if name in add:
                raise StorageError(f"cannot both add and remove member {name!r}")
        if not add and not remove:
            raise StorageError("rebalance needs at least one member to add or remove")
        survivors = set(self._children) - set(remove) | set(add)
        if not survivors:
            raise StorageError("rebalance would leave the ring with no members")

        old_names = sorted(self._children)
        new_names = sorted(survivors)

        # Prepare joiners: the reserved table plus every existing data table
        # must exist before any copy or scan touches them.
        tables = self.list_tables()
        for engine in add.values():
            engine.create_table(RING_META_TABLE)
            for table_name in tables:
                engine.create_table(table_name)

        journal = {
            "epoch": self._epoch,
            "old": old_names,
            "new": new_names,
            "virtual_nodes": self.virtual_nodes,
        }
        # The journal must be durable on every member *before* any write
        # routes by the new ring: if a journal write fails here, the live
        # engine is still entirely on the old membership (a reopen that
        # finds a partial journal simply rolls the transition forward).
        # Flipping routing first would let a caller who caught the failure
        # keep writing to a joiner that a journal-less reopen then drops.
        for name in sorted(set(old_names) | set(new_names)):
            notify(f"journal:{name}")
            engine = self._children.get(name) or add[name]
            engine.put(RING_META_TABLE, _JOURNAL_KEY, journal)

        # From here writes route by the new ring; reads fall back via
        # self._pending until the drain completes.
        retired = {name: self._children[name] for name in remove}
        for name in remove:
            self._children.pop(name)
        self._children.update(add)
        self._pending = (HashRing(old_names, self.virtual_nodes), retired)
        self._rebuild_membership()

        report = self._run_migration(notify)
        self._finalize(notify)
        report.update(added=sorted(add), removed=remove, epoch=self._epoch)
        return report

    def _run_migration(self, notify: RebalanceObserver) -> dict[str, Any]:
        """Drain every key whose ring ownership changed, in batched waves.

        The work list is re-derived from the data (keys still sitting at a
        member that no longer owns them), which is what makes a resumed
        migration converge without progress cursors: completed waves left
        nothing behind to enumerate.
        """
        old_ring, retired = self._pending
        sources = dict(retired)
        for name in old_ring.names:
            if name in self._children:
                sources[name] = self._children[name]

        keys_moved = 0
        waves = 0
        per_table: dict[str, int] = {}
        for table_name in self.list_tables():
            moved_in_table = 0
            for source_name in sorted(sources):
                source = sources[source_name]
                if not source.has_table(table_name):
                    continue
                displaced = self._displaced_keys(source, source_name, table_name)
                for start in range(0, len(displaced), self.rebalance_batch_size):
                    wave = displaced[start : start + self.rebalance_batch_size]
                    waves += 1
                    moved_in_table += self._migrate_wave(
                        notify, table_name, source_name, source, wave
                    )
            if moved_in_table:
                per_table[table_name] = moved_in_table
            keys_moved += moved_in_table
        return {"keys_moved": keys_moved, "waves": waves, "tables": per_table}

    def _displaced_keys(
        self, source: StorageEngine, source_name: str, table_name: str
    ) -> list[str]:
        """Keys at *source* whose new-ring owner is some other member."""
        displaced: list[str] = []
        cursor: str | None = None
        while True:
            page = source.scan_keys(
                table_name, limit=self._merge_page_size, start_after=cursor
            )
            displaced.extend(
                key for key in page if self._ring.owner(key) != source_name
            )
            if len(page) < self._merge_page_size:
                return displaced
            cursor = page[-1]

    def _migrate_wave(
        self,
        notify: RebalanceObserver,
        table_name: str,
        source_name: str,
        source: StorageEngine,
        wave: list[str],
    ) -> int:
        """Copy one wave to its destinations, then delete it from the source.

        ``if_absent=True`` on the copy keeps two invariants: a replayed wave
        (crash between copy and delete) is a no-op, and a *fresh* write that
        landed at the destination during the migration is never clobbered by
        the stale source copy.
        """
        sentinel = object()
        envelopes = source.get_many(table_name, wave, default=sentinel)
        by_destination: dict[str, list[tuple[str, Any]]] = {}
        present: list[str] = []
        for key, envelope in zip(wave, envelopes):
            if envelope is sentinel:
                continue  # deleted (or already drained) since enumeration
            present.append(key)
            by_destination.setdefault(self._ring.owner(key), []).append((key, envelope))
        for destination_name in sorted(by_destination):
            notify(f"copy:{table_name}:{source_name}->{destination_name}")
            self._children[destination_name].put_many(
                table_name, by_destination[destination_name], if_absent=True
            )
        if present:
            notify(f"drain:{table_name}:{source_name}")
            for key in present:
                source.delete(table_name, key)
        return len(present)

    def _finalize(self, notify: RebalanceObserver) -> None:
        """Commit the new membership: manifest at epoch+1, journals cleared,
        retired members closed.

        Order matters for crash windows: the current members' journals are
        cleared only after every one of them holds the new manifest, and the
        retired members' journals go last — so any crash mid-finalize leaves
        at least one journal copy alive until the rest of the state is
        consistent, and a reopen (with or without the drained ex-members)
        converges.
        """
        _, retired = self._pending
        self._epoch += 1
        manifest = {
            "epoch": self._epoch,
            "members": sorted(self._children),
            "virtual_nodes": self.virtual_nodes,
        }
        for name in sorted(self._children):
            notify(f"manifest:{name}")
            self._children[name].put(RING_META_TABLE, _MANIFEST_KEY, manifest)
        for name in sorted(self._children):
            notify(f"clear:{name}")
            self._children[name].delete(RING_META_TABLE, _JOURNAL_KEY)
        for name in sorted(retired):
            notify(f"clear:{name}")
            retired[name].delete(RING_META_TABLE, _JOURNAL_KEY)
        self._pending = None
        self._rebuild_membership()
        for engine in retired.values():
            engine.close()

    # -- introspection ---------------------------------------------------------

    @property
    def member_names(self) -> list[str]:
        """Names of the current ring members, sorted."""
        return sorted(self._children)

    def describe(self) -> dict[str, Any]:
        description = super().describe()
        description["virtual_nodes"] = self.virtual_nodes
        description["epoch"] = self._epoch
        description["members"] = {
            name: {
                "engine": child.engine_name,
                "records": sum(
                    count
                    for table, count in child.describe()["tables"].items()
                    if table != RING_META_TABLE
                ),
            }
            for name, child in sorted(self._children.items())
        }
        return description
