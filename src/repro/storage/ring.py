"""Consistent-hash storage engine with online rebalance and replication.

:class:`~repro.storage.sharded_engine.ShardedEngine` routes keys by
``hash(key) mod N``, which welds the data to a fixed N: growing capacity
means remapping (and rewriting) almost every key.
:class:`ConsistentHashEngine` replaces the modulo with a **virtual-node hash
ring** (the classic elastic-membership construction used by partitioned
stores): every member contributes ``virtual_nodes`` points on a 64-bit ring,
and a key belongs to the first member point at or after its own hash.
Adding one member to N therefore steals only ~K/(N+1) keys, spread evenly
across the old members — the property :meth:`rebalance` turns into an
*online* operation.

Envelope sequence numbers, dual-owner lookups and per-member batch
transactions are inherited from
:class:`~repro.storage.sharded_engine.PartitionedEngine`, so the ring engine
passes the cross-engine equivalence suites unchanged.  Two departures from
the modulo-sharded engine:

* the logical per-key version rides *in* the envelope (field ``"n"``),
  because a migrated key lands on a child whose own version counter has
  never seen it;
* ``scan`` runs off a per-table **sequence index** (key -> seq dict plus an
  append-only seq-sorted entry list, rebuilt lazily from the children on
  open) instead of the sharded engine's k-way merge of per-child streams.
  Migration appends moved keys at the *end* of their new child's physical
  order, so child-local order stops implying global order the moment a ring
  has ever rebalanced; the index keeps scans exact anyway, makes
  ``scan_keys``/``count``/cursor resolution O(1)-per-record, and is immune
  to the both-owners window mid-migration (each key appears in it once, and
  values are fetched through the dual-owner bulk lookup).  The trade: O(keys)
  index memory per scanned table — values themselves are still fetched in
  bounded pages — which is the price of elastic membership.

Replication (``replicas`` > 1)
------------------------------

With ``replicas=R`` every key is placed on its **R distinct successor
members** walking clockwise from its hash (:meth:`HashRing.successors`).
The placement rule is a pure function of the membership *names* — including
members currently down — so a member outage never silently re-routes keys.

* **Writes are write-all**: every ``put``/``put_many``/``delete`` applies to
  every *live* member of the key's replica set, in one pass.
* **Reads are read-any-fresh**: point and bulk lookups consult every live
  replica and return the copy with the highest envelope logical version
  (field ``"n"``), so a torn multi-replica write (a crash between two
  replica puts) still reads deterministically.  A torn multi-replica
  *delete* can conversely resurrect the surviving copy — deletes carry no
  tombstone; :meth:`repair` reconciles divergent replicas.
* **Degraded mode**: opening with up to R-1 manifest members missing warns
  (:class:`DegradedRingWarning`) and serves — every key keeps at least one
  live replica.  At runtime :meth:`mark_down` retires a member in place
  (the SIGKILL model: the engine object is abandoned, not closed) under the
  same R-1 bound, and reads/scans/writes transparently fail over to the
  surviving replicas.
* **Re-replication**: :meth:`repair` copies the freshest envelope of every
  key to each live member of its replica set (healing under-replication
  from degraded windows) and drops stray copies from members outside it.
  ``rebalance`` runs the same pass automatically after its migration waves
  whenever ``replicas`` > 1, so membership changes re-establish the
  R-successor invariant even when they ran degraded.
* **Returning members**: while any member is down, the live members carry a
  replicated *down-record* naming it.  Reopening with a member another
  member's down-record accuses triggers an automatic sync before it serves:
  stale tables are dropped, missing tables created, zombie keys (deleted
  while it was away) removed, and every key it should hold copied at the
  trusted members' freshest version.

Membership metadata
-------------------

Each child carries a reserved table ``__ring__`` (hidden from
``list_tables``) holding the replicated records:

* ``members`` — the membership **manifest**: an epoch counter, the member
  names, the virtual-node count and the replica count.  Written at first
  open and rewritten (epoch + 1) when a rebalance completes.  On reopen the
  manifest with the highest epoch is authoritative: children the manifest
  does not name are dropped (a drained ex-member file is harmless), and
  reopening with more than ``replicas - 1`` manifest members missing raises
  — silently re-routing around them would misplace or lose keys.
* ``journal`` — present only while a rebalance is in flight: the old and new
  member-name sets plus the epoch the transition started from.  A journal
  older than the freshest manifest (a relic on a member that was down when
  the transition finalized) is recognised as stale and discarded.
* ``down`` — present when ``replicas`` > 1: the names of the members
  currently marked down, so a returning member can be told apart from a
  healthy one at the next open.
* ``idx::<table>`` — a **sequence-index snapshot** per scanned table,
  written on :meth:`flush`/:meth:`close` whenever the in-memory index
  changed: the live ``(key, seq)`` pairs plus, per member, the record count
  and physical tail key observed at snapshot time.  On reopen
  :meth:`_index` loads the snapshot and replays only the records each
  member appended past its recorded tail — O(new writes) instead of the
  O(K) full rebuild — falling back to the rebuild whenever validation
  cannot prove the snapshot current: a different epoch (a rebalance
  happened), a different live-member set (degraded), a vanished tail key,
  or a member count that the snapshot count plus the replayed records does
  not explain (a delete landed after the snapshot).  Stale snapshots are
  therefore never *trusted*, only either replayed to the exact rebuilt
  index or discarded.

The rebalance protocol
----------------------

``rebalance(add=..., remove=...)`` runs entirely online:

1. **Journal.** The transition ``{old, new, epoch}`` is written to every
   live member (old and new) — one durable record per child.  From this
   moment writes route by the *new* ring, and every read that misses at a
   key's new replicas falls back to its old ones (read-from-both-owners),
   so no window ever returns stale or missing data.
2. **Migration waves.** For every table and every old member, the keys whose
   new replica set no longer includes that member are enumerated (paged
   ``scan_keys``, bounded memory) and moved in waves of
   ``rebalance_batch_size``: one ``put_many(..., if_absent=True)`` per live
   destination replica (``if_absent`` so a concurrent fresh write at the
   destination is never clobbered by the stale copy), then the wave's
   source records are deleted.  Envelopes move verbatim, so sequence
   numbers — and therefore the global scan order — and logical versions are
   preserved exactly.
3. **Repair** (``replicas`` > 1 only): the re-replication pass above, so
   under-replication from members that were down during the waves is healed
   before the transition commits.
4. **Finalize.** The manifest is rewritten at epoch + 1 on every live new
   member, the journal records are deleted, and removed members (now
   drained) are closed.

Every step is idempotent, and the waves re-derive their remaining work from
the data itself, so a crash in *any* window is resumable: constructing the
engine over the same children finds the journal, replays the remaining
waves (copies that already landed are ``if_absent`` no-ops; deletes that
already happened find nothing) and finalizes.  During the in-flight window a
key can exist at both owners under the same sequence number; the sequence
index lists it once and the dual-owner lookup returns the current owner's
(possibly fresher) copy.
"""

from __future__ import annotations

import bisect
import warnings
from typing import Any, Callable, Iterable, Iterator, Mapping

from repro.exceptions import (
    ConfigurationError,
    StorageError,
    TableNotFoundError,
    UnknownCursorError,
)
from repro.storage.engine import StorageEngine
from repro.storage.records import Record
from repro.storage.sharded_engine import (
    _SEQ,
    _VALUE,
    _VER,
    PartitionedEngine,
    stable_hash64,
)

#: Reserved per-child table holding the replicated manifest and journal.
RING_META_TABLE = "__ring__"
_MANIFEST_KEY = "members"
_JOURNAL_KEY = "journal"
_DOWN_KEY = "down"
#: Per-table sequence-index snapshot records: ``idx::<table>``.
_INDEX_KEY_PREFIX = "idx::"

#: Event callback invoked before every durable step of a rebalance; tests
#: inject crashes by raising from it.
RebalanceObserver = Callable[[str], None]


class DegradedRingWarning(UserWarning):
    """Emitted when a replicated ring opens or serves with members missing.

    The ring still answers every read and write from the surviving
    replicas; run :meth:`ConsistentHashEngine.repair` (or a ``rebalance``)
    to re-establish full replication.
    """


class HashRing:
    """A virtual-node consistent-hash ring over member names.

    Deterministic: the ring depends only on the member-name set and the
    virtual-node count (never on insertion order or process state), so two
    processes — or one process before and after a reopen — always agree on
    every key's owner.
    """

    def __init__(self, names: Iterable[str], virtual_nodes: int = 64):
        self.names = sorted(set(names))
        if not self.names:
            raise ValueError("HashRing needs at least one member name")
        self.virtual_nodes = max(1, int(virtual_nodes))
        points: list[tuple[int, str]] = []
        for name in self.names:
            for vnode in range(self.virtual_nodes):
                points.append((stable_hash64(f"{name}#{vnode}"), name))
        # Ties (vanishingly rare) break on the name, keeping the ring a pure
        # function of its inputs.
        points.sort()
        self._points = points
        self._hashes = [point for point, _ in points]

    def owner(self, key: str) -> str:
        """Return the member name owning *key*."""
        index = bisect.bisect_right(self._hashes, stable_hash64(key))
        if index == len(self._points):
            index = 0  # wrap around the top of the ring
        return self._points[index][1]

    def successors(self, key: str, count: int = 1) -> list[str]:
        """Return *key*'s *count* **distinct** successor members, in ring order.

        The first successor is exactly :meth:`owner`; walking clockwise past
        further virtual points collects the next distinct member names.  The
        replica placement rule of :class:`ConsistentHashEngine` — and, like
        :meth:`owner`, a pure function of the member-name set.

        Raises:
            ConfigurationError: When *count* exceeds the member count — that
                would silently under-replicate, which must never happen.
        """
        if count < 1:
            raise ConfigurationError(f"successor count must be >= 1, got {count}")
        if count > len(self.names):
            raise ConfigurationError(
                f"cannot place {count} replicas across "
                f"{len(self.names)} ring member(s)"
            )
        start = bisect.bisect_right(self._hashes, stable_hash64(key))
        total = len(self._points)
        result: list[str] = []
        seen: set[str] = set()
        for step in range(total):
            name = self._points[(start + step) % total][1]
            if name not in seen:
                seen.add(name)
                result.append(name)
                if len(result) == count:
                    break
        return result


class _SequenceIndex:
    """Per-table scan index: every live key's global sequence number.

    ``entries`` is an append-only ``(seq, key)`` list in ascending sequence
    order (fresh keys always take a new maximal sequence, so appends keep it
    sorted); deletions only drop the key from ``seq_by_key``, leaving a
    tombstone entry that iteration skips when its recorded sequence no
    longer matches.  A key deleted and re-put appends a fresh entry under
    its new sequence, exactly matching the "re-insert moves to the scan
    tail" semantics of every other engine.
    """

    __slots__ = ("seq_by_key", "entries")

    def __init__(self, seq_by_key: dict[str, int]):
        self.seq_by_key = seq_by_key
        self.entries: list[tuple[int, str]] = sorted(
            (seq, key) for key, seq in seq_by_key.items()
        )

    def note_write(self, key: str, seq: int) -> None:
        if self.seq_by_key.get(key) == seq:
            return  # overwrite in place: sequence (scan position) unchanged
        self.seq_by_key[key] = seq
        self.entries.append((seq, key))

    def note_delete(self, key: str) -> None:
        self.seq_by_key.pop(key, None)

    def live_after(self, min_seq: int) -> Iterator[tuple[int, str]]:
        """Yield live (seq, key) entries with seq > *min_seq*, in order."""
        start = bisect.bisect_left(self.entries, (min_seq + 1, ""))
        position = start
        while position < len(self.entries):
            seq, key = self.entries[position]
            position += 1
            if self.seq_by_key.get(key) == seq:
                yield seq, key


class ConsistentHashEngine(PartitionedEngine):
    """Virtual-node hash ring over *named* child engines, with online
    :meth:`rebalance` and R-successor replication."""

    engine_name = "ring"
    _envelope_versions = True

    def __init__(
        self,
        children: Mapping[str, StorageEngine],
        virtual_nodes: int = 64,
        replicas: int = 1,
        rebalance_batch_size: int = 256,
        shard_workers: int = 0,
    ):
        """Wrap *children* (name -> already-open engine).

        On construction the engine reads each child's ``__ring__`` table:

        * a pending rebalance **journal** is resumed to completion before
          the engine serves anything (the crash-recovery path);
        * otherwise the highest-epoch **manifest** is authoritative —
          ``virtual_nodes`` and ``replicas`` are adopted from it, children
          it does not name are closed and dropped, and missing manifest
          members raise :class:`~repro.exceptions.StorageError` unless the
          replica count tolerates them (at most ``replicas - 1`` missing,
          which opens **degraded** with a :class:`DegradedRingWarning`);
        * a member that a surviving down-record accuses of having been
          down is synced from the trusted members before it serves;
        * a fresh set of children (no manifest anywhere) writes the epoch-1
          manifest.

        Args:
            children: Named child engines.  Names are the ring identities:
                reopening must use the same names for the same data.
            virtual_nodes: Ring points per member (ignored in favour of the
                stored manifest when one exists).
            replicas: Copies kept of every key — each key lands on its
                ``replicas`` distinct ring successors.  Like
                ``virtual_nodes``, the stored manifest wins on reopen.
                Must not exceed the member count.
            rebalance_batch_size: Keys migrated per copy/delete wave.
            shard_workers: Threads a ``put_many`` fans per-member child
                transactions out over (0 = serial), as on ``ShardedEngine``.
        """
        if not children:
            raise ValueError("ConsistentHashEngine needs at least one child engine")
        super().__init__(shard_workers=shard_workers)
        self.rebalance_batch_size = max(1, int(rebalance_batch_size))
        self.virtual_nodes = max(1, int(virtual_nodes))
        self.replicas = int(replicas)
        if self.replicas < 1:
            raise ConfigurationError(f"replicas must be >= 1, got {replicas}")
        self._children: dict[str, StorageEngine] = dict(children)
        #: Authoritative member names, including members currently down.
        #: The ring is built over this set, so placement never shifts when a
        #: member dies; ``self._children`` holds only the live engines.
        self._membership: set[str] = set(self._children)
        self._indexes: dict[str, _SequenceIndex] = {}
        #: Tables whose in-memory index moved past the durable snapshot.
        self._index_dirty: set[str] = set()
        self._epoch = 1
        # (old ring, retired name -> engine) while a migration is in flight.
        self._pending: tuple[HashRing, dict[str, StorageEngine]] | None = None
        for child in self._children.values():
            child.create_table(RING_META_TABLE)
        journal = self._find_journal()
        if journal is not None:
            self._resume_from_journal(journal)
        else:
            self._adopt_manifest()
        if self.replicas > len(self._membership):
            raise ConfigurationError(
                f"cannot keep {self.replicas} replicas on a ring of "
                f"{len(self._membership)} member(s)"
            )
        self._rebuild_membership()
        self._adopt_member_codec()
        returning = self._returning_members()
        if returning:
            quarantined = {name: self._children.pop(name) for name in returning}
            if len(self._membership - set(self._children)) > self.replicas - 1:
                raise StorageError(
                    f"cannot open: members {sorted(self._membership - set(self._children))} "
                    f"are missing or returning from an outage at once, but "
                    f"replicas={self.replicas} tolerates at most "
                    f"{self.replicas - 1} — some keys would have no trusted copy"
                )
            self._rebuild_membership()
            for name in sorted(quarantined):
                self._sync_member(name, quarantined[name])
                self._children[name] = quarantined[name]
            self._rebuild_membership()
        self._write_down_records()
        if journal is not None:
            self._run_migration(lambda event: None)
            if self.replicas > 1:
                self._repair_pass(lambda event: None)
            self._finalize(lambda event: None)

    # -- membership bookkeeping ------------------------------------------------

    def _rebuild_membership(self) -> None:
        """Recompute the member list and ring after a membership change.

        ``self._members`` (what the merge-scan, table ops and sequence
        recovery iterate) covers the current *live* children plus,
        mid-migration, the retired members still being drained.  The ring
        itself is built over the authoritative ``self._membership`` — down
        members keep their ring points, so a dead member never silently
        re-routes the keys it owns.
        """
        members: list[StorageEngine] = []
        index: dict[str, int] = {}
        for name in sorted(self._children):
            index[name] = len(members)
            members.append(self._children[name])
        if self._pending is not None:
            for name, engine in sorted(self._pending[1].items()):
                index[name] = len(members)
                members.append(engine)
        self._members = members
        self._member_index = index
        self._ring = HashRing(self._membership, self.virtual_nodes)

    def _down_names(self) -> list[str]:
        """Names of the authoritative members with no live engine, sorted."""
        return sorted(self._membership - set(self._children))

    def _find_journal(self) -> dict[str, Any] | None:
        """The in-flight rebalance journal, if any child holds a *current* one.

        A journal left on a member that was down when the transition
        finalized is recognisable: the freshest manifest's epoch has moved
        past the epoch the journal recorded.  Such relics are deleted rather
        than resumed — replaying a finished transition against a newer
        membership would corrupt placement.
        """
        journal: dict[str, Any] | None = None
        manifest_epoch = 0
        for child in self._children.values():
            candidate = child.get(RING_META_TABLE, _JOURNAL_KEY)
            if candidate is not None and (
                journal is None or candidate["epoch"] > journal["epoch"]
            ):
                journal = candidate
            manifest = child.get(RING_META_TABLE, _MANIFEST_KEY)
            if manifest is not None:
                manifest_epoch = max(manifest_epoch, manifest["epoch"])
        if journal is not None and manifest_epoch > journal["epoch"]:
            for child in self._children.values():
                child.delete(RING_META_TABLE, _JOURNAL_KEY)
            return None
        return journal

    def _adopt_manifest(self) -> None:
        manifest: dict[str, Any] | None = None
        for child in self._children.values():
            candidate = child.get(RING_META_TABLE, _MANIFEST_KEY)
            if candidate is not None and (
                manifest is None or candidate["epoch"] > manifest["epoch"]
            ):
                manifest = candidate
        if manifest is None:
            self._epoch = 1
            self._membership = set(self._children)
            if self.replicas > len(self._membership):
                raise ConfigurationError(
                    f"cannot keep {self.replicas} replicas on a ring of "
                    f"{len(self._membership)} member(s)"
                )
            self._write_manifest(self._children)
            return
        self._epoch = manifest["epoch"]
        self.virtual_nodes = manifest["virtual_nodes"]
        self.replicas = int(manifest.get("replicas", 1))
        names = set(manifest["members"])
        missing = sorted(names - set(self._children))
        if len(missing) > self.replicas - 1:
            raise StorageError(
                f"ring manifest (epoch {self._epoch}) names members "
                f"{missing} that were not provided; with replicas="
                f"{self.replicas} at most {self.replicas - 1} may be absent, "
                "or keys would be misrouted or lost"
            )
        if missing:
            warnings.warn(
                DegradedRingWarning(
                    f"opening ring degraded: members {missing} are missing; "
                    f"serving from the surviving replicas (replicas="
                    f"{self.replicas}); run repair() to re-replicate"
                ),
                stacklevel=3,
            )
        self._membership = names
        # Children beyond the manifest are drained ex-members (e.g. a file
        # left on disk by a completed remove): authoritative membership wins.
        for name in sorted(set(self._children) - names):
            self._children.pop(name).close()

    def _write_manifest(self, children: Mapping[str, StorageEngine]) -> None:
        manifest = {
            "epoch": self._epoch,
            "members": sorted(self._membership),
            "virtual_nodes": self.virtual_nodes,
            "replicas": self.replicas,
        }
        for child in children.values():
            child.put(RING_META_TABLE, _MANIFEST_KEY, manifest)

    def _resume_from_journal(self, journal: dict[str, Any]) -> None:
        """Rebuild the in-flight transition recorded by *journal*.

        The caller must provide every engine the journal names (old and new
        members alike) — the drain needs the retired members' data and the
        fallback reads need their engines — except that, with replication,
        up to ``replicas - 1`` of them may be missing (every key keeps a
        surviving copy; the resumed migration plus the repair pass
        re-establish placement from those).
        """
        old_names = set(journal["old"])
        new_names = set(journal["new"])
        self._epoch = journal["epoch"]
        self.virtual_nodes = journal["virtual_nodes"]
        self.replicas = int(journal.get("replicas", 1))
        missing = sorted((old_names | new_names) - set(self._children))
        if len(missing) > self.replicas - 1:
            raise StorageError(
                f"ring journal records an unfinished rebalance involving "
                f"members {missing} that were not provided; with replicas="
                f"{self.replicas} at most {self.replicas - 1} may be absent "
                "— supply the rest so the migration can resume"
            )
        if missing:
            warnings.warn(
                DegradedRingWarning(
                    f"resuming an unfinished rebalance degraded: members "
                    f"{missing} are missing (replicas={self.replicas})"
                ),
                stacklevel=3,
            )
        retired = {
            name: self._children.pop(name)
            for name in sorted(old_names - new_names)
            if name in self._children
        }
        for name in sorted(set(self._children) - new_names):
            # Provided but in neither set: a drained ex-member from an even
            # earlier epoch.  Drop it, as _adopt_manifest would.
            self._children.pop(name).close()
        self._membership = new_names
        self._pending = (HashRing(old_names, self.virtual_nodes), retired)

    # -- down members and returning-member sync --------------------------------

    def _returning_members(self) -> list[str]:
        """Provided members that a surviving down-record accuses.

        A member that was marked down and is now being reopened alongside
        the others missed writes (and deletes) while it was away; it must be
        synced from the trusted members before it may serve reads.
        """
        if self.replicas == 1:
            return []
        accused: set[str] = set()
        for child in self._children.values():
            record = child.get(RING_META_TABLE, _DOWN_KEY)
            if record:
                accused.update(record.get("names", []))
        return sorted(accused & set(self._children) & self._membership)

    def _write_down_records(self) -> None:
        """Replicate the current down set to every live member (R > 1 only)."""
        if self.replicas == 1:
            return
        record = {"names": self._down_names()}
        for child in self._children.values():
            child.put(RING_META_TABLE, _DOWN_KEY, record)

    def _sync_member(self, name: str, engine: StorageEngine) -> None:
        """Bring a returning member in line with the trusted live members.

        Called with *name* still outside ``self._children`` (quarantined),
        so the live children are exactly the trusted set.  Every key the
        member should hold (under the *current* ring — a resumed migration's
        waves and repair pass fill in the rest) is copied at the trusted
        freshest version; keys it holds that the trusted members deleted
        (zombies) or that it no longer owns are removed; stale tables are
        dropped and missing ones created.  Finally the trusted metadata
        records are mirrored verbatim, erasing any relic manifest/journal.
        """
        engine.create_table(RING_META_TABLE)
        trusted_tables = self.list_tables()
        for table_name in engine.list_tables():
            if table_name != RING_META_TABLE and table_name not in trusted_tables:
                engine.drop_table(table_name)
        for table_name in trusted_tables:
            engine.create_table(table_name)
            wanted: dict[str, Any] = {}
            for peer in self._members:
                if not peer.has_table(table_name):
                    continue
                cursor: str | None = None
                while True:
                    page = list(
                        peer.scan(
                            table_name,
                            limit=self._merge_page_size,
                            start_after=cursor,
                        )
                    )
                    for record in page:
                        if name not in self._replica_names(record.key):
                            continue
                        best = wanted.get(record.key)
                        if best is None or record.value[_VER] > best[_VER]:
                            wanted[record.key] = record.value
                    if len(page) < self._merge_page_size:
                        break
                    cursor = page[-1].key
            stale: list[str] = []
            current_versions: dict[str, int] = {}
            cursor = None
            while True:
                page = list(
                    engine.scan(
                        table_name, limit=self._merge_page_size, start_after=cursor
                    )
                )
                for record in page:
                    if record.key in wanted:
                        current_versions[record.key] = record.value[_VER]
                    else:
                        stale.append(record.key)
                if len(page) < self._merge_page_size:
                    break
                cursor = page[-1].key
            engine.delete_many(table_name, stale, defer_commit=True)
            to_copy = [
                (key, envelope)
                for key, envelope in wanted.items()
                if current_versions.get(key) != envelope[_VER]
            ]
            for start in range(0, len(to_copy), self.rebalance_batch_size):
                engine.put_many(
                    table_name,
                    to_copy[start : start + self.rebalance_batch_size],
                    defer_commit=True,
                )
        # One durability barrier for the whole sync — it is idempotent, so a
        # crash mid-sync just reruns it at the next open.
        engine.commit_group()
        # Mirror the trusted metadata verbatim — manifest, journal, down set
        # *and* index snapshots — and erase relic records the trusted members
        # no longer hold (a stale journal, or a snapshot of a dropped table).
        trusted = self._children[sorted(self._children)[0]]
        trusted_meta = {
            record.key: record.value for record in trusted.scan(RING_META_TABLE)
        }
        for meta_key in [record.key for record in engine.scan(RING_META_TABLE)]:
            if meta_key not in trusted_meta:
                engine.delete(RING_META_TABLE, meta_key)
        for meta_key in sorted(trusted_meta):
            engine.put(RING_META_TABLE, meta_key, trusted_meta[meta_key])

    def mark_down(self, name: str) -> None:
        """Retire the live member *name* in place (the member-kill model).

        The member keeps its ring points — placement does not shift — but no
        further read or write touches it: every key it holds fails over to
        its surviving replicas.  Its engine object is **abandoned, not
        closed** (a SIGKILLed process gets no clean shutdown either); the
        caller owns whatever is left of it.  The down set is persisted to
        the survivors so a later reopen recognises the member as returning
        and syncs it before it serves.

        Raises:
            StorageError: When *name* is not a live member, or when marking
                it down would exceed the ``replicas - 1`` members the ring
                can lose without orphaning keys.
        """
        if name not in self._children:
            raise StorageError(f"unknown or already-down ring member {name!r}")
        down_after = len(self._down_names()) + 1
        if down_after > self.replicas - 1:
            raise StorageError(
                f"cannot mark ring member {name!r} down: replicas="
                f"{self.replicas} tolerates at most {self.replicas - 1} "
                f"missing member(s) and {down_after} would be missing"
            )
        self._children.pop(name)
        self._rebuild_membership()
        self._write_down_records()

    # -- routing with replication and migration fallback -----------------------

    def _replica_names(self, key: str) -> list[str]:
        """The key's full replica set (live or not), in ring order."""
        if self.replicas == 1:
            return [self._ring.owner(key)]
        return self._ring.successors(key, self.replicas)

    def _owner_index(self, key: str) -> int:
        for name in self._replica_names(key):
            if name in self._children:
                return self._member_index[name]
        raise StorageError(
            f"no live replica available for key {key!r}"
        )  # pragma: no cover — the down-count bound keeps one replica live

    def _write_indexes(self, key: str) -> list[int]:
        indexes = [
            self._member_index[name]
            for name in self._replica_names(key)
            if name in self._children
        ]
        if not indexes:  # pragma: no cover — see _owner_index
            raise StorageError(f"no live replica available for key {key!r}")
        return indexes

    def _old_replica_engines(self, key: str) -> list[StorageEngine]:
        """Mid-migration fallback readers: the key's *old*-ring replicas that
        are not already part of its current replica set."""
        if self._pending is None:
            return []
        old_ring, retired = self._pending
        if self.replicas == 1:
            old_names = [old_ring.owner(key)]
        else:
            old_names = old_ring.successors(key, min(self.replicas, len(old_ring.names)))
        current = set(self._replica_names(key))
        engines: list[StorageEngine] = []
        for name in old_names:
            if name in current:
                continue
            engine = retired.get(name) or self._children.get(name)
            if engine is not None:
                engines.append(engine)
        return engines

    def _require_table(self, table_name: str) -> None:
        # The reserved metadata table is invisible through the facade: its
        # records are not enveloped, so letting any data operation reach it
        # would crash on a missing sequence field (or corrupt the journal).
        if table_name == RING_META_TABLE:
            raise TableNotFoundError(table_name)
        super()._require_table(table_name)

    def _read_envelope_record(self, table_name: str, key: str) -> Record | None:
        if table_name == RING_META_TABLE:
            raise TableNotFoundError(table_name)
        record: Record | None = None
        if self.replicas == 1:
            record = self._owner(key).get_record(table_name, key)
        else:
            # Read-any-fresh: the highest logical version among the live
            # replicas wins, so a torn multi-replica write reads the same
            # everywhere.
            for name in self._replica_names(key):
                engine = self._children.get(name)
                if engine is None:
                    continue
                candidate = engine.get_record(table_name, key)
                if candidate is not None and (
                    record is None or candidate.value[_VER] > record.value[_VER]
                ):
                    record = candidate
        if record is None:
            for engine in self._old_replica_engines(key):
                candidate = engine.get_record(table_name, key)
                if candidate is not None and (
                    record is None or candidate.value[_VER] > record.value[_VER]
                ):
                    record = candidate
        return record

    def _bulk_lookup_envelopes(self, table_name: str, keys) -> dict[str, Any]:
        sentinel = object()
        if self.replicas == 1:
            found = super()._bulk_lookup_envelopes(table_name, keys)
        else:
            by_member: dict[str, list[str]] = {}
            for key in keys:
                for name in self._replica_names(key):
                    if name in self._children:
                        by_member.setdefault(name, []).append(key)
            found: dict[str, Any] = {}
            for name, member_keys in by_member.items():
                envelopes = self._children[name].get_many(
                    table_name, member_keys, default=sentinel
                )
                for key, envelope in zip(member_keys, envelopes):
                    if envelope is sentinel:
                        continue
                    best = found.get(key)
                    if best is None or envelope[_VER] > best[_VER]:
                        found[key] = envelope
        if self._pending is not None:
            misses = [key for key in keys if key not in found]
            for key in misses:
                for engine in self._old_replica_engines(key):
                    envelope = engine.get(table_name, key, default=sentinel)
                    if envelope is sentinel:
                        continue
                    best = found.get(key)
                    if best is None or envelope[_VER] > best[_VER]:
                        found[key] = envelope
        return found

    def delete(self, table_name: str, key: str) -> bool:
        if table_name == RING_META_TABLE:
            raise TableNotFoundError(table_name)
        deleted = False
        for name in self._replica_names(key):
            engine = self._children.get(name)
            if engine is not None:
                deleted = engine.delete(table_name, key) or deleted
        for engine in self._old_replica_engines(key):
            # Mid-migration both copies must go, or the stale one would be
            # "resurrected" by the fallback read (and by the drain wave).
            deleted = engine.delete(table_name, key) or deleted
        if deleted:
            self._note_delete(table_name, key)
        return deleted

    def _note_delete(self, table_name: str, key: str) -> None:
        index = self._indexes.get(table_name)
        if index is not None:
            index.note_delete(key)
            self._index_dirty.add(table_name)

    def delete_many(
        self, table_name: str, keys: Iterable[str], *, defer_commit: bool = False
    ) -> int:
        if table_name == RING_META_TABLE:
            raise TableNotFoundError(table_name)
        self._require_table(table_name)
        distinct = list(dict.fromkeys(keys))
        if not distinct:
            return 0
        present = self._bulk_lookup_envelopes(table_name, distinct)
        per_member: dict[str, list[str]] = {}
        for key in distinct:
            for name in self._replica_names(key):
                if name in self._children:
                    per_member.setdefault(name, []).append(key)
        for name in sorted(per_member):
            self._children[name].delete_many(
                table_name, per_member[name], defer_commit=defer_commit
            )
        if self._pending is not None:
            # Mid-migration the old-ring copies must go too (see delete()).
            old_batches: dict[int, tuple[StorageEngine, list[str]]] = {}
            for key in distinct:
                for engine in self._old_replica_engines(key):
                    old_batches.setdefault(id(engine), (engine, []))[1].append(key)
            for engine, old_keys in old_batches.values():
                engine.delete_many(table_name, old_keys, defer_commit=defer_commit)
        for key in present:
            self._note_delete(table_name, key)
        return len(present)

    # -- the sequence index and the scans it serves ----------------------------

    def _index(self, table_name: str) -> _SequenceIndex:
        """The table's sequence index, loaded from its durable snapshot when
        one validates, else rebuilt from the children.

        The rebuild is one full pass per member per open; a key found at two
        owners (the mid-migration window) or at several replicas collapses
        naturally because every copy carries the same sequence number.
        Writes and deletes afterwards maintain the index incrementally, and
        migration never touches it — moving a key changes neither its
        sequence nor its liveness.
        """
        index = self._indexes.get(table_name)
        if index is None:
            self._require_table(table_name)
            index = self._load_index_snapshot(table_name)
            if index is None:
                seq_by_key: dict[str, int] = {}
                for member in self._members:
                    if not member.has_table(table_name):
                        continue
                    cursor: str | None = None
                    while True:
                        page = list(
                            member.scan(
                                table_name,
                                limit=self._merge_page_size,
                                start_after=cursor,
                            )
                        )
                        for record in page:
                            seq_by_key[record.key] = record.value[_SEQ]
                        if len(page) < self._merge_page_size:
                            break
                        cursor = page[-1].key
                index = _SequenceIndex(seq_by_key)
                # Persist what the rebuild paid for at the next flush/close.
                self._index_dirty.add(table_name)
            self._indexes[table_name] = index
        return index

    def _load_index_snapshot(self, table_name: str) -> _SequenceIndex | None:
        """Load and validate the table's ``idx::`` snapshot, or ``None``.

        Returning ``None`` means "pay the full rebuild" — the safe answer
        whenever the snapshot cannot be *proven* to replay to the exact
        index the rebuild would produce (see the module docstring for the
        validation rules).
        """
        if self._pending is not None:
            return None  # mid-migration: the dual-owner world needs the rebuild
        snapshot: dict[str, Any] | None = None
        for name in sorted(self._children):
            snapshot = self._children[name].get(
                RING_META_TABLE, _INDEX_KEY_PREFIX + table_name
            )
            if snapshot is not None:
                break
        if not snapshot or snapshot.get("epoch") != self._epoch:
            return None  # no snapshot, or a rebalance moved the epoch past it
        members: dict[str, Any] = snapshot.get("members", {})
        if set(members) != set(self._children):
            return None  # degraded open or membership drift: counts unprovable
        replayed: list[tuple[int, str]] = []
        for name in sorted(members):
            engine = self._children[name]
            info = members[name]
            if not engine.has_table(table_name):
                if info["count"]:
                    return None  # the member lost a table it had records in
                continue
            fresh = 0
            cursor: str | None = info["tail"]
            try:
                while True:
                    page = list(
                        engine.scan(
                            table_name,
                            limit=self._merge_page_size,
                            start_after=cursor,
                        )
                    )
                    for record in page:
                        replayed.append((record.value[_SEQ], record.key))
                        fresh += 1
                    if len(page) < self._merge_page_size:
                        break
                    cursor = page[-1].key
            except UnknownCursorError:
                return None  # the tail key was deleted since the snapshot
            if engine.count(table_name) != info["count"] + fresh:
                return None  # a delete landed behind the snapshot's back
        index = _SequenceIndex(dict(zip(snapshot["keys"], snapshot["seqs"])))
        # Replays across members interleave by sequence, so sort before
        # appending — entries must stay sequence-ascending for the scans'
        # bisect.  Replica copies of one key collapse via note_write.
        for seq, key in sorted(replayed):
            index.note_write(key, seq)
        if replayed:
            # The snapshot is provably stale; refresh it at the next
            # flush/close so future reopens stop re-paying this replay.
            self._index_dirty.add(table_name)
        return index

    def _write_index_snapshots(self) -> None:
        """Persist every dirty table's sequence index to the live members."""
        if self._pending is not None:
            return  # never snapshot the dual-owner window
        for table_name in sorted(self._index_dirty & set(self._indexes)):
            index = self._indexes[table_name]
            keys: list[str] = []
            seqs: list[int] = []
            for seq, key in index.live_after(0):
                keys.append(key)
                seqs.append(seq)
            members: dict[str, dict[str, Any]] = {}
            for name in sorted(self._children):
                engine = self._children[name]
                if engine.has_table(table_name):
                    members[name] = {
                        "count": engine.count(table_name),
                        "tail": self._last_key(engine, table_name),
                    }
                else:
                    members[name] = {"count": 0, "tail": None}
            snapshot = {
                "epoch": self._epoch,
                "keys": keys,
                "seqs": seqs,
                "members": members,
            }
            for name in sorted(self._children):
                self._children[name].put(
                    RING_META_TABLE, _INDEX_KEY_PREFIX + table_name, snapshot
                )
            self._index_dirty.discard(table_name)

    def _note_write(self, table_name: str, key: str, envelope: dict[str, Any]) -> None:
        index = self._indexes.get(table_name)
        if index is not None:
            index.note_write(key, envelope[_SEQ])
            self._index_dirty.add(table_name)

    def _allocate_seq(self, table_name: str, count: int = 1) -> int:
        # The sharded recovery ("a member's last record holds its largest
        # sequence") assumes child physical order is sequence order, which a
        # past migration breaks; recover from the index instead, whose tail
        # entry is the true maximum even if its key was since deleted.
        next_seq = self._next_seq.get(table_name)
        if next_seq is None:
            entries = self._index(table_name).entries
            next_seq = entries[-1][0] + 1 if entries else 1
        self._next_seq[table_name] = next_seq + count
        return next_seq

    def _resolve_cursor(self, table_name: str, start_after: str | None) -> int:
        if start_after is None:
            return 0
        seq = self._index(table_name).seq_by_key.get(start_after)
        if seq is None:
            raise UnknownCursorError(table_name, start_after)
        return seq

    def scan(
        self, table_name: str, limit: int | None = None, start_after: str | None = None
    ) -> Iterator[Record]:
        if limit is not None and limit < 0:
            raise ValueError(f"scan limit must be non-negative, got {limit}")
        self._require_table(table_name)
        min_seq = self._resolve_cursor(table_name, start_after)
        if limit == 0:
            return
        remaining = limit

        def pages() -> Iterator[list[str]]:
            page: list[str] = []
            budget = remaining
            for _, key in self._index(table_name).live_after(min_seq):
                page.append(key)
                if budget is not None:
                    budget -= 1
                    if budget == 0:
                        break
                if len(page) == self._merge_page_size:
                    yield page
                    page = []
            if page:
                yield page

        for page_keys in pages():
            # The dual-owner bulk lookup keeps mid-migration reads exact.
            envelopes = self._bulk_lookup_envelopes(table_name, page_keys)
            for key in page_keys:
                envelope = envelopes.get(key)
                if envelope is not None:
                    yield Record(
                        key=key, value=envelope[_VALUE], version=envelope[_VER]
                    )

    def scan_keys(
        self, table_name: str, limit: int | None = None, start_after: str | None = None
    ) -> list[str]:
        if limit is not None and limit < 0:
            raise ValueError(f"scan limit must be non-negative, got {limit}")
        self._require_table(table_name)
        min_seq = self._resolve_cursor(table_name, start_after)
        if limit == 0:
            return []
        keys: list[str] = []
        for _, key in self._index(table_name).live_after(min_seq):
            keys.append(key)
            if limit is not None and len(keys) == limit:
                break
        return keys

    def count(self, table_name: str) -> int:
        self._require_table(table_name)
        return len(self._index(table_name).seq_by_key)

    # -- table management (hide the reserved table) ----------------------------

    def list_tables(self) -> list[str]:
        return [name for name in super().list_tables() if name != RING_META_TABLE]

    def drop_table(self, table_name: str) -> None:
        if table_name == RING_META_TABLE:
            raise StorageError(f"{RING_META_TABLE!r} is reserved for ring metadata")
        super().drop_table(table_name)
        self._indexes.pop(table_name, None)
        self._index_dirty.discard(table_name)
        for child in self._children.values():
            child.delete(RING_META_TABLE, _INDEX_KEY_PREFIX + table_name)

    # -- lifecycle: persist the indexes alongside the data ---------------------

    def flush(self) -> None:
        self._write_index_snapshots()
        super().flush()

    def close(self) -> None:
        if not self._closed:
            self._write_index_snapshots()
        super().close()

    # -- repair (re-replication) -----------------------------------------------

    def repair(self, on_event: RebalanceObserver | None = None) -> dict[str, Any]:
        """Re-establish the R-successor invariant across the live members.

        For every table, every key's freshest envelope (highest logical
        version among the live copies) is written to each *live* member of
        its replica set that lacks it or holds an older version, and copies
        sitting on live members outside the replica set are dropped.  This
        is the healing pass after a degraded window: writes issued while a
        member was down only reached the surviving replicas, and a torn
        multi-replica write can leave versions divergent.

        Idempotent and crash-safe: every step rewrites state derivable from
        the data, so rerunning after an interruption converges.

        Args:
            on_event: Optional observer called with ``repair:...`` /
                ``repair-drop:...`` labels before each durable step (the
                same crash-injection hook :meth:`rebalance` offers).

        Returns:
            A report: ``keys_copied``, ``keys_dropped``, ``tables``
            (per-table counts).

        Raises:
            StorageError: While a rebalance is in flight (its own repair
                pass runs as part of the transition).
        """
        if self._pending is not None:
            raise StorageError(
                "cannot repair while a rebalance is in flight; the "
                "transition runs its own repair pass before finalizing"
            )
        return self._repair_pass(on_event or (lambda event: None))

    def _repair_pass(self, notify: RebalanceObserver) -> dict[str, Any]:
        keys_copied = 0
        keys_dropped = 0
        per_table: dict[str, dict[str, int]] = {}
        for table_name in self.list_tables():
            held: dict[str, dict[str, Any]] = {}
            for name in sorted(self._children):
                engine = self._children[name]
                engine.create_table(table_name)
                envelopes: dict[str, Any] = {}
                cursor: str | None = None
                while True:
                    page = list(
                        engine.scan(
                            table_name,
                            limit=self._merge_page_size,
                            start_after=cursor,
                        )
                    )
                    for record in page:
                        envelopes[record.key] = record.value
                    if len(page) < self._merge_page_size:
                        break
                    cursor = page[-1].key
                held[name] = envelopes
            freshest: dict[str, Any] = {}
            for envelopes in held.values():
                for key, envelope in envelopes.items():
                    best = freshest.get(key)
                    if best is None or envelope[_VER] > best[_VER]:
                        freshest[key] = envelope
            copies: dict[str, list[tuple[str, Any]]] = {}
            drops: dict[str, list[str]] = {}
            for key, envelope in freshest.items():
                replica_set = set(self._replica_names(key))
                for name in replica_set:
                    if name not in self._children:
                        continue
                    current = held[name].get(key)
                    if current is None or current[_VER] < envelope[_VER]:
                        copies.setdefault(name, []).append((key, envelope))
                for name, envelopes in held.items():
                    if key in envelopes and name not in replica_set:
                        drops.setdefault(name, []).append(key)
            copied_in_table = 0
            dropped_in_table = 0
            for name in sorted(copies):
                batch = copies[name]
                for start in range(0, len(batch), self.rebalance_batch_size):
                    wave = batch[start : start + self.rebalance_batch_size]
                    notify(f"repair:{table_name}:{name}")
                    engine = self._children.get(name)
                    if engine is None:
                        continue  # marked down by the observer itself
                    engine.put_many(table_name, wave)
                    copied_in_table += len(wave)
            for name in sorted(drops):
                notify(f"repair-drop:{table_name}:{name}")
                engine = self._children.get(name)
                if engine is None:
                    continue
                engine.delete_many(table_name, drops[name])
                dropped_in_table += len(drops[name])
            if copied_in_table or dropped_in_table:
                per_table[table_name] = {
                    "copied": copied_in_table,
                    "dropped": dropped_in_table,
                }
            keys_copied += copied_in_table
            keys_dropped += dropped_in_table
        return {
            "keys_copied": keys_copied,
            "keys_dropped": keys_dropped,
            "tables": per_table,
        }

    # -- rebalance -------------------------------------------------------------

    def rebalance(
        self,
        add: Mapping[str, StorageEngine] | None = None,
        remove: Iterable[str] | None = None,
        on_event: RebalanceObserver | None = None,
    ) -> dict[str, Any]:
        """Change the ring membership online, migrating only displaced keys.

        Args:
            add: New members (name -> already-open engine) to join the ring.
            remove: Names of current members to drain and retire; their
                engines are closed once empty.  A member currently marked
                down may be removed too (dead-member replacement) — its
                surviving replicas provide the data.
            on_event: Test hook called with a label *before* every durable
                step (journal writes, copy waves, delete waves, repair
                steps, manifest writes, journal clears).  Raising from it
                models a crash in that exact window; reconstructing the
                engine over the same children resumes and completes the
                migration.

        Returns:
            A report: ``keys_moved``, ``tables`` (per-table move counts),
            ``waves``, ``added``, ``removed``, ``epoch``.

        Reads and writes issued from ``on_event`` (or, more generally,
        interleaved with the waves by a single-threaded caller) see a
        consistent view throughout: writes route by the new ring, reads
        fall back to the old replicas, scans deduplicate the one window
        where both copies exist.
        """
        add = dict(add or {})
        remove = sorted(set(remove or []))
        notify = on_event or (lambda event: None)

        if self._pending is not None:
            raise StorageError(
                "a rebalance is already in flight; reconstruct the engine "
                "over the same children to resume it before starting another"
            )
        for name in add:
            if name in self._membership:
                raise StorageError(f"ring member {name!r} already exists")
        for name in remove:
            if name not in self._membership:
                raise StorageError(f"cannot remove unknown ring member {name!r}")
            if name in add:
                raise StorageError(f"cannot both add and remove member {name!r}")
        if not add and not remove:
            raise StorageError("rebalance needs at least one member to add or remove")
        survivors = self._membership - set(remove) | set(add)
        if not survivors:
            raise StorageError("rebalance would leave the ring with no members")
        if len(survivors) < self.replicas:
            raise StorageError(
                f"rebalance would leave {len(survivors)} member(s), fewer "
                f"than the {self.replicas} replicas every key needs"
            )
        down_after = {name for name in survivors if name not in self._children and name not in add}
        if len(down_after) > self.replicas - 1:
            raise StorageError(
                f"rebalance would leave members {sorted(down_after)} down at "
                f"once, more than replicas={self.replicas} tolerates"
            )

        old_names = sorted(self._membership)
        new_names = sorted(survivors)

        # Prepare joiners: the reserved table plus every existing data table
        # must exist before any copy or scan touches them.
        tables = self.list_tables()
        for engine in add.values():
            engine.create_table(RING_META_TABLE)
            for table_name in tables:
                engine.create_table(table_name)

        journal = {
            "epoch": self._epoch,
            "old": old_names,
            "new": new_names,
            "virtual_nodes": self.virtual_nodes,
            "replicas": self.replicas,
        }
        # The journal must be durable on every member *before* any write
        # routes by the new ring: if a journal write fails here, the live
        # engine is still entirely on the old membership (a reopen that
        # finds a partial journal simply rolls the transition forward).
        # Flipping routing first would let a caller who caught the failure
        # keep writing to a joiner that a journal-less reopen then drops.
        for name in sorted(set(old_names) | set(new_names)):
            engine = self._children.get(name) or add.get(name)
            if engine is None:
                continue  # a down member; it will be synced when it returns
            notify(f"journal:{name}")
            engine.put(RING_META_TABLE, _JOURNAL_KEY, journal)

        # From here writes route by the new ring; reads fall back via
        # self._pending until the drain completes.
        retired = {
            name: self._children.pop(name) for name in remove if name in self._children
        }
        self._children.update(add)
        self._membership = set(new_names)
        self._pending = (HashRing(old_names, self.virtual_nodes), retired)
        self._rebuild_membership()

        report = self._run_migration(notify)
        if self.replicas > 1:
            report["repair"] = self._repair_pass(notify)
        self._finalize(notify)
        report.update(added=sorted(add), removed=remove, epoch=self._epoch)
        return report

    def _run_migration(self, notify: RebalanceObserver) -> dict[str, Any]:
        """Drain every key whose ring placement changed, in batched waves.

        The work list is re-derived from the data (keys still sitting at a
        member that no longer holds a replica of them), which is what makes
        a resumed migration converge without progress cursors: completed
        waves left nothing behind to enumerate.
        """
        old_ring, retired = self._pending
        source_names = set(retired) | (set(old_ring.names) & set(self._children))

        keys_moved = 0
        waves = 0
        per_table: dict[str, int] = {}
        for table_name in self.list_tables():
            moved_in_table = 0
            for source_name in sorted(source_names):
                source = retired.get(source_name) or self._children.get(source_name)
                if source is None:
                    continue  # marked down mid-transition; repair heals it
                if not source.has_table(table_name):
                    continue
                displaced = self._displaced_keys(source, source_name, table_name)
                for start in range(0, len(displaced), self.rebalance_batch_size):
                    if (
                        source_name not in retired
                        and source_name not in self._children
                    ):
                        break  # the observer marked this source down mid-wave
                    wave = displaced[start : start + self.rebalance_batch_size]
                    waves += 1
                    moved_in_table += self._migrate_wave(
                        notify, table_name, source_name, source, wave
                    )
            if moved_in_table:
                per_table[table_name] = moved_in_table
            keys_moved += moved_in_table
        return {"keys_moved": keys_moved, "waves": waves, "tables": per_table}

    def _displaced_keys(
        self, source: StorageEngine, source_name: str, table_name: str
    ) -> list[str]:
        """Keys at *source* that the new ring places on other members only."""
        displaced: list[str] = []
        cursor: str | None = None
        while True:
            page = source.scan_keys(
                table_name, limit=self._merge_page_size, start_after=cursor
            )
            displaced.extend(
                key for key in page if source_name not in self._replica_names(key)
            )
            if len(page) < self._merge_page_size:
                return displaced
            cursor = page[-1]

    def _migrate_wave(
        self,
        notify: RebalanceObserver,
        table_name: str,
        source_name: str,
        source: StorageEngine,
        wave: list[str],
    ) -> int:
        """Copy one wave to its destinations, then delete it from the source.

        ``if_absent=True`` on the copy keeps two invariants: a replayed wave
        (crash between copy and delete) is a no-op, and a *fresh* write that
        landed at the destination during the migration is never clobbered by
        the stale source copy.  With replication each key is copied to every
        *live* member of its new replica set; the down-count bound
        guarantees at least one is live before the source copy is drained.
        """
        sentinel = object()
        envelopes = source.get_many(table_name, wave, default=sentinel)
        by_destination: dict[str, list[tuple[str, Any]]] = {}
        present: list[str] = []
        for key, envelope in zip(wave, envelopes):
            if envelope is sentinel:
                continue  # deleted (or already drained) since enumeration
            destinations = [
                name for name in self._replica_names(key) if name in self._children
            ]
            if not destinations:
                continue  # pragma: no cover — the down-count bound
            present.append(key)
            for destination_name in destinations:
                by_destination.setdefault(destination_name, []).append(
                    (key, envelope)
                )
        for destination_name in sorted(by_destination):
            if destination_name not in self._children:
                continue  # marked down since the wave was grouped
            notify(f"copy:{table_name}:{source_name}->{destination_name}")
            destination = self._children.get(destination_name)
            if destination is None:
                continue  # marked down by the observer itself
            # One batch, one commit, per destination per wave — and the copy
            # is durable before the drain below erases the source's copy.
            destination.put_many(
                table_name, by_destination[destination_name], if_absent=True
            )
        if present:
            notify(f"drain:{table_name}:{source_name}")
            drain_source = (
                self._pending[1].get(source_name)
                if self._pending is not None
                else None
            ) or self._children.get(source_name)
            if drain_source is not None:
                # One batched delete — one commit per wave instead of one
                # per key.
                drain_source.delete_many(table_name, present)
        return len(present)

    def _finalize(self, notify: RebalanceObserver) -> None:
        """Commit the new membership: manifest at epoch+1, journals cleared,
        retired members closed.

        Order matters for crash windows: the current members' journals are
        cleared only after every one of them holds the new manifest, and the
        retired members' journals go last — so any crash mid-finalize leaves
        at least one journal copy alive until the rest of the state is
        consistent, and a reopen (with or without the drained ex-members)
        converges.
        """
        _, retired = self._pending
        self._epoch += 1
        manifest = {
            "epoch": self._epoch,
            "members": sorted(self._membership),
            "virtual_nodes": self.virtual_nodes,
            "replicas": self.replicas,
        }
        for name in sorted(self._children):
            notify(f"manifest:{name}")
            engine = self._children.get(name)
            if engine is not None:
                engine.put(RING_META_TABLE, _MANIFEST_KEY, manifest)
        for name in sorted(self._children):
            notify(f"clear:{name}")
            engine = self._children.get(name)
            if engine is not None:
                engine.delete(RING_META_TABLE, _JOURNAL_KEY)
        for name in sorted(retired):
            notify(f"clear:{name}")
            retired[name].delete(RING_META_TABLE, _JOURNAL_KEY)
        self._pending = None
        self._rebuild_membership()
        self._write_down_records()
        for engine in retired.values():
            engine.close()

    # -- introspection ---------------------------------------------------------

    @property
    def member_names(self) -> list[str]:
        """Names of the live ring members, sorted."""
        return sorted(self._children)

    @property
    def down_members(self) -> list[str]:
        """Names of the authoritative members currently down, sorted."""
        return self._down_names()

    def describe(self) -> dict[str, Any]:
        description = super().describe()
        description["virtual_nodes"] = self.virtual_nodes
        description["epoch"] = self._epoch
        description["replicas"] = self.replicas
        description["down"] = self._down_names()
        description["members"] = {
            name: {
                "engine": child.engine_name,
                "records": sum(
                    count
                    for table, count in child.describe()["tables"].items()
                    if table != RING_META_TABLE
                ),
            }
            for name, child in sorted(self._children.items())
        }
        return description
