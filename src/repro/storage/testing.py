"""The storage-engine registry backing every cross-engine test suite.

The equivalence-class suites (``any_engine`` fixture, Hypothesis bulk
properties, durability reopen checks, platform-store contract) used to each
hard-code their own engine list, so a newly added engine could silently skip
coverage.  This module is the single registry they all derive from: adding
an engine here enrols it in every suite at once, and forgetting to add it
shows up as a missing name the moment a ring-style test asks for it.

Builders are deliberately tiny and deterministic: every engine is built
under a caller-supplied directory, and rebuilding with the same directory
reopens the same data (which is exactly what the durability suites do).
"""

from __future__ import annotations

import os
from typing import Callable, Mapping

from repro.storage.engine import StorageEngine
from repro.storage.log_engine import LogStructuredEngine
from repro.storage.memory_engine import MemoryEngine
from repro.storage.ring import ConsistentHashEngine
from repro.storage.sharded_engine import ShardedEngine
from repro.storage.sqlite_engine import SqliteEngine

#: Children per partitioned engine in the test builders.
TEST_PARTITION_CHILDREN = 3


def _memory(base_path: str, codec: str | None = None) -> StorageEngine:
    return MemoryEngine(codec=codec)


def _sqlite(base_path: str, codec: str | None = None) -> StorageEngine:
    return SqliteEngine(os.path.join(base_path, "engine.db"), codec=codec)


def _log(base_path: str, codec: str | None = None) -> StorageEngine:
    return LogStructuredEngine(
        os.path.join(base_path, "engine_log"), snapshot_every=50, codec=codec
    )


def _sharded(base_path: str, codec: str | None = None) -> StorageEngine:
    return ShardedEngine(
        [
            SqliteEngine(os.path.join(base_path, f"shard-{index:02d}.db"), codec=codec)
            for index in range(TEST_PARTITION_CHILDREN)
        ]
    )


def _ring(base_path: str, codec: str | None = None) -> StorageEngine:
    return ConsistentHashEngine(
        {
            f"ring-{index:02d}": SqliteEngine(
                os.path.join(base_path, f"ring-{index:02d}.db"), codec=codec
            )
            for index in range(TEST_PARTITION_CHILDREN)
        }
    )


def _ring_r2(base_path: str, codec: str | None = None) -> StorageEngine:
    return ConsistentHashEngine(
        {
            f"ring-{index:02d}": SqliteEngine(
                os.path.join(base_path, f"ring-{index:02d}.db"), codec=codec
            )
            for index in range(TEST_PARTITION_CHILDREN)
        },
        replicas=2,
    )


#: name -> builder(base_path).  The insertion order is the parametrisation
#: order of the ``any_engine`` fixture; ``memory`` first because it is the
#: reference implementation the others are compared against.
ENGINE_BUILDERS: Mapping[str, Callable[..., StorageEngine]] = {
    "memory": _memory,
    "sqlite": _sqlite,
    "log": _log,
    "sharded": _sharded,
    "ring": _ring,
    "ring-r2": _ring_r2,
}

#: Every engine name, in fixture-parametrisation order.
ENGINE_NAMES: tuple[str, ...] = tuple(ENGINE_BUILDERS)

#: The engines with a durable medium (rebuilding on the same directory must
#: reopen the same data).
DURABLE_ENGINE_NAMES: tuple[str, ...] = tuple(
    name for name in ENGINE_NAMES if name != "memory"
)

#: Engine kinds usable as partitioned-engine children (ring crash suites
#: sweep all of them).
CHILD_ENGINE_NAMES: tuple[str, ...] = ("memory", "sqlite", "log")


def build_engine(name: str, base_path, codec: str | None = None) -> StorageEngine:
    """Build the registry engine *name* under directory *base_path*.

    Rebuilding with the same arguments reopens the same data for every
    durable engine (see :data:`DURABLE_ENGINE_NAMES`).  *codec* selects the
    record codec ("json"/"binary"); None keeps each engine's stored or
    default codec — exactly the :class:`~repro.config.StorageConfig.codec`
    semantics.
    """
    try:
        builder = ENGINE_BUILDERS[name]
    except KeyError:
        raise KeyError(
            f"unknown registry engine {name!r}; known: {sorted(ENGINE_BUILDERS)}"
        ) from None
    return builder(str(base_path), codec=codec)


def build_child_engine(kind: str, base_path, name: str) -> StorageEngine:
    """Build one partitioned-engine child of *kind* called *name*.

    Used by the ring suites to assemble rings over every child-engine type.
    Rebuilding a durable kind with the same arguments reopens its data;
    ``memory`` children are only meaningful within one process.
    """
    base = str(base_path)
    if kind == "memory":
        return MemoryEngine()
    if kind == "sqlite":
        return SqliteEngine(os.path.join(base, f"{name}.db"))
    if kind == "log":
        return LogStructuredEngine(os.path.join(base, name), snapshot_every=50)
    raise KeyError(
        f"unknown child engine kind {kind!r}; known: {sorted(CHILD_ENGINE_NAMES)}"
    )
