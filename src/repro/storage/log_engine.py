"""Append-only log-structured storage engine with periodic snapshots.

This engine exists to study the recovery path explicitly: every mutation is
appended to a write-ahead log (one JSON line per operation), and every
``snapshot_every`` operations the in-memory state is checkpointed to a
snapshot file so that recovery replays only the log tail.  Opening the engine
recovers state by loading the latest snapshot and replaying newer log
entries; a torn final line (partial write during a crash) is tolerated and
discarded, older corruption raises :class:`repro.exceptions.CorruptLogError`.
"""

from __future__ import annotations

import json
import os
from typing import Any, Iterable, Iterator, Sequence

from repro.exceptions import (
    CodecMismatchError,
    CorruptLogError,
    DuplicateKeyError,
    TableNotFoundError,
)
from repro.storage.engine import StorageEngine, paginate_records
from repro.storage.records import Codec, Record, resolve_codec


class LogStructuredEngine(StorageEngine):
    """Durable engine built from an append-only log plus snapshots."""

    engine_name = "log"

    _OP_CREATE = "create_table"
    _OP_DROP = "drop_table"
    _OP_PUT = "put"
    _OP_PUT_MANY = "put_many"
    _OP_DELETE = "delete"
    _OP_DELETE_MANY = "delete_many"

    def __init__(
        self,
        path: str,
        snapshot_every: int = 1000,
        codec: str | Codec | None = None,
    ) -> None:
        """Open (recovering if necessary) the log database rooted at *path*.

        Args:
            path: Base path; the engine writes ``<path>.log``,
                ``<path>.snapshot`` and ``<path>.meta``.
            snapshot_every: Number of logged operations between snapshots.
            codec: Value codec (name or instance), recorded in the meta file
                on first open and rediscovered afterwards; an explicit codec
                that disagrees with the recorded one raises
                :class:`~repro.exceptions.CodecMismatchError`.  The log's own
                wire format stays JSON lines — the codec governs the value
                domain and validation, keeping the engine interchangeable
                with the others under either codec.
        """
        if snapshot_every <= 0:
            raise ValueError(f"snapshot_every must be positive, got {snapshot_every}")
        self.path = path
        self.snapshot_every = snapshot_every
        self.log_path = f"{path}.log"
        self.snapshot_path = f"{path}.snapshot"
        self.meta_path = f"{path}.meta"
        parent = os.path.dirname(os.path.abspath(path))
        os.makedirs(parent, exist_ok=True)

        self.codec = self._settle_codec(codec)
        self._tables: dict[str, dict[str, Record]] = {}
        self._ops_since_snapshot = 0
        self._recovered_ops = 0
        self._pending_lines: list[str] = []
        self._pending_weight = 0
        self._closed = False
        self._recover()
        self._log_file = open(self.log_path, "a", encoding="utf-8")

    def _settle_codec(self, requested: str | Codec | None) -> Codec:
        """Reconcile the requested codec with the recorded one (meta file).

        Pre-meta databases that already have a log or snapshot are
        implicitly ``json``; the settled name is recorded atomically so
        every future open rediscovers it with no config change.
        """
        stored: str | None = None
        if os.path.exists(self.meta_path):
            with open(self.meta_path, "r", encoding="utf-8") as handle:
                stored = json.load(handle).get("codec")
        elif os.path.exists(self.log_path) or os.path.exists(self.snapshot_path):
            stored = "json"
        if requested is None:
            codec = resolve_codec(stored)
        else:
            codec = resolve_codec(requested)
            if stored is not None and codec.name != stored:
                raise CodecMismatchError(self.path, stored, codec.name)
        if stored != codec.name or not os.path.exists(self.meta_path):
            temp_path = f"{self.meta_path}.tmp"
            with open(temp_path, "w", encoding="utf-8") as handle:
                json.dump({"codec": codec.name}, handle)
            os.replace(temp_path, self.meta_path)
        return codec

    # -- recovery ------------------------------------------------------------

    def _recover(self) -> None:
        """Rebuild in-memory state from the snapshot and the log tail."""
        snapshot_seq = 0
        if os.path.exists(self.snapshot_path):
            with open(self.snapshot_path, "r", encoding="utf-8") as handle:
                snapshot = json.load(handle)
            snapshot_seq = snapshot["seq"]
            for table_name, rows in snapshot["tables"].items():
                table: dict[str, Record] = {}
                for row in rows:
                    table[row["key"]] = Record(
                        key=row["key"], value=row["value"], version=row["version"]
                    )
                self._tables[table_name] = table

        if not os.path.exists(self.log_path):
            return
        with open(self.log_path, "r", encoding="utf-8") as handle:
            lines = handle.readlines()
        for index, line in enumerate(lines):
            line = line.strip()
            if not line:
                continue
            try:
                entry = json.loads(line)
            except ValueError as exc:
                if index == len(lines) - 1:
                    # A torn final line is the expected signature of a crash
                    # mid-append; recovery simply ignores it.
                    break
                raise CorruptLogError(
                    f"unreadable log entry at line {index + 1} of {self.log_path}"
                ) from exc
            if entry["seq"] <= snapshot_seq:
                continue
            self._apply(entry)
            self._recovered_ops += 1

    def _apply(self, entry: dict[str, Any]) -> None:
        """Apply one recovered log *entry* to the in-memory tables."""
        op = entry["op"]
        if op == self._OP_CREATE:
            self._tables.setdefault(entry["table"], {})
        elif op == self._OP_DROP:
            self._tables.pop(entry["table"], None)
        elif op == self._OP_PUT:
            table = self._tables.setdefault(entry["table"], {})
            table[entry["key"]] = Record(
                key=entry["key"], value=entry["value"], version=entry["version"]
            )
        elif op == self._OP_PUT_MANY:
            table = self._tables.setdefault(entry["table"], {})
            for item in entry["entries"]:
                table[item["key"]] = Record(
                    key=item["key"], value=item["value"], version=item["version"]
                )
        elif op == self._OP_DELETE:
            table = self._tables.get(entry["table"])
            if table is not None:
                table.pop(entry["key"], None)
        elif op == self._OP_DELETE_MANY:
            table = self._tables.get(entry["table"])
            if table is not None:
                for key in entry["keys"]:
                    table.pop(key, None)
        else:
            raise CorruptLogError(f"unknown log operation {op!r}")

    @property
    def recovered_operations(self) -> int:
        """Number of log entries replayed on open (0 for a fresh database)."""
        return self._recovered_ops

    # -- logging -------------------------------------------------------------

    def _logged_seq(self) -> int:
        return getattr(self, "_seq", 0)

    def _append(self, entry: dict[str, Any], weight: int = 1, defer: bool = False) -> None:
        """Append one log entry; *weight* is its cost toward the snapshot cadence.

        A group append (``put_many``) is one entry and one fsync but carries
        many records, so it weighs as many operations — otherwise a bulk
        workload could write arbitrarily long log tails between snapshots
        and pay for them at recovery time.

        With ``defer=True`` the serialised line is buffered in memory and the
        write+flush+fsync barrier is postponed until :meth:`commit_group` (or
        the next non-deferred append, which must not overtake buffered lines
        in the file).  All buffered lines then go down in **one** ``write``
        call — a whole deferred wave costs a single syscall and fsync.
        """
        seq = self._logged_seq() + 1
        self._seq = seq
        entry["seq"] = seq
        self._pending_lines.append(json.dumps(entry, sort_keys=True) + "\n")
        self._pending_weight += max(1, weight)
        if not defer:
            self._flush_pending()

    def _flush_pending(self) -> None:
        """Write all buffered lines in one call, then one flush+fsync."""
        if not self._pending_lines:
            return
        self._log_file.write("".join(self._pending_lines))
        self._log_file.flush()
        os.fsync(self._log_file.fileno())
        self._ops_since_snapshot += self._pending_weight
        self._pending_lines.clear()
        self._pending_weight = 0
        if self._ops_since_snapshot >= self.snapshot_every:
            self._write_snapshot()

    def _write_snapshot(self) -> None:
        """Checkpoint the in-memory state atomically (write temp, rename)."""
        snapshot = {
            "seq": self._logged_seq(),
            "tables": {
                table_name: [
                    {"key": record.key, "value": record.value, "version": record.version}
                    for record in table.values()
                ]
                for table_name, table in self._tables.items()
            },
        }
        temp_path = f"{self.snapshot_path}.tmp"
        with open(temp_path, "w", encoding="utf-8") as handle:
            json.dump(snapshot, handle)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(temp_path, self.snapshot_path)
        self._ops_since_snapshot = 0

    # -- table management ------------------------------------------------------

    def _table(self, table_name: str) -> dict[str, Record]:
        try:
            return self._tables[table_name]
        except KeyError:
            raise TableNotFoundError(table_name) from None

    def create_table(self, table_name: str) -> None:
        if table_name not in self._tables:
            self._tables[table_name] = {}
            self._append({"op": self._OP_CREATE, "table": table_name})

    def drop_table(self, table_name: str) -> None:
        if table_name in self._tables:
            del self._tables[table_name]
            self._append({"op": self._OP_DROP, "table": table_name})

    def list_tables(self) -> list[str]:
        return sorted(self._tables)

    def has_table(self, table_name: str) -> bool:
        return table_name in self._tables

    # -- record access ----------------------------------------------------------

    def put(self, table_name: str, key: str, value: Any) -> Record:
        self.codec.encode(value)
        table = self._table(table_name)
        existing = table.get(key)
        record = existing.bump(value) if existing else Record(key=key, value=value)
        table[key] = record
        self._append(
            {
                "op": self._OP_PUT,
                "table": table_name,
                "key": key,
                "value": value,
                "version": record.version,
            }
        )
        return record

    def put_new(self, table_name: str, key: str, value: Any) -> Record:
        table = self._table(table_name)
        if key in table:
            raise DuplicateKeyError(table_name, key)
        return self.put(table_name, key, value)

    def get(self, table_name: str, key: str, default: Any = None) -> Any:
        record = self._table(table_name).get(key)
        return record.value if record is not None else default

    def get_record(self, table_name: str, key: str) -> Record | None:
        return self._table(table_name).get(key)

    def delete(self, table_name: str, key: str) -> bool:
        table = self._table(table_name)
        if key not in table:
            return False
        del table[key]
        self._append({"op": self._OP_DELETE, "table": table_name, "key": key})
        return True

    def contains(self, table_name: str, key: str) -> bool:
        return key in self._table(table_name)

    def scan(
        self, table_name: str, limit: int | None = None, start_after: str | None = None
    ) -> Iterator[Record]:
        records = list(self._table(table_name).values())
        yield from paginate_records(records, table_name, limit, start_after)

    def count(self, table_name: str) -> int:
        return len(self._table(table_name))

    # -- bulk record access -------------------------------------------------------

    def put_many(
        self,
        table_name: str,
        items: Iterable[tuple[str, Any]],
        if_absent: bool = False,
        *,
        defer_commit: bool = False,
    ) -> list[Record]:
        """Batch write as one atomic group append (one fsync for the batch).

        The whole group is serialised into a single buffered ``write`` call
        — never one syscall per record.  Recovery replays the group record
        whole; a crash while appending it tears the final line, which
        recovery discards — so the durable state is all of the batch or none
        of it.  With ``defer_commit=True`` even that single write+fsync is
        postponed to :meth:`commit_group`, so a multi-batch wave costs one
        barrier total.
        """
        table = self._table(table_name)
        items = list(items)
        # Validate the whole batch before mutating anything: a bad value must
        # not leave the in-memory state ahead of the durable log.
        self.codec.encode_many([value for _, value in items])
        records: list[Record] = []
        writes: list[dict[str, Any]] = []
        for key, value in items:
            existing = table.get(key)
            if if_absent and existing is not None:
                records.append(existing)
                continue
            record = existing.bump(value) if existing else Record(key=key, value=value)
            table[key] = record
            writes.append({"key": key, "value": value, "version": record.version})
            records.append(record)
        if writes:
            self._append(
                {"op": self._OP_PUT_MANY, "table": table_name, "entries": writes},
                weight=len(writes),
                defer=defer_commit,
            )
        return records

    def delete_many(
        self,
        table_name: str,
        keys: Sequence[str],
        *,
        defer_commit: bool = False,
    ) -> int:
        """Batch delete as one group append (one fsync, defer-able)."""
        table = self._table(table_name)
        removed = [key for key in dict.fromkeys(keys) if table.pop(key, None) is not None]
        if removed:
            self._append(
                {"op": self._OP_DELETE_MANY, "table": table_name, "keys": removed},
                weight=len(removed),
                defer=defer_commit,
            )
        return len(removed)

    def commit_group(self) -> None:
        """Write + fsync every line deferred with ``defer_commit=True``."""
        self._flush_pending()

    def get_many(
        self, table_name: str, keys: Sequence[str], default: Any = None
    ) -> list[Any]:
        table = self._table(table_name)
        values: list[Any] = []
        for key in keys:
            record = table.get(key)
            values.append(record.value if record is not None else default)
        return values

    # -- lifecycle ---------------------------------------------------------------

    def flush(self) -> None:
        self._flush_pending()
        self._log_file.flush()
        os.fsync(self._log_file.fileno())

    def close(self) -> None:
        if not self._closed:
            self._flush_pending()
            self._write_snapshot()
            self._log_file.close()
            self._closed = True
