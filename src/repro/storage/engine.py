"""Abstract storage-engine interface and engine factory.

Engines expose a minimal durable table API:

* tables are created lazily and listed;
* each table maps string keys to JSON-encodable values with a per-key version;
* ``put`` is an upsert, ``put_new`` refuses to overwrite;
* whole-table scans return records in insertion order.

This is intentionally smaller than SQL — it is exactly what CrowdData's
fault-recovery cache needs, and keeping it small makes the engines easy to
swap and to property-test against each other.
"""

from __future__ import annotations

import abc
from typing import Any, Iterator

from repro.config import StorageConfig
from repro.exceptions import ConfigurationError
from repro.storage.records import Record


class StorageEngine(abc.ABC):
    """Interface implemented by every storage engine."""

    #: Name reported by :meth:`describe`, overridden by subclasses.
    engine_name = "abstract"

    # -- table management --------------------------------------------------

    @abc.abstractmethod
    def create_table(self, table_name: str) -> None:
        """Create *table_name* if it does not already exist (idempotent)."""

    @abc.abstractmethod
    def drop_table(self, table_name: str) -> None:
        """Remove *table_name* and all of its records (idempotent)."""

    @abc.abstractmethod
    def list_tables(self) -> list[str]:
        """Return the names of all tables, sorted."""

    @abc.abstractmethod
    def has_table(self, table_name: str) -> bool:
        """Return True when *table_name* exists."""

    # -- record access -----------------------------------------------------

    @abc.abstractmethod
    def put(self, table_name: str, key: str, value: Any) -> Record:
        """Insert or overwrite the record at *key* and return it."""

    @abc.abstractmethod
    def put_new(self, table_name: str, key: str, value: Any) -> Record:
        """Insert a new record, raising ``DuplicateKeyError`` if *key* exists."""

    @abc.abstractmethod
    def get(self, table_name: str, key: str, default: Any = None) -> Any:
        """Return the value at *key*, or *default* when absent."""

    @abc.abstractmethod
    def get_record(self, table_name: str, key: str) -> Record | None:
        """Return the full :class:`Record` at *key*, or None when absent."""

    @abc.abstractmethod
    def delete(self, table_name: str, key: str) -> bool:
        """Delete the record at *key*; return True when something was deleted."""

    @abc.abstractmethod
    def contains(self, table_name: str, key: str) -> bool:
        """Return True when *key* exists in *table_name*."""

    @abc.abstractmethod
    def scan(self, table_name: str) -> Iterator[Record]:
        """Yield every record of *table_name* in insertion order."""

    @abc.abstractmethod
    def count(self, table_name: str) -> int:
        """Return the number of records in *table_name*."""

    # -- lifecycle ---------------------------------------------------------

    @abc.abstractmethod
    def flush(self) -> None:
        """Force buffered writes to durable storage (no-op for memory)."""

    @abc.abstractmethod
    def close(self) -> None:
        """Release resources held by the engine."""

    # -- conveniences shared by all engines ---------------------------------

    def keys(self, table_name: str) -> list[str]:
        """Return every key of *table_name* in insertion order."""
        return [record.key for record in self.scan(table_name)]

    def values(self, table_name: str) -> list[Any]:
        """Return every value of *table_name* in insertion order."""
        return [record.value for record in self.scan(table_name)]

    def items(self, table_name: str) -> list[tuple[str, Any]]:
        """Return (key, value) pairs of *table_name* in insertion order."""
        return [(record.key, record.value) for record in self.scan(table_name)]

    def describe(self) -> dict[str, Any]:
        """Return a JSON-friendly summary of the engine and its tables."""
        return {
            "engine": self.engine_name,
            "tables": {name: self.count(name) for name in self.list_tables()},
        }

    def __enter__(self) -> "StorageEngine":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def open_engine(config: StorageConfig) -> StorageEngine:
    """Instantiate the engine described by *config*.

    Raises:
        ConfigurationError: If ``config.engine`` names an unknown engine.
    """
    # Imported here to avoid circular imports between engine modules.
    from repro.storage.log_engine import LogStructuredEngine
    from repro.storage.memory_engine import MemoryEngine
    from repro.storage.sqlite_engine import SqliteEngine

    if config.engine == "memory":
        return MemoryEngine()
    if config.engine == "sqlite":
        return SqliteEngine(config.path, synchronous=config.synchronous)
    if config.engine == "log":
        return LogStructuredEngine(config.path, snapshot_every=config.snapshot_every)
    raise ConfigurationError(
        f"unknown storage engine {config.engine!r}; expected 'memory', 'sqlite' or 'log'"
    )
