"""Abstract storage-engine interface and engine factory.

Engines expose a minimal durable table API:

* tables are created lazily and listed;
* each table maps string keys to JSON-encodable values with a per-key version;
* ``put`` is an upsert, ``put_new`` refuses to overwrite;
* whole-table scans return records in insertion order.

This is intentionally smaller than SQL — it is exactly what CrowdData's
fault-recovery cache needs, and keeping it small makes the engines easy to
swap and to property-test against each other.

Bulk API contract
-----------------

The hot path of CrowdData (publishing thousands of tasks, collecting as many
answers) goes through three bulk operations that every engine must honour
identically — the cross-engine property tests treat the three engines as one
equivalence class:

* ``put_many(table, items, if_absent=False)`` writes a batch of (key, value)
  pairs **in item order** and returns one :class:`Record` per item.  Each
  item behaves exactly like an individual ``put``: an existing key is
  overwritten and its version bumped, and a key repeated within the batch is
  bumped once per occurrence.  With ``if_absent=True`` every item instead
  gets ``put_new`` semantics per key — a key that already exists (in the
  table, or earlier in the same batch) is left untouched and its *existing*
  record is returned.  That is the mode the fault-recovery cache uses: a
  crash mid-batch followed by a rerun fills only the missing keys and never
  bumps a surviving record, so crowd work is never duplicated.  Durable
  engines make the batch one transaction/append; crashing mid-batch must
  never leave a torn record, only a prefix (SQLite: all-or-nothing
  transaction; log engine: one group append that recovery either replays
  whole or discards).
* ``get_many(table, keys, default)`` returns one value per requested key, in
  request order, substituting *default* for absent keys.
* ``scan(table, limit=None, start_after=None)`` pages through a table in
  insertion order.  ``start_after`` is an exclusive cursor: the key of the
  last record of the previous page.  Passing a cursor that is not currently
  a key of the table raises :class:`~repro.exceptions.StorageError`, and a
  negative ``limit`` raises ``ValueError``.  Walking pages of any size and
  concatenating them yields exactly the unpaginated scan.

Group commit
------------

Durable engines pay one durability barrier (sqlite commit+fsync, log fsync)
per write batch.  Callers that issue several batches as one logical wave —
the sharded fan-out, the ring's migration waves, the platform store's
multi-table task publish — can instead pass ``defer_commit=True`` to each
``put_many``/``delete_many`` and then call ``commit_group()`` once: every
touched engine flushes a single barrier for the whole wave.  Reads on the
same engine observe deferred writes immediately (same connection/process);
a crash before ``commit_group()`` may lose the whole uncommitted wave but
never tears a batch, which the ``if_absent=True`` rerun path heals exactly
like any other lost batch.  Engines without a barrier (memory) accept and
ignore the flag, so callers never need to special-case.

Record codecs
-------------

Values cross the engine boundary through a pluggable
:class:`~repro.storage.records.Codec` (strict-JSON default, compact binary
optional).  Durable engines record the codec name in their on-disk meta and
rediscover it on reopen; opening with an explicitly different codec raises
:class:`~repro.exceptions.CodecMismatchError`.
"""

from __future__ import annotations

import abc
import os
from typing import Any, Iterable, Iterator, Sequence

from repro.config import StorageConfig
from repro.exceptions import ConfigurationError, UnknownCursorError
from repro.storage.records import CODECS, Codec, Record


def paginate_records(
    records: Sequence[Record],
    table_name: str,
    limit: int | None,
    start_after: str | None,
) -> list[Record]:
    """Apply the ``scan`` pagination contract to an in-memory record list.

    Shared by the dict-backed engines (memory, log) so their cursor and
    limit semantics cannot drift from each other; the SQLite engine
    implements the same contract natively in SQL.
    """
    if limit is not None and limit < 0:
        raise ValueError(f"scan limit must be non-negative, got {limit}")
    records = list(records)
    if start_after is not None:
        index = next(
            (i for i, record in enumerate(records) if record.key == start_after), None
        )
        if index is None:
            raise UnknownCursorError(table_name, start_after)
        records = records[index + 1 :]
    if limit is not None:
        records = records[:limit]
    return records


class StorageEngine(abc.ABC):
    """Interface implemented by every storage engine."""

    #: Name reported by :meth:`describe`, overridden by subclasses.
    engine_name = "abstract"

    #: The value codec in effect; engines accepting a ``codec=`` argument
    #: overwrite this per instance (default: strict JSON).
    codec: Codec = CODECS["json"]

    # -- table management --------------------------------------------------

    @abc.abstractmethod
    def create_table(self, table_name: str) -> None:
        """Create *table_name* if it does not already exist (idempotent)."""

    @abc.abstractmethod
    def drop_table(self, table_name: str) -> None:
        """Remove *table_name* and all of its records (idempotent)."""

    @abc.abstractmethod
    def list_tables(self) -> list[str]:
        """Return the names of all tables, sorted."""

    @abc.abstractmethod
    def has_table(self, table_name: str) -> bool:
        """Return True when *table_name* exists."""

    # -- record access -----------------------------------------------------

    @abc.abstractmethod
    def put(self, table_name: str, key: str, value: Any) -> Record:
        """Insert or overwrite the record at *key* and return it."""

    @abc.abstractmethod
    def put_new(self, table_name: str, key: str, value: Any) -> Record:
        """Insert a new record, raising ``DuplicateKeyError`` if *key* exists."""

    @abc.abstractmethod
    def get(self, table_name: str, key: str, default: Any = None) -> Any:
        """Return the value at *key*, or *default* when absent."""

    @abc.abstractmethod
    def get_record(self, table_name: str, key: str) -> Record | None:
        """Return the full :class:`Record` at *key*, or None when absent."""

    @abc.abstractmethod
    def delete(self, table_name: str, key: str) -> bool:
        """Delete the record at *key*; return True when something was deleted."""

    @abc.abstractmethod
    def contains(self, table_name: str, key: str) -> bool:
        """Return True when *key* exists in *table_name*."""

    @abc.abstractmethod
    def scan(
        self, table_name: str, limit: int | None = None, start_after: str | None = None
    ) -> Iterator[Record]:
        """Yield records of *table_name* in insertion order, paginated.

        Args:
            table_name: The table to scan.
            limit: Maximum number of records to yield (all when None).
            start_after: Exclusive cursor — yield only records inserted after
                the record whose key is *start_after*.  Raises
                :class:`~repro.exceptions.StorageError` when the cursor is
                not currently a key of the table.

        A negative *limit* raises ``ValueError``; ``limit=0`` yields nothing;
        a cursor at the last record yields an empty page.  Walking pages of
        any size and chaining ``start_after`` to each page's final key
        concatenates to exactly the unpaginated scan — the invariant the
        streaming collection path and the sharded merge-scan both rely on.
        """

    @abc.abstractmethod
    def count(self, table_name: str) -> int:
        """Return the number of records in *table_name*."""

    # -- bulk record access --------------------------------------------------

    def put_many(
        self,
        table_name: str,
        items: Iterable[tuple[str, Any]],
        if_absent: bool = False,
        *,
        defer_commit: bool = False,
    ) -> list[Record]:
        """Write a batch of (key, value) pairs; return one record per item.

        Contract (see also the module docstring):

        * Items apply **in order**, each with single-``put`` semantics: an
          existing key is overwritten and version-bumped once per occurrence.
          With ``if_absent=True`` every item has ``put_new``-per-key
          semantics instead — a key already present (in the table or earlier
          in the batch) is left untouched and its existing record returned.
        * **Validation is all-or-nothing**: every value is checked for
          JSON-encodability before anything is written, so a bad value never
          leaves a half-applied batch.
        * **Atomicity** is per engine: SQLite commits the batch as one
          transaction, the log engine appends one group record (recovery
          replays it whole or discards it), the sharded engine issues one
          child batch per shard — so a crash can leave *whole-shard*
          prefixes, which ``if_absent=True`` reruns heal.
        * ``defer_commit=True`` skips the engine's per-batch durability
          barrier; the caller promises a later :meth:`commit_group` (see the
          module docstring).  Engines without a barrier ignore the flag.

        This base implementation is the naive row-at-a-time loop; engines
        override it with their atomic batch primitive.
        """
        del defer_commit  # the naive loop has no batch barrier to defer
        records: list[Record] = []
        for key, value in items:
            if if_absent:
                existing = self.get_record(table_name, key)
                if existing is not None:
                    records.append(existing)
                    continue
            records.append(self.put(table_name, key, value))
        return records

    def delete_many(
        self,
        table_name: str,
        keys: Sequence[str],
        *,
        defer_commit: bool = False,
    ) -> int:
        """Delete each key in *keys*; return how many records were removed.

        Missing keys are skipped silently (like :meth:`delete` returning
        False).  ``defer_commit=True`` has the same contract as in
        :meth:`put_many`.  This base implementation loops :meth:`delete`;
        durable engines override it with one batched barrier.
        """
        del defer_commit
        return sum(1 for key in keys if self.delete(table_name, key))

    def commit_group(self) -> None:
        """Flush one durability barrier for all writes deferred so far.

        Pairs with ``defer_commit=True`` on :meth:`put_many` /
        :meth:`delete_many`.  A no-op on engines without a barrier and when
        nothing was deferred; partitioned engines fan it out to every child
        they touched.
        """

    def get_many(
        self, table_name: str, keys: Sequence[str], default: Any = None
    ) -> list[Any]:
        """Return one value per key in *keys* order, *default* when absent.

        *keys* may repeat; the result always has exactly ``len(keys)``
        entries, positionally aligned with the request.  Purely a read — no
        version is bumped and no record is created for missing keys.
        """
        return [self.get(table_name, key, default) for key in keys]

    def scan_keys(
        self, table_name: str, limit: int | None = None, start_after: str | None = None
    ) -> list[str]:
        """Key-only page of :meth:`scan`, same pagination contract.

        ``start_after`` is an exclusive cursor that must currently be a key
        of the table (:class:`~repro.exceptions.StorageError` otherwise), a
        negative ``limit`` raises ``ValueError``, and walking pages of any
        size concatenates to the full unpaginated key list in insertion
        order.  Engines whose values are expensive to materialise (SQLite)
        override this to skip reading and decoding the values entirely.
        """
        return [
            record.key
            for record in self.scan(table_name, limit=limit, start_after=start_after)
        ]

    # -- lifecycle ---------------------------------------------------------

    @abc.abstractmethod
    def flush(self) -> None:
        """Force buffered writes to durable storage (no-op for memory)."""

    @abc.abstractmethod
    def close(self) -> None:
        """Release resources held by the engine."""

    # -- conveniences shared by all engines ---------------------------------

    def keys(self, table_name: str) -> list[str]:
        """Return every key of *table_name* in insertion order."""
        return [record.key for record in self.scan(table_name)]

    def values(self, table_name: str) -> list[Any]:
        """Return every value of *table_name* in insertion order."""
        return [record.value for record in self.scan(table_name)]

    def items(self, table_name: str) -> list[tuple[str, Any]]:
        """Return (key, value) pairs of *table_name* in insertion order."""
        return [(record.key, record.value) for record in self.scan(table_name)]

    def describe(self) -> dict[str, Any]:
        """Return a JSON-friendly summary of the engine and its tables."""
        return {
            "engine": self.engine_name,
            "tables": {name: self.count(name) for name in self.list_tables()},
        }

    def __enter__(self) -> "StorageEngine":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def _open_child_engine(config: StorageConfig, name: str) -> StorageEngine:
    """Build one partitioned-engine child named *name* under ``config.path``.

    Raises:
        ConfigurationError: If ``config.shard_engine`` is unknown.
    """
    from repro.storage.log_engine import LogStructuredEngine
    from repro.storage.memory_engine import MemoryEngine
    from repro.storage.sqlite_engine import SqliteEngine

    if config.shard_engine == "memory":
        return MemoryEngine(codec=config.codec)
    if config.shard_engine == "sqlite":
        return SqliteEngine(
            os.path.join(config.path, f"{name}.db"),
            synchronous=config.synchronous,
            codec=config.codec,
        )
    if config.shard_engine == "log":
        return LogStructuredEngine(
            os.path.join(config.path, name),
            snapshot_every=config.snapshot_every,
            codec=config.codec,
        )
    raise ConfigurationError(
        f"unknown shard engine {config.shard_engine!r}; "
        "expected 'memory', 'sqlite' or 'log'"
    )


def _ring_member_names(config: StorageConfig) -> list[str]:
    """The ring member names ``config`` resolves to.

    A rebalance can grow or shrink a file-backed ring after it was first
    opened, so the directory — not ``config.shards`` — is the source of
    truth on reopen: every ``ring-NN`` child file/directory found under
    ``config.path`` is opened and handed to the engine, whose stored
    membership manifest then settles the authoritative member set (a
    drained ex-member left on disk is recognised and dropped).  A fresh
    directory starts with ``config.shards`` members.
    """
    import re

    discovered: set[str] = set()
    if config.shard_engine != "memory" and os.path.isdir(config.path):
        for entry in os.listdir(config.path):
            match = re.fullmatch(r"(ring-\d+)(\.db)?", entry)
            if match:
                discovered.add(match.group(1))
    if discovered:
        return sorted(discovered)
    return [f"ring-{index:02d}" for index in range(config.shards)]


def open_engine(config: StorageConfig) -> StorageEngine:
    """Instantiate the engine described by *config*.

    Raises:
        ConfigurationError: If ``config.engine`` names an unknown engine.
    """
    # Imported here to avoid circular imports between engine modules.
    from repro.storage.log_engine import LogStructuredEngine
    from repro.storage.memory_engine import MemoryEngine
    from repro.storage.ring import ConsistentHashEngine
    from repro.storage.sharded_engine import ShardedEngine
    from repro.storage.sqlite_engine import SqliteEngine

    if config.engine == "memory":
        return MemoryEngine(codec=config.codec)
    if config.engine == "sqlite":
        return SqliteEngine(
            config.path, synchronous=config.synchronous, codec=config.codec
        )
    if config.engine == "log":
        return LogStructuredEngine(
            config.path, snapshot_every=config.snapshot_every, codec=config.codec
        )
    if config.engine in ("sharded", "ring"):
        if config.shards < 1:
            raise ConfigurationError(
                f"{config.engine} engine needs at least 1 shard, got {config.shards}"
            )
        if config.engine == "sharded":
            names = [f"shard-{index:02d}" for index in range(config.shards)]
        else:
            names = _ring_member_names(config)
        children: list[tuple[str, StorageEngine]] = []
        try:
            for name in names:
                children.append((name, _open_child_engine(config, name)))
            if config.engine == "sharded":
                return ShardedEngine(
                    [child for _, child in children],
                    shard_workers=config.shard_workers,
                )
            return ConsistentHashEngine(
                dict(children),
                virtual_nodes=config.virtual_nodes,
                replicas=config.replicas,
                rebalance_batch_size=config.rebalance_batch_size,
                shard_workers=config.shard_workers,
            )
        except Exception:
            # A bad shard_engine, or a ring whose stored manifest rejects
            # the discovered membership: close whatever was already opened.
            for _, child in children:
                child.close()
            raise
    raise ConfigurationError(
        f"unknown storage engine {config.engine!r}; "
        "expected 'memory', 'sqlite', 'log', 'sharded' or 'ring'"
    )
