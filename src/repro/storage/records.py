"""Record model and codec shared by every storage engine.

A record is a key plus a JSON-encodable value.  Engines never interpret the
value; CrowdData's cache layer decides what goes inside (task descriptors,
task-run lists, lineage entries).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any

from repro.exceptions import StorageError


@dataclass(frozen=True)
class Record:
    """A single stored record.

    Attributes:
        key: Unique key within its table.
        value: JSON-encodable payload.
        version: Monotonically increasing per-key version, maintained by the
            engine on every put.
    """

    key: str
    value: Any
    version: int = 1

    def bump(self, new_value: Any) -> "Record":
        """Return a new record with *new_value* and an incremented version."""
        return Record(key=self.key, value=new_value, version=self.version + 1)


class RecordCodec:
    """Encodes and decodes record values to and from JSON text.

    The codec is deliberately strict: values that cannot round-trip through
    JSON raise :class:`repro.exceptions.StorageError` at write time rather
    than corrupting the database.
    """

    @staticmethod
    def encode(value: Any) -> str:
        """Serialise *value* to compact JSON text."""
        try:
            return json.dumps(value, sort_keys=True, separators=(",", ":"))
        except (TypeError, ValueError) as exc:
            raise StorageError(f"value is not JSON-encodable: {exc}") from exc

    @staticmethod
    def decode(text: str) -> Any:
        """Deserialise JSON *text* back into a Python value."""
        try:
            return json.loads(text)
        except (TypeError, ValueError) as exc:
            raise StorageError(f"stored value is not valid JSON: {exc}") from exc
