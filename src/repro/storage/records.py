"""Record model and pluggable value codecs shared by every storage engine.

A record is a key plus a JSON-encodable value.  Engines never interpret the
value; CrowdData's cache layer decides what goes inside (task descriptors,
task-run lists, lineage entries).

Values cross the engine boundary through a :class:`Codec`.  Two codecs ship:

* :class:`JsonCodec` (``"json"``) — the historical strict compact-JSON text
  codec, still the default.
* :class:`BinaryCodec` (``"binary"``) — a compact length-prefixed binary
  format (msgpack-style one-byte tags for str/int/float/bool/None/list/dict)
  that skips JSON text parsing on the hot path.

Both codecs normalise values identically on the JSON-value domain — in
particular non-string dict keys are coerced to strings exactly the way
``json.dumps`` coerces them — so engines stay one behavioural equivalence
class regardless of codec.  Values outside that domain raise
:class:`repro.exceptions.StorageError` at write time rather than corrupting
the database.
"""

from __future__ import annotations

import json
import struct
from dataclasses import dataclass
from typing import Any, Union

from repro.exceptions import StorageError

EncodedValue = Union[str, bytes]


@dataclass(frozen=True)
class Record:
    """A single stored record.

    Attributes:
        key: Unique key within its table.
        value: JSON-encodable payload.
        version: Monotonically increasing per-key version, maintained by the
            engine on every put.
    """

    key: str
    value: Any
    version: int = 1

    def bump(self, new_value: Any) -> "Record":
        """Return a new record with *new_value* and an incremented version."""
        return Record(key=self.key, value=new_value, version=self.version + 1)


class Codec:
    """Serialises record values to durable bytes/text and back.

    Subclasses must round-trip every JSON-encodable value to a value equal to
    what :class:`JsonCodec` round-trips it to, so that the choice of codec is
    invisible above :class:`repro.storage.engine.StorageEngine`.
    """

    #: Short identifier recorded in each engine's meta for rediscovery.
    name: str = "abstract"

    def encode(self, value: Any) -> EncodedValue:
        raise NotImplementedError

    def decode(self, data: EncodedValue) -> Any:
        raise NotImplementedError

    def encode_many(self, values: list) -> list:
        """Batch-encode *values*; the ``put_many`` hot path calls this."""
        encode = self.encode
        return [encode(value) for value in values]

    def decode_many(self, datas: list) -> list:
        """Batch-decode *datas*; the ``get_many``/scan hot path calls this."""
        decode = self.decode
        return [decode(data) for data in datas]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} name={self.name!r}>"


class JsonCodec(Codec):
    """The historical strict compact-JSON text codec (the default)."""

    name = "json"

    def encode(self, value: Any) -> str:
        try:
            return json.dumps(value, sort_keys=True, separators=(",", ":"))
        except (TypeError, ValueError) as exc:
            raise StorageError(f"value is not JSON-encodable: {exc}") from exc

    def decode(self, data: EncodedValue) -> Any:
        if isinstance(data, bytes):
            # A BLOB under a json codec means the store was written binary.
            raise StorageError(
                "stored value is binary but the engine codec is 'json'"
            )
        try:
            return json.loads(data)
        except (TypeError, ValueError) as exc:
            raise StorageError(f"stored value is not valid JSON: {exc}") from exc


# Binary format: one tag byte, then a payload.  Containers carry a varint
# element count; strings and ints a varint byte length (unsigned LEB128 —
# one byte for anything under 128, so short strings and small containers
# pay one prefix byte, not four).
_TAG_NONE = b"N"
_TAG_TRUE = b"T"
_TAG_FALSE = b"F"
_TAG_INT = b"I"
_TAG_FLOAT = b"D"
_TAG_STR = b"S"
_TAG_LIST = b"L"
_TAG_DICT = b"M"

_F64 = struct.Struct(">d")


def _write_varint(buffer: bytearray, value: int) -> None:
    while value > 0x7F:
        buffer.append((value & 0x7F) | 0x80)
        value >>= 7
    buffer.append(value)


def _read_varint(data: bytes, offset: int) -> tuple[int, int]:
    result = 0
    shift = 0
    while True:
        byte = data[offset]
        offset += 1
        result |= (byte & 0x7F) << shift
        if byte < 0x80:
            return result, offset
        shift += 7


def _json_key(key: Any) -> str:
    """Coerce a dict key to a string exactly as ``json.dumps`` does."""
    if isinstance(key, str):
        return key
    if key is True:
        return "true"
    if key is False:
        return "false"
    if key is None:
        return "null"
    if isinstance(key, int):
        return int.__repr__(key)
    if isinstance(key, float):
        return _json_float_text(key)
    raise TypeError(
        f"keys must be str, int, float, bool or None, not {type(key).__name__}"
    )


def _json_float_text(value: float) -> str:
    if value != value:
        return "NaN"
    if value == float("inf"):
        return "Infinity"
    if value == float("-inf"):
        return "-Infinity"
    return float.__repr__(value)


class BinaryCodec(Codec):
    """Compact length-prefixed binary codec.

    Equivalent to :class:`JsonCodec` on the JSON-value domain: dict keys are
    coerced to strings with the same rules (and mixed-type keys raise the
    same :class:`StorageError` ``json.dumps(sort_keys=True)`` would), so a
    value round-tripped through either codec compares equal.
    """

    name = "binary"

    def encode(self, value: Any) -> bytes:
        buffer = bytearray()
        try:
            self._write(buffer, value)
        except (TypeError, ValueError) as exc:
            raise StorageError(f"value is not JSON-encodable: {exc}") from exc
        return bytes(buffer)

    def encode_many(self, values: list) -> list:
        # One shared buffer for the whole batch: a single growing bytearray
        # then zero-copy slicing, instead of one allocation dance per value.
        buffer = bytearray()
        offsets = [0]
        try:
            for value in values:
                self._write(buffer, value)
                offsets.append(len(buffer))
        except (TypeError, ValueError) as exc:
            raise StorageError(f"value is not JSON-encodable: {exc}") from exc
        view = memoryview(buffer)
        return [bytes(view[offsets[i] : offsets[i + 1]]) for i in range(len(values))]

    def _write(self, buffer: bytearray, value: Any) -> None:
        if value is None:
            buffer += _TAG_NONE
        elif value is True:
            buffer += _TAG_TRUE
        elif value is False:
            buffer += _TAG_FALSE
        elif isinstance(value, str):
            raw = value.encode("utf-8")
            buffer += _TAG_STR
            _write_varint(buffer, len(raw))
            buffer += raw
        elif isinstance(value, int):
            raw = value.to_bytes((value.bit_length() + 8) // 8 or 1, "big", signed=True)
            buffer += _TAG_INT
            _write_varint(buffer, len(raw))
            buffer += raw
        elif isinstance(value, float):
            buffer += _TAG_FLOAT
            buffer += _F64.pack(value)
        elif isinstance(value, (list, tuple)):
            buffer += _TAG_LIST
            _write_varint(buffer, len(value))
            for item in value:
                self._write(buffer, item)
        elif isinstance(value, dict):
            # Sort by the *original* keys, mirroring json.dumps(sort_keys=
            # True): mixed str/int keys raise TypeError there and here.
            items = sorted(value.items()) if value else []
            buffer += _TAG_DICT
            _write_varint(buffer, len(items))
            for key, item in items:
                raw = _json_key(key).encode("utf-8")
                _write_varint(buffer, len(raw))
                buffer += raw
                self._write(buffer, item)
        else:
            raise TypeError(
                f"Object of type {type(value).__name__} is not JSON serializable"
            )

    def decode(self, data: EncodedValue) -> Any:
        if isinstance(data, str):
            raise StorageError(
                "stored value is JSON text but the engine codec is 'binary'"
            )
        try:
            value, offset = self._read(data, 0)
        except (IndexError, ValueError, struct.error, UnicodeDecodeError) as exc:
            raise StorageError(f"stored value is not valid binary: {exc}") from exc
        if offset != len(data):
            raise StorageError(
                f"stored value has {len(data) - offset} trailing bytes"
            )
        return value

    def _read(self, data: bytes, offset: int) -> tuple[Any, int]:
        tag = data[offset : offset + 1]
        if not tag:
            raise ValueError("truncated value: missing tag")
        offset += 1
        if tag == _TAG_NONE:
            return None, offset
        if tag == _TAG_TRUE:
            return True, offset
        if tag == _TAG_FALSE:
            return False, offset
        if tag == _TAG_STR:
            length, offset = _read_varint(data, offset)
            end = offset + length
            if end > len(data):
                raise ValueError("truncated string payload")
            return data[offset:end].decode("utf-8"), end
        if tag == _TAG_INT:
            length, offset = _read_varint(data, offset)
            end = offset + length
            if end > len(data):
                raise ValueError("truncated int payload")
            return int.from_bytes(data[offset:end], "big", signed=True), end
        if tag == _TAG_FLOAT:
            (value,) = _F64.unpack_from(data, offset)
            return value, offset + 8
        if tag == _TAG_LIST:
            count, offset = _read_varint(data, offset)
            items = []
            for _ in range(count):
                item, offset = self._read(data, offset)
                items.append(item)
            return items, offset
        if tag == _TAG_DICT:
            count, offset = _read_varint(data, offset)
            result = {}
            for _ in range(count):
                length, offset = _read_varint(data, offset)
                end = offset + length
                if end > len(data):
                    raise ValueError("truncated dict key")
                key = data[offset:end].decode("utf-8")
                item, offset = self._read(data, end)
                result[key] = item
            return result, offset
        raise ValueError(f"unknown tag byte {tag!r}")


#: Codec registry keyed by the name recorded in engine meta.
CODECS: dict[str, Codec] = {
    JsonCodec.name: JsonCodec(),
    BinaryCodec.name: BinaryCodec(),
}

DEFAULT_CODEC_NAME = JsonCodec.name


def resolve_codec(codec: Union[str, Codec, None]) -> Codec:
    """Return the :class:`Codec` for *codec* (name, instance, or None)."""
    if codec is None:
        return CODECS[DEFAULT_CODEC_NAME]
    if isinstance(codec, Codec):
        return codec
    try:
        return CODECS[codec]
    except KeyError:
        raise StorageError(
            f"unknown codec {codec!r}; expected one of {sorted(CODECS)}"
        ) from None


class RecordCodec:
    """Backwards-compatible static facade over the default JSON codec.

    Pre-codec-seam code (and a few validation-only call sites) use
    ``RecordCodec.encode``/``decode`` as static helpers; they remain the
    strict-JSON behaviour.
    """

    @staticmethod
    def encode(value: Any) -> str:
        """Serialise *value* to compact JSON text."""
        return CODECS["json"].encode(value)

    @staticmethod
    def decode(text: str) -> Any:
        """Deserialise JSON *text* back into a Python value."""
        return CODECS["json"].decode(text)
