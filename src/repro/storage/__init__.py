"""Persistence layer: durable tables backing CrowdData's fault recovery.

The paper stores the ``task`` and ``result`` columns of CrowdData in a
database so that re-running a crashed program behaves as if it had never
crashed.  This package provides that database behind a small engine
interface with three implementations:

* :class:`MemoryEngine` — non-durable, for tests and throwaway experiments.
* :class:`SqliteEngine` — the default, a single sharable file like the
  original Reprowd.
* :class:`LogStructuredEngine` — an append-only log with periodic snapshots,
  used to study recovery behaviour and crash injection at the storage level.
* :class:`ShardedEngine` — hash-partitions keys across N child engines
  (sqlite shard files by default) behind the same interface, merge-scanning
  shards to preserve global insertion order.
* :class:`ConsistentHashEngine` — a virtual-node hash ring over named child
  engines: the elastic sibling of the sharded engine, whose online
  ``rebalance`` grows or shrinks the membership while moving only the keys
  whose ring ownership changed.
"""

from repro.storage.engine import StorageEngine, open_engine
from repro.storage.memory_engine import MemoryEngine
from repro.storage.sqlite_engine import SqliteEngine
from repro.storage.log_engine import LogStructuredEngine
from repro.storage.sharded_engine import PartitionedEngine, ShardedEngine, shard_index
from repro.storage.ring import ConsistentHashEngine, DegradedRingWarning, HashRing
from repro.storage.records import (
    CODECS,
    BinaryCodec,
    Codec,
    JsonCodec,
    Record,
    RecordCodec,
    resolve_codec,
)
from repro.storage.schema import ColumnSpec, TableSchema

__all__ = [
    "StorageEngine",
    "open_engine",
    "MemoryEngine",
    "SqliteEngine",
    "LogStructuredEngine",
    "PartitionedEngine",
    "ShardedEngine",
    "ConsistentHashEngine",
    "DegradedRingWarning",
    "HashRing",
    "shard_index",
    "Record",
    "RecordCodec",
    "Codec",
    "JsonCodec",
    "BinaryCodec",
    "CODECS",
    "resolve_codec",
    "ColumnSpec",
    "TableSchema",
]
