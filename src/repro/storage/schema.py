"""Lightweight table-schema descriptions.

CrowdData tables are schemaless key/value tables at the engine level, but the
core layer attaches a :class:`TableSchema` to each logical table so that the
lineage and examination APIs can describe what each column means (Figure 1's
"CrowdData" box lists id/object/task/result columns).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable

from repro.exceptions import CrowdDataError


@dataclass(frozen=True)
class ColumnSpec:
    """Description of one CrowdData column.

    Attributes:
        name: Column name (``id``, ``object``, ``task``, ``result`` or a
            derived column such as ``mv``).
        persistent: Whether the column is stored durably.  The paper persists
            only ``task`` and ``result``; everything else is recomputed.
        description: Human-readable explanation used by the examination API.
    """

    name: str
    persistent: bool = False
    description: str = ""


@dataclass
class TableSchema:
    """Ordered collection of :class:`ColumnSpec` for one CrowdData table."""

    table_name: str
    columns: list[ColumnSpec] = field(default_factory=list)

    def add_column(self, spec: ColumnSpec) -> None:
        """Append *spec*, rejecting duplicate column names."""
        if self.has_column(spec.name):
            raise CrowdDataError(
                f"table {self.table_name!r} already has a column named {spec.name!r}"
            )
        self.columns.append(spec)

    def has_column(self, name: str) -> bool:
        """Return True when a column named *name* exists."""
        return any(column.name == name for column in self.columns)

    def column(self, name: str) -> ColumnSpec:
        """Return the spec of the column named *name*."""
        for spec in self.columns:
            if spec.name == name:
                return spec
        raise CrowdDataError(f"table {self.table_name!r} has no column named {name!r}")

    def column_names(self) -> list[str]:
        """Return column names in declaration order."""
        return [column.name for column in self.columns]

    def persistent_columns(self) -> list[str]:
        """Return the names of durable columns (``task``/``result`` style)."""
        return [column.name for column in self.columns if column.persistent]

    def describe(self) -> list[dict[str, Any]]:
        """Return a JSON-friendly description of every column."""
        return [
            {
                "name": column.name,
                "persistent": column.persistent,
                "description": column.description,
            }
            for column in self.columns
        ]

    @classmethod
    def standard(cls, table_name: str, derived: Iterable[str] = ()) -> "TableSchema":
        """Build the paper's standard CrowdData schema for *table_name*.

        The standard schema is: id, object (recomputable), task, result
        (persistent), plus any *derived* columns (recomputable).
        """
        schema = cls(table_name=table_name)
        schema.add_column(ColumnSpec("id", False, "row identifier"))
        schema.add_column(ColumnSpec("object", False, "input object (recomputable)"))
        schema.add_column(ColumnSpec("task", True, "published task descriptor"))
        schema.add_column(ColumnSpec("result", True, "collected crowd answers"))
        for name in derived:
            schema.add_column(ColumnSpec(name, False, f"derived column {name!r}"))
        return schema
