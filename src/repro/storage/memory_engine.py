"""In-memory storage engine.

Non-durable: crash-and-rerun experiments backed by this engine do not share
anything across processes.  It exists for unit tests, quick notebook-style
experiments, and as the reference implementation the durable engines are
property-tested against.
"""

from __future__ import annotations

import threading
from typing import Any, Iterable, Iterator, Sequence

from repro.exceptions import DuplicateKeyError, TableNotFoundError
from repro.storage.engine import StorageEngine, paginate_records
from repro.storage.records import Codec, Record, resolve_codec


class MemoryEngine(StorageEngine):
    """Dictionary-backed storage engine.

    Mutations are guarded by a lock so check-then-act writes (``put_new``,
    ``put_many(if_absent=True)``) stay atomic when several threads share one
    engine — which is exactly what two platform-store handles on one engine
    do in the multi-server concurrency suites.  Reads stay lock-free: dict
    reads are atomic under the GIL and readers tolerate seeing a batch's
    prefix, just like the durable engines' committed-prefix semantics.
    """

    engine_name = "memory"

    def __init__(self, codec: str | Codec | None = None) -> None:
        self._tables: dict[str, dict[str, Record]] = {}
        self._mutex = threading.RLock()
        self._closed = False
        # No durable meta to rediscover a codec from: used for validation
        # only, so memory accepts exactly the durable engines' value domain.
        self.codec = resolve_codec(codec)

    # -- table management --------------------------------------------------

    def create_table(self, table_name: str) -> None:
        with self._mutex:
            self._tables.setdefault(table_name, {})

    def drop_table(self, table_name: str) -> None:
        with self._mutex:
            self._tables.pop(table_name, None)

    def list_tables(self) -> list[str]:
        return sorted(self._tables)

    def has_table(self, table_name: str) -> bool:
        return table_name in self._tables

    # -- record access -----------------------------------------------------

    def _table(self, table_name: str) -> dict[str, Record]:
        try:
            return self._tables[table_name]
        except KeyError:
            raise TableNotFoundError(table_name) from None

    def put(self, table_name: str, key: str, value: Any) -> Record:
        # Round-trip through the codec so memory and durable engines accept
        # exactly the same set of values.
        self.codec.encode(value)
        with self._mutex:
            table = self._table(table_name)
            existing = table.get(key)
            record = existing.bump(value) if existing else Record(key=key, value=value)
            table[key] = record
            return record

    def put_new(self, table_name: str, key: str, value: Any) -> Record:
        with self._mutex:
            table = self._table(table_name)
            if key in table:
                raise DuplicateKeyError(table_name, key)
            return self.put(table_name, key, value)

    def get(self, table_name: str, key: str, default: Any = None) -> Any:
        record = self._table(table_name).get(key)
        return record.value if record is not None else default

    def get_record(self, table_name: str, key: str) -> Record | None:
        return self._table(table_name).get(key)

    def delete(self, table_name: str, key: str) -> bool:
        with self._mutex:
            return self._table(table_name).pop(key, None) is not None

    def contains(self, table_name: str, key: str) -> bool:
        return key in self._table(table_name)

    def scan(
        self, table_name: str, limit: int | None = None, start_after: str | None = None
    ) -> Iterator[Record]:
        # dict preserves insertion order, matching the durable engines.
        records = list(self._table(table_name).values())
        yield from paginate_records(records, table_name, limit, start_after)

    def count(self, table_name: str) -> int:
        return len(self._table(table_name))

    # -- bulk record access -------------------------------------------------

    def put_many(
        self,
        table_name: str,
        items: Iterable[tuple[str, Any]],
        if_absent: bool = False,
        *,
        defer_commit: bool = False,
    ) -> list[Record]:
        del defer_commit  # no durability barrier to defer
        items = list(items)
        # Validate the whole batch before mutating anything, so a bad value
        # cannot leave a half-applied batch (matches the durable engines).
        self.codec.encode_many([value for _, value in items])
        with self._mutex:
            table = self._table(table_name)
            records: list[Record] = []
            for key, value in items:
                existing = table.get(key)
                if if_absent and existing is not None:
                    records.append(existing)
                    continue
                record = existing.bump(value) if existing else Record(key=key, value=value)
                table[key] = record
                records.append(record)
            return records

    def get_many(
        self, table_name: str, keys: Sequence[str], default: Any = None
    ) -> list[Any]:
        table = self._table(table_name)
        values: list[Any] = []
        for key in keys:
            record = table.get(key)
            values.append(record.value if record is not None else default)
        return values

    # -- lifecycle ---------------------------------------------------------

    def flush(self) -> None:
        """No durable medium to flush to."""

    def close(self) -> None:
        self._closed = True
