"""Free-form text labelling / classification presenter."""

from __future__ import annotations

from typing import Any

from repro.presenters.base import BasePresenter, registry


@registry.register
class TextLabelPresenter(BasePresenter):
    """Show a text snippet and ask the worker to classify it.

    Candidates default to a sentiment-style three-way choice but callers
    typically pass their own label set (topic categories, spam/ham, ...).
    """

    task_type = "text_label"

    @classmethod
    def default_question(cls) -> str:
        return "Which label best describes this text?"

    @classmethod
    def default_candidates(cls) -> list[Any]:
        return ["Positive", "Neutral", "Negative"]

    def render_object(self, obj: Any) -> str:
        text = obj if isinstance(obj, str) else obj.get("text", str(obj))
        return f'<blockquote class="subject">{text}</blockquote>'
