"""Image-labelling presenter — the presenter used in Figure 2 of the paper."""

from __future__ import annotations

from typing import Any

from repro.presenters.base import BasePresenter, registry


@registry.register
class ImageLabelPresenter(BasePresenter):
    """Show one image and ask the worker to pick a label.

    Bob's experiment uses this presenter with the default Yes/No candidates:
    "Do you see a smiling face?" style questions over image URLs.
    """

    task_type = "image_label"

    @classmethod
    def default_question(cls) -> str:
        return "Does the image match the description?"

    def render_object(self, obj: Any) -> str:
        url = obj if isinstance(obj, str) else obj.get("url", "")
        caption = "" if isinstance(obj, str) else obj.get("caption", "")
        caption_html = f'<p class="caption">{caption}</p>' if caption else ""
        return f'<img class="subject" src="{url}" alt="task image"/>{caption_html}'
