"""Task presenters: the web user interfaces shown to crowd workers.

In the paper (Figure 2, step 2) Bob chooses a presenter such as
``ImageLabel`` for his experiment.  A presenter defines three things from
CrowdData's point of view:

* how a row's ``object`` becomes a task payload (``build_task_info``),
* the candidate answers a worker can give (``candidates``),
* how to validate and normalise a raw crowd answer (``validate_answer``).

Rendering produces an HTML string (the simulator has no browser), which keeps
the contract of the original system — one presenter per project — testable.
"""

from repro.presenters.base import BasePresenter, PresenterRegistry, registry
from repro.presenters.image_label import ImageLabelPresenter
from repro.presenters.image_cmp import ImageComparisonPresenter
from repro.presenters.text_cmp import TextComparisonPresenter
from repro.presenters.text_label import TextLabelPresenter
from repro.presenters.record_cmp import RecordComparisonPresenter

__all__ = [
    "BasePresenter",
    "PresenterRegistry",
    "registry",
    "ImageLabelPresenter",
    "ImageComparisonPresenter",
    "TextComparisonPresenter",
    "TextLabelPresenter",
    "RecordComparisonPresenter",
]
