"""Base presenter contract and the presenter registry."""

from __future__ import annotations

import abc
from typing import Any

from repro.exceptions import InvalidAnswerError, PresenterError


class BasePresenter(abc.ABC):
    """Contract every task presenter implements.

    Attributes:
        task_type: Stable identifier recorded in each task's ``info`` so that
            lineage and worker skill profiles can distinguish task kinds.
        question: The question displayed to the worker.
        candidates: The answers a worker may give; empty means free text.
    """

    task_type: str = "generic"

    def __init__(self, question: str = "", candidates: list[Any] | None = None):
        self.question = question or self.default_question()
        self.candidates = list(candidates) if candidates is not None else self.default_candidates()

    # -- hooks subclasses override ------------------------------------------------

    @classmethod
    def default_question(cls) -> str:
        """Question used when the caller does not supply one."""
        return "Please answer the task"

    @classmethod
    def default_candidates(cls) -> list[Any]:
        """Candidate answers used when the caller does not supply any."""
        return ["Yes", "No"]

    @abc.abstractmethod
    def render_object(self, obj: Any) -> str:
        """Return the HTML fragment presenting one row's ``object``."""

    # -- task construction ----------------------------------------------------------

    def build_task_info(self, obj: Any, true_answer: Any = None) -> dict[str, Any]:
        """Build the ``info`` payload published for one object.

        Args:
            obj: The row's object value.
            true_answer: Optional hidden ground truth forwarded to the
                simulated workers (real platforms simply ignore it).
        """
        info: dict[str, Any] = {
            "task_type": self.task_type,
            "question": self.question,
            "candidates": list(self.candidates),
            "object": obj,
        }
        if true_answer is not None:
            info["_true_answer"] = true_answer
        return info

    def render(self, obj: Any) -> str:
        """Return the full task HTML for *obj* (question + object + choices)."""
        choices = "".join(
            f'<button class="answer" value="{candidate}">{candidate}</button>'
            for candidate in self.candidates
        )
        return (
            f'<div class="reprowd-task {self.task_type}">'
            f"<p class=\"question\">{self.question}</p>"
            f"{self.render_object(obj)}"
            f'<div class="choices">{choices}</div>'
            f"</div>"
        )

    def template_html(self) -> str:
        """Return the project-level task-presenter template.

        Platforms store one HTML template per project and substitute each
        task's object into it client-side.  Presenters whose
        :meth:`render_object` needs a structured object cannot render the
        ``{{object}}`` placeholder directly, so this falls back to a generic
        skeleton for them.
        """
        try:
            return self.render("{{object}}")
        except PresenterError:
            choices = "".join(
                f'<button class="answer" value="{candidate}">{candidate}</button>'
                for candidate in self.candidates
            )
            return (
                f'<div class="reprowd-task {self.task_type}">'
                f'<p class="question">{self.question}</p>'
                '<div class="subject">{{object}}</div>'
                f'<div class="choices">{choices}</div>'
                "</div>"
            )

    # -- answer validation -------------------------------------------------------------

    def validate_answer(self, answer: Any) -> Any:
        """Validate and normalise a raw crowd answer.

        Raises:
            InvalidAnswerError: When candidates are declared and the answer
                is not one of them.
        """
        if not self.candidates:
            return answer
        if answer in self.candidates:
            return answer
        # Tolerate case differences for string candidates — real crowd
        # platforms frequently return differently-cased values.
        if isinstance(answer, str):
            for candidate in self.candidates:
                if isinstance(candidate, str) and candidate.lower() == answer.lower():
                    return candidate
        raise InvalidAnswerError(
            f"answer {answer!r} is not among the candidates {self.candidates!r}"
        )

    def describe(self) -> dict[str, Any]:
        """Return a JSON-friendly description (stored in task lineage)."""
        return {
            "task_type": self.task_type,
            "question": self.question,
            "candidates": list(self.candidates),
            "presenter": type(self).__name__,
        }


class PresenterRegistry:
    """Registry mapping ``task_type`` strings to presenter classes.

    The examination API uses the registry to rebuild the presenter Bob used
    from the description stored with his tasks.
    """

    def __init__(self) -> None:
        self._presenters: dict[str, type[BasePresenter]] = {}

    def register(self, presenter_cls: type[BasePresenter]) -> type[BasePresenter]:
        """Register *presenter_cls* under its ``task_type`` (decorator-friendly)."""
        task_type = presenter_cls.task_type
        if task_type in self._presenters and self._presenters[task_type] is not presenter_cls:
            raise PresenterError(f"task_type {task_type!r} is already registered")
        self._presenters[task_type] = presenter_cls
        return presenter_cls

    def get(self, task_type: str) -> type[BasePresenter]:
        """Return the presenter class registered for *task_type*."""
        try:
            return self._presenters[task_type]
        except KeyError:
            raise PresenterError(f"no presenter registered for task_type {task_type!r}") from None

    def known_types(self) -> list[str]:
        """Return every registered task type, sorted."""
        return sorted(self._presenters)

    def build(self, description: dict[str, Any]) -> BasePresenter:
        """Rebuild a presenter instance from :meth:`BasePresenter.describe` output."""
        presenter_cls = self.get(description["task_type"])
        return presenter_cls(
            question=description.get("question", ""),
            candidates=description.get("candidates"),
        )


#: Process-wide default registry; presenter modules register themselves here.
registry = PresenterRegistry()
