"""Text/record-pair comparison presenter used by entity resolution joins."""

from __future__ import annotations

from typing import Any

from repro.exceptions import PresenterError
from repro.presenters.base import BasePresenter, registry


@registry.register
class TextComparisonPresenter(BasePresenter):
    """Show two text snippets and ask whether they refer to the same entity.

    This is the presenter CrowdER-style joins publish their candidate pairs
    with: the object is a pair of strings (or a mapping with ``left`` and
    ``right``), and the answer is Yes (match) or No (non-match).
    """

    task_type = "text_cmp"

    @classmethod
    def default_question(cls) -> str:
        return "Do these two descriptions refer to the same real-world entity?"

    def render_object(self, obj: Any) -> str:
        left, right = _unpack_text_pair(obj)
        return (
            '<div class="pair">'
            f'<blockquote class="left">{left}</blockquote>'
            f'<blockquote class="right">{right}</blockquote>'
            "</div>"
        )


def _unpack_text_pair(obj: Any) -> tuple[str, str]:
    """Return the (left, right) texts of a pair object."""
    if isinstance(obj, dict):
        try:
            return str(obj["left"]), str(obj["right"])
        except KeyError as exc:
            raise PresenterError(f"pair object missing key: {exc}") from exc
    if isinstance(obj, (list, tuple)) and len(obj) == 2:
        return str(obj[0]), str(obj[1])
    raise PresenterError(
        f"text comparison expects a (left, right) pair, got {type(obj).__name__}"
    )
