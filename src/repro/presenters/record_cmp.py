"""Structured-record comparison presenter.

Entity-resolution workloads usually compare structured records (product name,
brand, price) rather than free text.  This presenter renders the two records
as aligned attribute tables, which is how CrowdER's original UI displayed
candidate pairs.
"""

from __future__ import annotations

from typing import Any, Mapping

from repro.exceptions import PresenterError
from repro.presenters.base import BasePresenter, registry


@registry.register
class RecordComparisonPresenter(BasePresenter):
    """Show two structured records side by side and ask if they match."""

    task_type = "record_cmp"

    @classmethod
    def default_question(cls) -> str:
        return "Do these two records describe the same real-world entity?"

    def render_object(self, obj: Any) -> str:
        left, right = _unpack_records(obj)
        keys = sorted(set(left) | set(right))
        rows = "".join(
            f"<tr><th>{key}</th><td>{left.get(key, '')}</td><td>{right.get(key, '')}</td></tr>"
            for key in keys
        )
        return (
            '<table class="pair">'
            "<tr><th>attribute</th><th>record A</th><th>record B</th></tr>"
            f"{rows}"
            "</table>"
        )


def _unpack_records(obj: Any) -> tuple[Mapping[str, Any], Mapping[str, Any]]:
    """Return the (left, right) record mappings of a pair object."""
    if isinstance(obj, dict) and "left" in obj and "right" in obj:
        left, right = obj["left"], obj["right"]
    elif isinstance(obj, (list, tuple)) and len(obj) == 2:
        left, right = obj
    else:
        raise PresenterError(
            f"record comparison expects a (left, right) pair, got {type(obj).__name__}"
        )
    if not isinstance(left, Mapping) or not isinstance(right, Mapping):
        raise PresenterError("record comparison expects mapping records on both sides")
    return left, right
