"""Image-comparison presenter: show two images and ask if they match."""

from __future__ import annotations

from typing import Any

from repro.exceptions import PresenterError
from repro.presenters.base import BasePresenter, registry


@registry.register
class ImageComparisonPresenter(BasePresenter):
    """Show two images side by side and ask whether they depict the same thing.

    Used by crowdsourced joins over image collections; the object is a pair
    ``(left_url, right_url)`` or a mapping with ``left``/``right`` keys.
    """

    task_type = "image_cmp"

    @classmethod
    def default_question(cls) -> str:
        return "Do these two images show the same object?"

    def render_object(self, obj: Any) -> str:
        left, right = _unpack_pair(obj)
        return (
            '<div class="pair">'
            f'<img class="left" src="{left}" alt="left image"/>'
            f'<img class="right" src="{right}" alt="right image"/>'
            "</div>"
        )


def _unpack_pair(obj: Any) -> tuple[str, str]:
    """Return the (left, right) URLs of a pair object."""
    if isinstance(obj, dict):
        try:
            return str(obj["left"]), str(obj["right"])
        except KeyError as exc:
            raise PresenterError(f"pair object missing key: {exc}") from exc
    if isinstance(obj, (list, tuple)) and len(obj) == 2:
        return str(obj[0]), str(obj[1])
    raise PresenterError(
        f"image comparison expects a (left, right) pair, got {type(obj).__name__}"
    )
