"""The simulated crowdsourcing platform server.

Holds projects, tasks and task runs in a pluggable
:class:`~repro.platform.store.TaskStore`; when asked to ``simulate_work`` it
draws workers from the pool, has them answer every pending assignment and
records one :class:`repro.platform.models.TaskRun` per answer.  Ground truth
for the simulated workers comes from an *answer oracle*: a callable mapping a
task's ``info`` payload to the hidden true answer (or None when no ground
truth is known, in which case workers guess among the candidates).

The server owns validation, redundancy policy and the work simulation; all
state — projects, tasks, task runs, dedup keys and id counters — lives in the
store.  With the default :class:`~repro.platform.store.MemoryTaskStore` the
behaviour is the original in-process simulator; with a
:class:`~repro.platform.store.DurableTaskStore` the platform itself survives
crash-and-rerun: a server reconstructed on the same storage engine resumes
with identical ids, identical dedup behaviour and working page cursors.

Result retrieval comes in three shapes, from smallest to largest scope:

* ``get_task_runs(task_id)`` — one task's answers (one round-trip per task,
  the seed behaviour);
* ``get_task_runs_for_project(project_id)`` — every task's answers as one
  dict (one round-trip, but the whole project resident in memory at once);
* the **streaming pipeline** — ``list_project_task_ids`` /
  ``get_task_runs_page`` return fixed-size pages in publication order with
  an exclusive task-id cursor (the storage layer's ``scan`` contract
  transplanted to the platform), and ``iter_task_runs_for_project`` chains
  the pages into a generator so a project larger than memory can be
  collected in bounded space.  Pages are stable under appends: tasks created
  while iterating (e.g. a republish) only ever land after the cursor.
"""

from __future__ import annotations

import re
from typing import Any, Callable, Iterator, Sequence

from repro.config import PlatformConfig
from repro.exceptions import PlatformError, ProjectNotFoundError, TaskNotFoundError
from repro.platform.assignment import AssignmentStrategy, RandomAssignment
from repro.platform.models import Project, Task, TaskRun
from repro.platform.store import TaskStore, open_task_store
from repro.utils.timing import SimulatedClock
from repro.workers.pool import WorkerPool

AnswerOracle = Callable[[dict[str, Any]], Any]

#: A validated task spec: (info, resolved redundancy, dedup key or None).
_ValidatedSpec = tuple[dict[str, Any], int, "str | None"]


def _default_oracle(task_info: dict[str, Any]) -> Any:
    """Oracle used when none is registered: look for a ``_true_answer`` field."""
    return task_info.get("_true_answer")


class PlatformServer:
    """In-process stand-in for a PyBossa server."""

    #: Tasks fetched per store page when walking a whole project internally.
    _work_page_size = 500

    def __init__(
        self,
        worker_pool: WorkerPool,
        config: PlatformConfig | None = None,
        assignment: AssignmentStrategy | None = None,
        clock: SimulatedClock | None = None,
        answer_oracle: AnswerOracle | None = None,
        store: TaskStore | None = None,
    ):
        """Create a server backed by *worker_pool*.

        Args:
            worker_pool: The simulated crowd answering tasks.
            config: Platform configuration (API key, default redundancy...).
            assignment: Worker-selection policy; random when omitted.
            clock: Simulated clock shared with the rest of the experiment.
            answer_oracle: Maps a task's ``info`` to its hidden true answer.
            store: Task store holding the server's state.  When omitted it
                is built from ``config.store`` / ``config.store_engine``
                (the default configuration yields the in-memory store).
                Passing a :class:`DurableTaskStore` opened on a previously
                used engine *reopens* that platform: ids, dedup keys and
                page cursors resume where the dead server left off.
        """
        self.config = config or PlatformConfig()
        self.worker_pool = worker_pool
        self.assignment = assignment or RandomAssignment()
        self.clock = clock or SimulatedClock()
        self.answer_oracle = answer_oracle or _default_oracle
        self.store = store or open_task_store(self.config)
        # A reopened durable store may carry timestamps from a previous
        # life while this clock starts fresh; fast-forward so nothing new
        # is ever stamped before the surviving answers.
        latest = self.store.latest_timestamp()
        if latest > self.clock.now:
            self.clock.advance(latest - self.clock.now)

    # -- authentication -------------------------------------------------------

    def authenticate(self, api_key: str) -> bool:
        """Return True when *api_key* matches the configured key."""
        return api_key == self.config.api_key

    def require_auth(self, api_key: str) -> None:
        """Raise :class:`PlatformError` unless *api_key* is valid."""
        if not self.authenticate(api_key):
            raise PlatformError("invalid API key")

    # -- projects -----------------------------------------------------------------

    def create_project(
        self, name: str, description: str = "", task_presenter: str = ""
    ) -> Project:
        """Create a project; returns the existing one if *name* is taken.

        Idempotent creation is what lets a re-run of Bob's code map onto the
        same server-side project instead of creating a duplicate.
        """
        existing_id = self.store.find_project_id(name)
        if existing_id is not None:
            existing = self.store.get_project(existing_id)
            if existing is not None:
                return existing
            # The name maps to a project whose record is gone (a deleted
            # project's stale mapping): fall through and create fresh —
            # put_project takes the dead mapping over.
        project = Project(
            project_id=self.store.allocate_project_id(),
            name=name,
            short_name=self._short_name(name),
            description=description,
            task_presenter=task_presenter,
            created_at=self.clock.now,
        )
        # put_project arbitrates concurrent same-name creates; whoever won
        # is the project every caller must see.
        return self.store.put_project(project)

    @staticmethod
    def _short_name(name: str) -> str:
        slug = re.sub(r"[^a-z0-9]+", "-", name.lower()).strip("-")
        return slug or "project"

    def get_project(self, project_id: int) -> Project:
        """Return the project with *project_id*."""
        project = self.store.get_project(project_id)
        if project is None:
            raise ProjectNotFoundError(project_id)
        return project

    def find_project(self, name: str) -> Project | None:
        """Return the project named *name*, or None."""
        project_id = self.store.find_project_id(name)
        return self.store.get_project(project_id) if project_id is not None else None

    def list_projects(self) -> list[Project]:
        """Return every project ordered by id."""
        return [self.store.get_project(pid) for pid in self.store.list_project_ids()]

    def delete_project(self, project_id: int) -> None:
        """Delete a project together with its tasks and task runs."""
        self.store.remove_project(self.get_project(project_id))

    # -- tasks -----------------------------------------------------------------------

    def create_task(
        self,
        project_id: int,
        info: dict[str, Any],
        n_assignments: int | None = None,
        dedup_key: str | None = None,
    ) -> Task:
        """Publish a task in *project_id* and return it.

        Args:
            project_id: The owning project.
            info: Task payload shown to workers.
            n_assignments: Requested redundancy (platform default when None).
            dedup_key: Optional client-supplied idempotency key.  When a
                live task of the same project was already created with this
                key, that task is returned instead of a duplicate — the
                property that makes retried and re-run batch publishes safe.
        """
        self.get_project(project_id)
        redundancy = self._check_redundancy(n_assignments)
        return self._create_tasks(project_id, [(info, redundancy, dedup_key)])[0]

    def create_tasks(
        self, project_id: int, task_specs: Sequence[dict[str, Any]]
    ) -> list[Task]:
        """Publish a batch of tasks in one call; return them in spec order.

        Each spec is a dict with ``info`` (required), ``n_assignments`` and
        ``dedup_key`` (both optional) — the same parameters
        :meth:`create_task` takes per call.  All specs are validated before
        any task is created, so a bad spec can never leave the batch
        half-published; specs whose ``dedup_key`` matches an existing task
        return that task, making the whole batch idempotent under client
        retries and crash-and-rerun.
        """
        self.get_project(project_id)
        validated: list[_ValidatedSpec] = []
        for spec in task_specs:
            if "info" not in spec:
                raise PlatformError(f"task spec is missing 'info': {spec!r}")
            redundancy = self._check_redundancy(spec.get("n_assignments"))
            validated.append((spec["info"], redundancy, spec.get("dedup_key")))
        return self._create_tasks(project_id, validated)

    def _create_tasks(
        self, project_id: int, validated: Sequence[_ValidatedSpec]
    ) -> list[Task]:
        """Create the already-validated *validated* specs as one store batch.

        Dedup keys are resolved in bulk first (one store lookup for the
        whole batch plus one liveness check on the named tasks — a stale
        mapping left by a deleted task must not resurrect it).  The
        remaining specs get consecutive ids from one counter reservation and
        land in the store as a single ``add_tasks`` batch, so the durable
        cost of a publish stays O(1) engine round-trips in the batch size.

        The resolve step is only an advisory fast path: between it and the
        write, *another server process* on the same store may create the
        same keys.  Ownership is therefore decided by
        ``store.claim_dedup_keys`` (atomic first-writer-wins): specs whose
        claim lost discard their candidate task — its reserved id becomes
        an unused gap — and return the concurrent winner instead, which is
        what keeps a batch exactly-once under cross-process races.
        """
        dedup_keys = [key for _, _, key in validated if key is not None]
        live: dict[str, Task] = {}
        if dedup_keys:
            resolved = self.store.resolve_dedup_keys(project_id, dedup_keys)
            if resolved:
                keys = list(resolved)
                tasks = self.store.get_tasks([resolved[key] for key in keys])
                live = {key: task for key, task in zip(keys, tasks) if task is not None}
            if live:
                # A replay after a crash inside a previous add_tasks batch
                # may find live tasks whose index entries were never
                # written; healing them here is what makes the publish
                # replay converge instead of leaving invisible tasks.
                distinct = {task.task_id: task for task in live.values()}
                self.store.ensure_indexed(list(distinct.values()))

        # Plan each spec: an existing task (dedup hit) or an index into the
        # to-be-created list.  A dedup key repeated within the batch dedupes
        # onto its first occurrence, exactly like sequential single creates.
        new_specs: list[_ValidatedSpec] = []
        slots: list[Task | int] = []
        claimed: dict[str, int] = {}
        for info, redundancy, dedup_key in validated:
            if dedup_key is not None:
                if dedup_key in live:
                    slots.append(live[dedup_key])
                    continue
                if dedup_key in claimed:
                    slots.append(claimed[dedup_key])
                    continue
                claimed[dedup_key] = len(new_specs)
            slots.append(len(new_specs))
            new_specs.append((info, redundancy, dedup_key))

        created: list[Task] = []
        if new_specs:
            first_id = self.store.allocate_task_ids(len(new_specs))
            now = self.clock.now
            created = [
                Task(
                    task_id=first_id + offset,
                    project_id=project_id,
                    info=dict(info),
                    n_assignments=redundancy,
                    created_at=now,
                )
                for offset, (info, redundancy, _) in enumerate(new_specs)
            ]
            created = self._claim_and_store(project_id, new_specs, created)
        return [slot if isinstance(slot, Task) else created[slot] for slot in slots]

    def _claim_and_store(
        self,
        project_id: int,
        new_specs: Sequence[_ValidatedSpec],
        created: Sequence[Task],
    ) -> list[Task]:
        """Claim the keyed specs' dedup keys, store what we won, and return
        one task per spec — ours where the claim won (or no key was given),
        the concurrent winner's where it lost.
        """
        keyed = [
            (key, task.task_id)
            for task, (_, _, key) in zip(created, new_specs)
            if key is not None
        ]
        winners: dict[str, int] = {}
        if keyed:
            # Stage our candidate records *before* claiming (record-first,
            # like put_project): any server whose claim beats ours has
            # already staged, so a lost claim always resolves to a live
            # winner record rather than racing the winner's add_tasks.
            self.store.stage_tasks(
                [task for task, (_, _, key) in zip(created, new_specs) if key is not None]
            )
            winners = self.store.claim_dedup_keys(project_id, keyed)

        # A lost claim names a task some other server just created; fetch
        # those tasks in one read.  A winner id whose task is *dead* means
        # the claim lost to a stale mapping (its task was deleted after the
        # liveness fast path) — treat that as won: keep our task, and let
        # add_tasks overwrite the mapping, exactly as the store contract
        # for stale keys has always promised.
        lost = {
            key: task_id
            for key, task_id in winners.items()
            if task_id != dict(keyed)[key]
        }
        winner_tasks: dict[int, Task] = {}
        if lost:
            for task in self.store.get_tasks(sorted(set(lost.values()))):
                if task is not None:
                    winner_tasks[task.task_id] = task
            if winner_tasks:
                # Same torn-batch healing as the resolve fast path: the
                # winner's index entries may not have landed yet.
                self.store.ensure_indexed(list(winner_tasks.values()))

        materialised: list[Task] = []
        kept: list[Task] = []
        kept_keys: list[str | None] = []
        discarded: list[Task] = []
        for task, (_, _, key) in zip(created, new_specs):
            winner = winner_tasks.get(lost.get(key)) if key is not None else None
            if winner is not None:
                materialised.append(winner)
                discarded.append(task)
                continue
            materialised.append(task)
            kept.append(task)
            kept_keys.append(key)
        if discarded:
            # Our staged records for lost claims would otherwise leak as
            # unreachable rows.
            self.store.discard_staged(discarded)
        if kept:
            self.store.add_tasks(kept, kept_keys)
        return materialised

    def _check_redundancy(self, n_assignments: int | None) -> int:
        redundancy = (
            self.config.default_redundancy if n_assignments is None else n_assignments
        )
        if redundancy <= 0:
            raise PlatformError(f"n_assignments must be positive, got {redundancy}")
        return redundancy

    def get_task(self, task_id: int) -> Task:
        """Return the task with *task_id*."""
        task = self.store.get_task(task_id)
        if task is None:
            raise TaskNotFoundError(task_id)
        return task

    def list_tasks(self, project_id: int) -> list[Task]:
        """Return every task of *project_id* in publication order."""
        self.get_project(project_id)
        tasks = self.store.get_tasks(self.store.project_task_ids(project_id))
        # A crash mid-delete can leave an index entry whose task record is
        # already gone; surface the live tasks, not a None.
        return [task for task in tasks if task is not None]

    def delete_task(self, task_id: int) -> None:
        """Delete a task and its task runs."""
        self.store.remove_task(self.get_task(task_id))

    def extend_task_redundancy(self, task_id: int, extra: int) -> Task:
        """Request *extra* additional assignments for an existing task.

        Used by adaptive quality control: ambiguous tasks get more answers
        after their initial assignments disagree.
        """
        if extra <= 0:
            raise PlatformError(f"extra assignments must be positive, got {extra}")
        task = self.get_task(task_id)
        task.n_assignments += extra
        task.completed_at = None
        self.store.update_task(task)
        return task

    def extend_tasks_redundancy(self, extensions: dict[int, int]) -> list[Task]:
        """Extend several tasks' redundancy in one round-trip.

        The whole batch is validated before anything mutates — an unknown
        task id or non-positive extra leaves every task untouched, so a
        caller that charges budget per accepted extension never observes a
        half-applied batch from a rejected request.  Returns the updated
        tasks in the batch's iteration order.
        """
        items: list[tuple[Task, int]] = []
        for task_id, extra in extensions.items():
            if extra <= 0:
                raise PlatformError(
                    f"extra assignments must be positive, got {extra} "
                    f"for task {task_id}"
                )
            items.append((self.get_task(task_id), extra))
        tasks: list[Task] = []
        for task, extra in items:
            task.n_assignments += extra
            task.completed_at = None
            self.store.update_task(task)
            tasks.append(task)
        return tasks

    # -- task runs --------------------------------------------------------------------

    def get_task_runs(self, task_id: int) -> list[TaskRun]:
        """Return the task runs collected so far for *task_id*."""
        self.get_task(task_id)
        return self.store.runs_for_task(task_id)

    def project_task_runs(self, project_id: int) -> list[TaskRun]:
        """Return every task run of *project_id*, grouped by task order."""
        self.get_project(project_id)
        runs: list[TaskRun] = []
        for task_runs in self.store.runs_for_tasks(
            self.store.project_task_ids(project_id)
        ):
            runs.extend(task_runs)
        return runs

    def get_task_runs_for_project(self, project_id: int) -> dict[int, list[TaskRun]]:
        """Return every task's runs of *project_id*, keyed by task id.

        One call replaces a :meth:`get_task_runs` round-trip per task when
        collecting a whole experiment; tasks with no answers yet map to an
        empty list, so membership also tells the caller which cached task
        ids the platform still knows about.
        """
        self.get_project(project_id)
        task_ids = self.store.project_task_ids(project_id)
        return dict(zip(task_ids, self.store.runs_for_tasks(task_ids)))

    def _task_id_page(
        self, project_id: int, limit: int, start_after: int | None
    ) -> list[int]:
        """One page of task ids of *project_id* after the exclusive cursor."""
        if limit <= 0:
            raise PlatformError(f"page limit must be positive, got {limit}")
        self.get_project(project_id)
        return self.store.task_id_page(project_id, limit, start_after)

    def list_project_task_ids(
        self, project_id: int, limit: int, start_after: int | None = None
    ) -> list[int]:
        """One page of the project's task ids, in publication order.

        ``start_after`` is an exclusive task-id cursor (the last id of the
        previous page); an id the project does not contain raises
        :class:`PlatformError`.  This is the cheap membership stream the
        collection path uses to detect stale cached tasks without shipping
        any task runs.  On a durable store the cursor survives a server
        restart: the reopened server serves the next page as if nothing
        happened.
        """
        return self._task_id_page(project_id, limit, start_after)

    def get_task_runs_page(
        self, project_id: int, limit: int, start_after: int | None = None
    ) -> list[tuple[int, list[TaskRun]]]:
        """One page of ``(task_id, task_runs)`` pairs, in publication order.

        Same cursor contract as :meth:`list_project_task_ids`; at most
        *limit* tasks' runs are materialised per call, which is what bounds
        the memory footprint of a streaming collection.
        """
        page = self._task_id_page(project_id, limit, start_after)
        return list(zip(page, self.store.runs_for_tasks(page)))

    def _task_id_slice(self, project_id: int, limit: int, offset: int) -> list[int]:
        """One offset-addressed slice of the project's task ids."""
        if limit <= 0:
            raise PlatformError(f"slice limit must be positive, got {limit}")
        if offset < 0:
            raise PlatformError(f"slice offset must be >= 0, got {offset}")
        self.get_project(project_id)
        return self.store.task_id_slice(project_id, limit, offset)

    def list_project_task_ids_slice(
        self, project_id: int, limit: int, offset: int = 0
    ) -> list[int]:
        """One offset-addressed slice of task ids, in publication order.

        Unlike the cursor pages, slices at different offsets are
        independent of each other, so a pipelined client can fetch several
        concurrently.  Slices are stable under appends (new tasks only ever
        land at higher offsets) but, unlike cursor pages, *not* under
        concurrent deletions, which shift later offsets down — the cursor
        API remains the general-purpose stream.  An offset at or past the
        end returns ``[]`` rather than raising, because a speculative
        fetch beyond the (unknown) end of the project is how the pipelined
        iterator discovers that end.
        """
        return self._task_id_slice(project_id, limit, offset)

    def get_task_runs_slice(
        self, project_id: int, limit: int, offset: int = 0
    ) -> list[tuple[int, list[TaskRun]]]:
        """One offset-addressed slice of ``(task_id, task_runs)`` pairs.

        Same offset contract as :meth:`list_project_task_ids_slice`; at
        most *limit* tasks' runs are materialised per call.
        """
        page = self._task_id_slice(project_id, limit, offset)
        return list(zip(page, self.store.runs_for_tasks(page)))

    def iter_task_runs_for_project(
        self, project_id: int, page_size: int = 500
    ) -> Iterator[tuple[int, list[TaskRun]]]:
        """Generate every task's ``(task_id, runs)`` pair, one page at a time.

        Streaming sibling of :meth:`get_task_runs_for_project`: identical
        contents, but only *page_size* tasks' runs are resident at once.
        """
        cursor: int | None = None
        while True:
            page = self.get_task_runs_page(project_id, page_size, start_after=cursor)
            yield from page
            if len(page) < page_size:
                return
            cursor = page[-1][0]

    def _iter_task_id_pages(self, project_id: int) -> Iterator[list[int]]:
        """Walk a project's task-id pages — the one cursor loop every
        internal whole-project walk shares."""
        cursor: int | None = None
        while True:
            page = self.store.task_id_page(project_id, self._work_page_size, cursor)
            if page:
                yield page
            if len(page) < self._work_page_size:
                return
            cursor = page[-1]

    def _iter_tasks(self, project_id: int) -> Iterator[Task]:
        """Walk a project's tasks in publication order, one store page at a time."""
        for page in self._iter_task_id_pages(project_id):
            for task in self.store.get_tasks(page):
                if task is not None:
                    yield task

    def _iter_task_run_counts(self, project_id: int) -> Iterator[tuple[Task, int]]:
        """Walk ``(task, collected-run count)`` pairs in bounded memory.

        One id page, one bulk task read and one bulk run-count read per
        ``_work_page_size`` chunk, so completion checks over a project
        larger than memory never materialise it.
        """
        for page in self._iter_task_id_pages(project_id):
            counts = self.store.run_counts_for_tasks(page)
            for task, count in zip(self.store.get_tasks(page), counts):
                if task is not None:
                    yield task, count

    def pending_assignments(self, project_id: int | None = None) -> int:
        """Return the number of assignments still waiting for a worker."""
        if project_id is None:
            project_ids = self.store.list_project_ids()
        else:
            self.get_project(project_id)
            project_ids = [project_id]
        return sum(
            max(0, task.n_assignments - count)
            for pid in project_ids
            for task, count in self._iter_task_run_counts(pid)
        )

    def is_task_complete(self, task_id: int) -> bool:
        """Return True when the task has received all requested answers."""
        task = self.get_task(task_id)
        return self.store.run_count(task_id) >= task.n_assignments

    def is_project_complete(self, project_id: int) -> bool:
        """Return True when every task of the project is complete."""
        self.get_project(project_id)
        return all(
            count >= task.n_assignments
            for task, count in self._iter_task_run_counts(project_id)
        )

    # -- work simulation -----------------------------------------------------------------

    def simulate_work(
        self, project_id: int | None = None, max_assignments: int | None = None
    ) -> int:
        """Have simulated workers answer pending assignments.

        Args:
            project_id: Restrict the simulation to one project (all when None).
            max_assignments: Stop after this many new answers (no limit when
                None) — used by crash-injection experiments to crash the
                experiment mid-collection.

        Returns:
            The number of task runs created.
        """
        created = 0
        if project_id is None:
            project_ids = self.store.list_project_ids()
        else:
            self.get_project(project_id)
            project_ids = [project_id]
        try:
            for pid in project_ids:
                for task in self._iter_tasks(pid):
                    created += self._fill_task(task, max_assignments, created)
                    if max_assignments is not None and created >= max_assignments:
                        return created
            return created
        finally:
            # With a run-append batch (PlatformConfig.append_batch_size >
            # 1) the per-task writes above may still sit in the store's
            # write-behind buffer; flushing the appends restores the
            # call's durability contract — when simulate_work returns,
            # every answer it created is on the engine.  (Not a full
            # store flush: write-through stores must not pay an extra
            # engine commit/fsync per call.)
            self.store.flush_appends()

    def _fill_task(self, task: Task, max_assignments: int | None, created_so_far: int) -> int:
        """Fill one task's missing assignments; return answers created.

        All new runs of the task land in the store as one ``append_runs``
        batch — on a durable store that is one engine write per task, and a
        crash between tasks leaves whole-task prefixes that a rerun of
        ``simulate_work`` tops up idempotently.
        """
        runs = self.store.runs_for_task(task.task_id)
        missing = task.n_assignments - len(runs)
        if missing <= 0:
            if task.completed_at is None:
                # Heals the crash window between a durable append_runs and
                # its update_task: the answers landed but the completion
                # stamp did not, and no further answers will ever be
                # created to set it.  Stamp with the final answer's own
                # submission time, never before it.
                task.completed_at = max(
                    (run.submitted_at for run in runs), default=self.clock.now
                )
                self.store.update_task(task)
            return 0
        if max_assignments is not None:
            missing = min(missing, max(0, max_assignments - created_so_far))
            if missing == 0:
                return 0
        already_assigned = {run.worker_id for run in runs}
        true_answer = self.answer_oracle(task.info)
        candidates = list(task.info.get("candidates") or [])
        if not candidates:
            # Without declared candidates, workers at least see the true
            # answer (if any) plus a generic binary choice, so behaviours
            # always have something to pick from.
            candidates = ["Yes", "No"] if true_answer is None else [true_answer, "No"]
        task_type = task.info.get("task_type")
        answers: list[tuple[str, Any, float, float]] = []
        for _ in range(missing):
            collected = len(runs) + len(answers)
            worker = self._pick_worker(
                task, already_assigned, task.n_assignments - collected
            )
            already_assigned.add(worker.worker_id)
            answer, latency = worker.answer(
                candidates,
                true_answer,
                self.worker_pool.rng,
                task_type=task_type,
            )
            self.clock.advance(latency)
            answers.append((worker.worker_id, answer, latency, self.clock.now))
        # Ids are reserved after the answers so the store can persist the
        # advanced clock in the same counter write; the reservation still
        # lands before the runs themselves, so a crash in between leaves an
        # id gap, never a reused id.
        first_run_id = self.store.allocate_run_ids(missing, clock_time=self.clock.now)
        new_runs = [
            TaskRun(
                run_id=first_run_id + offset,
                task_id=task.task_id,
                project_id=task.project_id,
                worker_id=worker_id,
                answer=answer,
                submitted_at=submitted_at,
                latency_seconds=latency,
                assignment_order=len(runs) + offset + 1,
            )
            for offset, (worker_id, answer, latency, submitted_at) in enumerate(answers)
        ]
        self.store.append_runs(task.task_id, new_runs)
        if len(runs) + len(new_runs) >= task.n_assignments and task.completed_at is None:
            task.completed_at = self.clock.now
            self.store.update_task(task)
        return len(new_runs)

    def _pick_worker(self, task: Task, exclude: set[str], remaining: int):
        """Pick a worker for *task* honouring distinct-worker redundancy."""
        if len(exclude) >= len(self.worker_pool):
            # Redundancy exceeds pool size; fall back to reusing workers
            # rather than deadlocking the experiment.
            return self.worker_pool.draw()
        workers = self.assignment.assign(self.worker_pool, 1) if remaining else []
        if workers and workers[0].worker_id not in exclude:
            return workers[0]
        return self.worker_pool.draw(exclude=exclude)

    # -- introspection -------------------------------------------------------------------

    def statistics(self) -> dict[str, Any]:
        """Return platform-wide counters for dashboards and tests."""
        # describe() embeds counts(), so read them from it rather than
        # paying the store's table counts twice.
        store_info = self.store.describe()
        return {
            "projects": store_info["projects"],
            "tasks": store_info["tasks"],
            "task_runs": store_info["task_runs"],
            "pending_assignments": self.pending_assignments(),
            "clock": self.clock.now,
            "workers": self.worker_pool.statistics(),
            "store": store_info,
        }

    # -- lifecycle -----------------------------------------------------------------------

    def flush(self) -> None:
        """Flush the task store's buffered writes to durable storage."""
        self.store.flush()

    def close(self) -> None:
        """Close the task store (and any engine the store owns)."""
        self.store.close()
