"""The simulated crowdsourcing platform server.

Holds projects, tasks and task runs; when asked to ``simulate_work`` it draws
workers from the pool, has them answer every pending assignment and records
one :class:`repro.platform.models.TaskRun` per answer.  Ground truth for the
simulated workers comes from an *answer oracle*: a callable mapping a task's
``info`` payload to the hidden true answer (or None when no ground truth is
known, in which case workers guess among the candidates).

Result retrieval comes in three shapes, from smallest to largest scope:

* ``get_task_runs(task_id)`` — one task's answers (one round-trip per task,
  the seed behaviour);
* ``get_task_runs_for_project(project_id)`` — every task's answers as one
  dict (one round-trip, but the whole project resident in memory at once);
* the **streaming pipeline** — ``list_project_task_ids`` /
  ``get_task_runs_page`` return fixed-size pages in publication order with
  an exclusive task-id cursor (the storage layer's ``scan`` contract
  transplanted to the platform), and ``iter_task_runs_for_project`` chains
  the pages into a generator so a project larger than memory can be
  collected in bounded space.  Pages are stable under appends: tasks created
  while iterating (e.g. a republish) only ever land after the cursor.
"""

from __future__ import annotations

import bisect
import re
from typing import Any, Callable, Iterable, Iterator, Sequence

from repro.config import PlatformConfig
from repro.exceptions import PlatformError, ProjectNotFoundError, TaskNotFoundError
from repro.platform.assignment import AssignmentStrategy, RandomAssignment
from repro.platform.models import Project, Task, TaskRun
from repro.utils.timing import SimulatedClock
from repro.workers.pool import WorkerPool

AnswerOracle = Callable[[dict[str, Any]], Any]


def _default_oracle(task_info: dict[str, Any]) -> Any:
    """Oracle used when none is registered: look for a ``_true_answer`` field."""
    return task_info.get("_true_answer")


class PlatformServer:
    """In-process stand-in for a PyBossa server."""

    def __init__(
        self,
        worker_pool: WorkerPool,
        config: PlatformConfig | None = None,
        assignment: AssignmentStrategy | None = None,
        clock: SimulatedClock | None = None,
        answer_oracle: AnswerOracle | None = None,
    ):
        """Create a server backed by *worker_pool*.

        Args:
            worker_pool: The simulated crowd answering tasks.
            config: Platform configuration (API key, default redundancy...).
            assignment: Worker-selection policy; random when omitted.
            clock: Simulated clock shared with the rest of the experiment.
            answer_oracle: Maps a task's ``info`` to its hidden true answer.
        """
        self.config = config or PlatformConfig()
        self.worker_pool = worker_pool
        self.assignment = assignment or RandomAssignment()
        self.clock = clock or SimulatedClock()
        self.answer_oracle = answer_oracle or _default_oracle

        self._projects: dict[int, Project] = {}
        self._projects_by_name: dict[str, int] = {}
        self._tasks: dict[int, Task] = {}
        self._tasks_by_project: dict[int, list[int]] = {}
        self._tasks_by_dedup: dict[tuple[int, str], int] = {}
        self._task_runs: dict[int, list[TaskRun]] = {}
        self._next_project_id = 1
        self._next_task_id = 1
        self._next_run_id = 1

    # -- authentication -------------------------------------------------------

    def authenticate(self, api_key: str) -> bool:
        """Return True when *api_key* matches the configured key."""
        return api_key == self.config.api_key

    def require_auth(self, api_key: str) -> None:
        """Raise :class:`PlatformError` unless *api_key* is valid."""
        if not self.authenticate(api_key):
            raise PlatformError("invalid API key")

    # -- projects -----------------------------------------------------------------

    def create_project(
        self, name: str, description: str = "", task_presenter: str = ""
    ) -> Project:
        """Create a project; returns the existing one if *name* is taken.

        Idempotent creation is what lets a re-run of Bob's code map onto the
        same server-side project instead of creating a duplicate.
        """
        if name in self._projects_by_name:
            return self._projects[self._projects_by_name[name]]
        project = Project(
            project_id=self._next_project_id,
            name=name,
            short_name=self._short_name(name),
            description=description,
            task_presenter=task_presenter,
            created_at=self.clock.now,
        )
        self._projects[project.project_id] = project
        self._projects_by_name[name] = project.project_id
        self._tasks_by_project[project.project_id] = []
        self._next_project_id += 1
        return project

    @staticmethod
    def _short_name(name: str) -> str:
        slug = re.sub(r"[^a-z0-9]+", "-", name.lower()).strip("-")
        return slug or "project"

    def get_project(self, project_id: int) -> Project:
        """Return the project with *project_id*."""
        try:
            return self._projects[project_id]
        except KeyError:
            raise ProjectNotFoundError(project_id) from None

    def find_project(self, name: str) -> Project | None:
        """Return the project named *name*, or None."""
        project_id = self._projects_by_name.get(name)
        return self._projects.get(project_id) if project_id is not None else None

    def list_projects(self) -> list[Project]:
        """Return every project ordered by id."""
        return [self._projects[pid] for pid in sorted(self._projects)]

    def delete_project(self, project_id: int) -> None:
        """Delete a project together with its tasks and task runs."""
        project = self.get_project(project_id)
        for task_id in self._tasks_by_project.pop(project_id, []):
            self._tasks.pop(task_id, None)
            self._task_runs.pop(task_id, None)
        self._tasks_by_dedup = {
            key: task_id
            for key, task_id in self._tasks_by_dedup.items()
            if key[0] != project_id
        }
        self._projects_by_name.pop(project.name, None)
        del self._projects[project_id]

    # -- tasks -----------------------------------------------------------------------

    def create_task(
        self,
        project_id: int,
        info: dict[str, Any],
        n_assignments: int | None = None,
        dedup_key: str | None = None,
    ) -> Task:
        """Publish a task in *project_id* and return it.

        Args:
            project_id: The owning project.
            info: Task payload shown to workers.
            n_assignments: Requested redundancy (platform default when None).
            dedup_key: Optional client-supplied idempotency key.  When a
                live task of the same project was already created with this
                key, that task is returned instead of a duplicate — the
                property that makes retried and re-run batch publishes safe.
        """
        self.get_project(project_id)
        redundancy = self._check_redundancy(n_assignments)
        if dedup_key is not None:
            existing_id = self._tasks_by_dedup.get((project_id, dedup_key))
            # A stale mapping (task deleted since) must not resurrect it.
            if existing_id is not None and existing_id in self._tasks:
                return self._tasks[existing_id]
        task = Task(
            task_id=self._next_task_id,
            project_id=project_id,
            info=dict(info),
            n_assignments=redundancy,
            created_at=self.clock.now,
        )
        self._tasks[task.task_id] = task
        self._tasks_by_project[project_id].append(task.task_id)
        self._task_runs[task.task_id] = []
        if dedup_key is not None:
            self._tasks_by_dedup[(project_id, dedup_key)] = task.task_id
        self._next_task_id += 1
        return task

    def create_tasks(
        self, project_id: int, task_specs: Sequence[dict[str, Any]]
    ) -> list[Task]:
        """Publish a batch of tasks in one call; return them in spec order.

        Each spec is a dict with ``info`` (required), ``n_assignments`` and
        ``dedup_key`` (both optional) — the same parameters
        :meth:`create_task` takes per call.  All specs are validated before
        any task is created, so a bad spec can never leave the batch
        half-published; specs whose ``dedup_key`` matches an existing task
        return that task, making the whole batch idempotent under client
        retries and crash-and-rerun.
        """
        self.get_project(project_id)
        validated: list[tuple[dict[str, Any], int | None, str | None]] = []
        for spec in task_specs:
            if "info" not in spec:
                raise PlatformError(f"task spec is missing 'info': {spec!r}")
            n_assignments = spec.get("n_assignments")
            self._check_redundancy(n_assignments)
            validated.append((spec["info"], n_assignments, spec.get("dedup_key")))
        return [
            self.create_task(
                project_id, info, n_assignments=n_assignments, dedup_key=dedup_key
            )
            for info, n_assignments, dedup_key in validated
        ]

    def _check_redundancy(self, n_assignments: int | None) -> int:
        redundancy = (
            self.config.default_redundancy if n_assignments is None else n_assignments
        )
        if redundancy <= 0:
            raise PlatformError(f"n_assignments must be positive, got {redundancy}")
        return redundancy

    def get_task(self, task_id: int) -> Task:
        """Return the task with *task_id*."""
        try:
            return self._tasks[task_id]
        except KeyError:
            raise TaskNotFoundError(task_id) from None

    def list_tasks(self, project_id: int) -> list[Task]:
        """Return every task of *project_id* in publication order."""
        self.get_project(project_id)
        return [self._tasks[tid] for tid in self._tasks_by_project[project_id]]

    def delete_task(self, task_id: int) -> None:
        """Delete a task and its task runs."""
        task = self.get_task(task_id)
        self._tasks_by_project[task.project_id].remove(task_id)
        self._task_runs.pop(task_id, None)
        del self._tasks[task_id]

    def extend_task_redundancy(self, task_id: int, extra: int) -> Task:
        """Request *extra* additional assignments for an existing task.

        Used by adaptive quality control: ambiguous tasks get more answers
        after their initial assignments disagree.
        """
        if extra <= 0:
            raise PlatformError(f"extra assignments must be positive, got {extra}")
        task = self.get_task(task_id)
        task.n_assignments += extra
        task.completed_at = None
        return task

    # -- task runs --------------------------------------------------------------------

    def get_task_runs(self, task_id: int) -> list[TaskRun]:
        """Return the task runs collected so far for *task_id*."""
        self.get_task(task_id)
        return list(self._task_runs[task_id])

    def project_task_runs(self, project_id: int) -> list[TaskRun]:
        """Return every task run of *project_id*, grouped by task order."""
        runs: list[TaskRun] = []
        for task in self.list_tasks(project_id):
            runs.extend(self._task_runs[task.task_id])
        return runs

    def get_task_runs_for_project(self, project_id: int) -> dict[int, list[TaskRun]]:
        """Return every task's runs of *project_id*, keyed by task id.

        One call replaces a :meth:`get_task_runs` round-trip per task when
        collecting a whole experiment; tasks with no answers yet map to an
        empty list, so membership also tells the caller which cached task
        ids the platform still knows about.
        """
        return {
            task.task_id: list(self._task_runs[task.task_id])
            for task in self.list_tasks(project_id)
        }

    def _task_id_page(
        self, project_id: int, limit: int, start_after: int | None
    ) -> list[int]:
        """One page of task ids of *project_id* after the exclusive cursor."""
        if limit <= 0:
            raise PlatformError(f"page limit must be positive, got {limit}")
        self.get_project(project_id)
        task_ids = self._tasks_by_project[project_id]
        if start_after is None:
            position = 0
        else:
            # Ids come from a monotonic counter, so the per-project list is
            # sorted even after deletions — resolve the cursor by bisection
            # rather than an O(project) list.index per page.
            position = bisect.bisect_left(task_ids, start_after)
            if position == len(task_ids) or task_ids[position] != start_after:
                raise PlatformError(
                    f"cursor task {start_after} is not a task of project {project_id}"
                )
            position += 1
        return list(task_ids[position : position + limit])

    def list_project_task_ids(
        self, project_id: int, limit: int, start_after: int | None = None
    ) -> list[int]:
        """One page of the project's task ids, in publication order.

        ``start_after`` is an exclusive task-id cursor (the last id of the
        previous page); an id the project does not contain raises
        :class:`PlatformError`.  This is the cheap membership stream the
        collection path uses to detect stale cached tasks without shipping
        any task runs.
        """
        return self._task_id_page(project_id, limit, start_after)

    def get_task_runs_page(
        self, project_id: int, limit: int, start_after: int | None = None
    ) -> list[tuple[int, list[TaskRun]]]:
        """One page of ``(task_id, task_runs)`` pairs, in publication order.

        Same cursor contract as :meth:`list_project_task_ids`; at most
        *limit* tasks' runs are materialised per call, which is what bounds
        the memory footprint of a streaming collection.
        """
        page = self._task_id_page(project_id, limit, start_after)
        return [(task_id, list(self._task_runs[task_id])) for task_id in page]

    def iter_task_runs_for_project(
        self, project_id: int, page_size: int = 500
    ) -> Iterator[tuple[int, list[TaskRun]]]:
        """Generate every task's ``(task_id, runs)`` pair, one page at a time.

        Streaming sibling of :meth:`get_task_runs_for_project`: identical
        contents, but only *page_size* tasks' runs are resident at once.
        """
        cursor: int | None = None
        while True:
            page = self.get_task_runs_page(project_id, page_size, start_after=cursor)
            yield from page
            if len(page) < page_size:
                return
            cursor = page[-1][0]

    def pending_assignments(self, project_id: int | None = None) -> int:
        """Return the number of assignments still waiting for a worker."""
        tasks: Iterable[Task]
        if project_id is None:
            tasks = self._tasks.values()
        else:
            tasks = self.list_tasks(project_id)
        return sum(
            max(0, task.n_assignments - len(self._task_runs[task.task_id])) for task in tasks
        )

    def is_task_complete(self, task_id: int) -> bool:
        """Return True when the task has received all requested answers."""
        task = self.get_task(task_id)
        return len(self._task_runs[task_id]) >= task.n_assignments

    def is_project_complete(self, project_id: int) -> bool:
        """Return True when every task of the project is complete."""
        return all(self.is_task_complete(task.task_id) for task in self.list_tasks(project_id))

    # -- work simulation -----------------------------------------------------------------

    def simulate_work(
        self, project_id: int | None = None, max_assignments: int | None = None
    ) -> int:
        """Have simulated workers answer pending assignments.

        Args:
            project_id: Restrict the simulation to one project (all when None).
            max_assignments: Stop after this many new answers (no limit when
                None) — used by crash-injection experiments to crash the
                experiment mid-collection.

        Returns:
            The number of task runs created.
        """
        created = 0
        if project_id is None:
            project_ids = sorted(self._projects)
        else:
            self.get_project(project_id)
            project_ids = [project_id]
        for pid in project_ids:
            for task in self.list_tasks(pid):
                created += self._fill_task(task, max_assignments, created)
                if max_assignments is not None and created >= max_assignments:
                    return created
        return created

    def _fill_task(self, task: Task, max_assignments: int | None, created_so_far: int) -> int:
        """Fill one task's missing assignments; return answers created."""
        runs = self._task_runs[task.task_id]
        missing = task.n_assignments - len(runs)
        if missing <= 0:
            return 0
        if max_assignments is not None:
            missing = min(missing, max(0, max_assignments - created_so_far))
            if missing == 0:
                return 0
        already_assigned = {run.worker_id for run in runs}
        true_answer = self.answer_oracle(task.info)
        candidates = list(task.info.get("candidates") or [])
        if not candidates:
            # Without declared candidates, workers at least see the true
            # answer (if any) plus a generic binary choice, so behaviours
            # always have something to pick from.
            candidates = ["Yes", "No"] if true_answer is None else [true_answer, "No"]
        task_type = task.info.get("task_type")
        created = 0
        for _ in range(missing):
            worker = self._pick_worker(task, already_assigned)
            already_assigned.add(worker.worker_id)
            answer, latency = worker.answer(
                candidates,
                true_answer,
                self.worker_pool.rng,
                task_type=task_type,
            )
            self.clock.advance(latency)
            run = TaskRun(
                run_id=self._next_run_id,
                task_id=task.task_id,
                project_id=task.project_id,
                worker_id=worker.worker_id,
                answer=answer,
                submitted_at=self.clock.now,
                latency_seconds=latency,
                assignment_order=len(runs) + 1,
            )
            self._next_run_id += 1
            runs.append(run)
            created += 1
        if len(runs) >= task.n_assignments and task.completed_at is None:
            task.completed_at = self.clock.now
        return created

    def _pick_worker(self, task: Task, exclude: set[str]):
        """Pick a worker for *task* honouring distinct-worker redundancy."""
        if len(exclude) >= len(self.worker_pool):
            # Redundancy exceeds pool size; fall back to reusing workers
            # rather than deadlocking the experiment.
            return self.worker_pool.draw()
        remaining = task.n_assignments - len(self._task_runs[task.task_id])
        workers = self.assignment.assign(self.worker_pool, 1) if remaining else []
        if workers and workers[0].worker_id not in exclude:
            return workers[0]
        return self.worker_pool.draw(exclude=exclude)

    # -- introspection -------------------------------------------------------------------

    def statistics(self) -> dict[str, Any]:
        """Return platform-wide counters for dashboards and tests."""
        return {
            "projects": len(self._projects),
            "tasks": len(self._tasks),
            "task_runs": sum(len(runs) for runs in self._task_runs.values()),
            "pending_assignments": self.pending_assignments(),
            "clock": self.clock.now,
            "workers": self.worker_pool.statistics(),
        }
