"""Transport layer between the platform client and server.

The real Reprowd talks HTTP to PyBossa; requests can fail or be retried, and
retried writes must not duplicate tasks.  The fault-injecting transport
recreates exactly those hazards deterministically so the client's retry and
idempotence logic is actually exercised by tests and benchmarks.
"""

from __future__ import annotations

import abc
import random
from typing import Any, Callable

from repro.exceptions import PlatformUnavailableError
from repro.utils.validation import require_fraction


class Transport(abc.ABC):
    """Executes named server calls on behalf of the client."""

    @abc.abstractmethod
    def call(self, name: str, method: Callable[..., Any], *args: Any, **kwargs: Any) -> Any:
        """Invoke *method* (a bound server method) and return its result."""


class DirectTransport(Transport):
    """Calls the server directly with no failures — the default."""

    def call(self, name: str, method: Callable[..., Any], *args: Any, **kwargs: Any) -> Any:
        return method(*args, **kwargs)


class PerNameCallCounter:
    """Mixin tallying transport call attempts per server call name.

    Shared by :class:`CountingTransport` and
    :class:`FaultInjectingTransport` so both expose the same observables
    (``calls``, ``calls_by_name``): streaming tests use them to prove a
    paged collection costs exactly ``ceil(tasks / page_size)`` round-trips,
    and fault-injection tests use them to assert *which* calls were retried
    after an injected failure, not just how many.
    """

    def _reset_counters(self) -> None:
        self.calls = 0
        self.calls_by_name: dict[str, int] = {}

    def _count_call(self, name: str) -> None:
        self.calls += 1
        self.calls_by_name[name] = self.calls_by_name.get(name, 0) + 1

    def call_counts(self) -> dict[str, Any]:
        """Return the attempt tallies, total and per call name."""
        return {"calls": self.calls, "calls_by_name": dict(self.calls_by_name)}


class CountingTransport(PerNameCallCounter, Transport):
    """Direct transport that tallies round-trips per server call name.

    The streaming tests and benchmarks use it to prove a paged collection
    costs exactly ``ceil(tasks / page_size)`` round-trips — the observable
    that distinguishes true streaming from a hidden full fetch.
    """

    def __init__(self) -> None:
        self._reset_counters()

    def call(self, name: str, method: Callable[..., Any], *args: Any, **kwargs: Any) -> Any:
        self._count_call(name)
        return method(*args, **kwargs)

    def statistics(self) -> dict[str, Any]:
        """Return the round-trip counters (same shape across transports)."""
        return self.call_counts()


class FaultInjectingTransport(PerNameCallCounter, Transport):
    """Randomly fails calls and replays successful ones.

    Args:
        failure_rate: Probability that a call raises
            :class:`PlatformUnavailableError` *before* reaching the server.
        duplicate_rate: Probability that a successful call is executed a
            second time (simulating an ambiguous timeout followed by a
            client retry).  Server operations must be idempotent for the
            experiment to survive this.
        seed: Seed for the transport's randomness.

    Every call attempt — including the ones that fail before reaching the
    server — is tallied in ``calls`` / ``calls_by_name``, and injected
    failures are additionally tallied per name in ``failures_by_name``, so
    a test can assert e.g. that a retried ``create_tasks`` really was the
    call that failed.
    """

    def __init__(self, failure_rate: float = 0.0, duplicate_rate: float = 0.0, seed: int = 7):
        self.failure_rate = require_fraction("failure_rate", failure_rate)
        self.duplicate_rate = require_fraction("duplicate_rate", duplicate_rate)
        self._rng = random.Random(seed)
        self._reset_counters()
        self.failures_injected = 0
        self.duplicates_injected = 0
        self.failures_by_name: dict[str, int] = {}

    def call(self, name: str, method: Callable[..., Any], *args: Any, **kwargs: Any) -> Any:
        self._count_call(name)
        if self._rng.random() < self.failure_rate:
            self.failures_injected += 1
            self.failures_by_name[name] = self.failures_by_name.get(name, 0) + 1
            raise PlatformUnavailableError(f"injected transport failure during {name!r}")
        result = method(*args, **kwargs)
        if self._rng.random() < self.duplicate_rate:
            self.duplicates_injected += 1
            result = method(*args, **kwargs)
        return result

    def statistics(self) -> dict[str, Any]:
        """Return fault and per-call-name counters for the faults injected so far."""
        return {
            **self.call_counts(),
            "failures_injected": self.failures_injected,
            "duplicates_injected": self.duplicates_injected,
            "failures_by_name": dict(self.failures_by_name),
        }
