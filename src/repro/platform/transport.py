"""Transport layer between the platform client and server.

The real Reprowd talks HTTP to PyBossa; requests can fail or be retried, and
retried writes must not duplicate tasks.  The fault-injecting transport
recreates exactly those hazards so the client's retry and idempotence logic
is actually exercised by tests and benchmarks — deterministically (seeded)
under the serial transports; under :class:`AsyncTransport` the shared RNG
is drawn from several worker threads, so *which* attempts fail becomes
scheduling-dependent even with a fixed seed (pipelined fault tests assert
invariants — no duplicates, no lost appends — rather than exact failure
placements, and size their retry budgets accordingly).

The transports compose as decorators around :class:`DirectTransport`:

* :class:`CountingTransport` — tallies round-trip *attempts* per call name;
* :class:`FaultInjectingTransport` — injects failures and duplicated
  deliveries;
* :class:`LatencyInjectingTransport` — charges a fixed per-call latency,
  modelling the network round-trip a real deployment pays;
* :class:`AsyncTransport` — the pipelining layer: ``call_async`` keeps up to
  ``max_in_flight`` calls running on a thread pool while a **ticket
  turnstile** applies them to the server strictly in submission order, so
  transport latency overlaps without reordering server-side effects.

See ``docs/transport.md`` for the full stack and its contracts.
"""

from __future__ import annotations

import abc
import random
import threading
import time
from concurrent.futures import Future, ThreadPoolExecutor
from typing import Any, Callable

from repro.exceptions import PlatformUnavailableError
from repro.utils.validation import require_fraction


#: Ceiling on a single backoff delay, however many attempts have failed.
MAX_RETRY_BACKOFF_SECONDS = 2.0


def retry_call(
    attempt: Callable[[], Any],
    retries: int,
    backoff: float = 0.0,
    max_backoff: float = MAX_RETRY_BACKOFF_SECONDS,
    rng: random.Random | None = None,
    sleep: Callable[[float], None] = time.sleep,
    jitter: Callable[[], float] | None = None,
) -> Any:
    """Run *attempt* up to *retries* **attempts** on ``PlatformUnavailableError``.

    ``retries`` counts total attempts, not re-tries: ``retries=3`` means one
    initial attempt plus at most two retries.  Non-positive values raise
    :class:`ValueError` — the same contract ``PlatformClient`` enforces for
    ``max_retries``, so the two layers cannot drift (this function used to
    silently clamp to one attempt).

    The one retry policy of the whole stack: the serial client's `_call`
    and the async transport's per-slot retries both delegate here, so the
    contract (retry only transport unavailability, propagate the last
    error) cannot drift between the serial and pipelined paths.

    Args:
        attempt: Zero-argument callable performing one transport attempt.
        retries: Maximum number of attempts (must be >= 1).
        backoff: Base delay in seconds between attempts.  0 (the default)
            retries immediately — right for in-process transports where a
            failure is an injected fault, wrong against a real wire, where
            back-to-back retries turn a server restart into instant
            retry-budget exhaustion.  The delay before attempt *k*'s retry
            grows exponentially (``backoff * 2**k``), is capped at
            *max_backoff*, and is jittered to 50–100% of its nominal value
            so a fleet of clients does not reconnect in lockstep.
        max_backoff: Ceiling on a single delay.
        rng: Randomness source for the jitter (module-level when omitted).
        sleep: Sleep function (injectable for tests).
        jitter: Deterministic override for the jitter draw: a zero-argument
            callable returning a float in [0, 1], used *instead of* any rng.
            Tests pass a seeded ``random.Random(...).random`` (or a
            constant) so every retry delay is reproducible and timing
            assertions cannot flake.
    """
    if retries < 1:
        raise ValueError(f"retries must be >= 1 (it counts attempts), got {retries}")
    if backoff < 0:
        raise ValueError(f"backoff must be >= 0, got {backoff}")
    last_error: PlatformUnavailableError | None = None
    for attempt_index in range(retries):
        try:
            return attempt()
        except PlatformUnavailableError as exc:
            last_error = exc
            if backoff > 0 and attempt_index < retries - 1:
                delay = min(max_backoff, backoff * (2**attempt_index))
                if jitter is not None:
                    draw = jitter()
                elif rng is not None:
                    draw = rng.random()
                else:
                    draw = random.random()
                sleep(delay * (0.5 + 0.5 * draw))
    if last_error is None:  # pragma: no cover — loop ran >= 1 attempt
        # A real exception, not an assert: asserts vanish under `python -O`
        # and this is a contract violation worth keeping fatal everywhere.
        raise RuntimeError("retry_call exhausted attempts without capturing an error")
    raise last_error


class Transport(abc.ABC):
    """Executes named server calls on behalf of the client."""

    @abc.abstractmethod
    def call(self, name: str, method: Callable[..., Any], *args: Any, **kwargs: Any) -> Any:
        """Invoke *method* (a bound server method) and return its result.

        One ``call`` is one transport *attempt*, not one logical operation:
        the client's retry loop invokes ``call`` again after a
        :class:`~repro.exceptions.PlatformUnavailableError`, and counting
        transports tally every attempt individually — a call retried twice
        before succeeding shows up as three attempts, one success.
        """

    def close(self) -> None:
        """Release transport-held resources (threads, sockets); no-op here."""


class DirectTransport(Transport):
    """Calls the server directly with no failures — the default."""

    def call(self, name: str, method: Callable[..., Any], *args: Any, **kwargs: Any) -> Any:
        return method(*args, **kwargs)


class PerNameCallCounter:
    """Mixin tallying transport call **attempts** per server call name.

    Shared by :class:`CountingTransport` and
    :class:`FaultInjectingTransport` so both expose the same observables
    (``calls``, ``calls_by_name``): streaming tests use them to prove a
    paged collection costs exactly ``ceil(tasks / page_size)`` round-trips,
    and fault-injection tests use them to assert *which* calls were retried
    after an injected failure, not just how many.

    The unit is the attempt, not the logical operation: every retried
    attempt is counted individually, so for a call name that failed F times
    before its S successes, ``calls_by_name[name] == F + S``.  Tests that
    want "how many operations succeeded" must subtract the failure tallies
    (``FaultInjectingTransport.failures_by_name``) rather than read
    ``calls_by_name`` directly.

    Counter updates are guarded by a lock so the tallies stay exact when an
    :class:`AsyncTransport` drives this transport from several worker
    threads at once.
    """

    def _reset_counters(self) -> None:
        self.calls = 0
        self.calls_by_name: dict[str, int] = {}
        self._counter_lock = threading.Lock()

    def _count_call(self, name: str) -> None:
        with self._counter_lock:
            self.calls += 1
            self.calls_by_name[name] = self.calls_by_name.get(name, 0) + 1

    def call_counts(self) -> dict[str, Any]:
        """Return the attempt tallies, total and per call name."""
        with self._counter_lock:
            return {"calls": self.calls, "calls_by_name": dict(self.calls_by_name)}


class CountingTransport(PerNameCallCounter, Transport):
    """Direct transport that tallies round-trip attempts per server call name.

    The streaming tests and benchmarks use it to prove a paged collection
    costs exactly ``ceil(tasks / page_size)`` round-trips — the observable
    that distinguishes true streaming from a hidden full fetch.  (With no
    fault injection in the stack every attempt succeeds, so attempts and
    successful operations coincide here; behind a fault injector they do
    not — see :class:`PerNameCallCounter`.)
    """

    def __init__(self) -> None:
        self._reset_counters()

    def call(self, name: str, method: Callable[..., Any], *args: Any, **kwargs: Any) -> Any:
        self._count_call(name)
        return method(*args, **kwargs)

    def statistics(self) -> dict[str, Any]:
        """Return the round-trip counters (same shape across transports)."""
        return self.call_counts()


class FaultInjectingTransport(PerNameCallCounter, Transport):
    """Randomly fails calls and replays successful ones.

    Args:
        failure_rate: Probability that a call raises
            :class:`PlatformUnavailableError` *before* reaching the server.
        duplicate_rate: Probability that a successful call is executed a
            second time (simulating an ambiguous timeout followed by a
            client retry).  Server operations must be idempotent for the
            experiment to survive this.
        seed: Seed for the transport's randomness.

    Every call attempt — including the ones that fail before reaching the
    server — is tallied in ``calls`` / ``calls_by_name``, and injected
    failures are additionally tallied per name in ``failures_by_name``, so
    a test can assert e.g. that a retried ``create_tasks`` really was the
    call that failed.  Attempts, not successes: a name that was failed F
    times and succeeded S times shows ``calls_by_name[name] == F + S`` —
    the successful-operation count is ``calls_by_name[name] -
    failures_by_name.get(name, 0)``, minus any ``duplicates_injected``
    replays (a duplicated delivery re-executes the server method without a
    new attempt being tallied).
    """

    def __init__(self, failure_rate: float = 0.0, duplicate_rate: float = 0.0, seed: int = 7):
        self.failure_rate = require_fraction("failure_rate", failure_rate)
        self.duplicate_rate = require_fraction("duplicate_rate", duplicate_rate)
        self._rng = random.Random(seed)
        self._reset_counters()
        self.failures_injected = 0
        self.duplicates_injected = 0
        self.failures_by_name: dict[str, int] = {}

    def call(self, name: str, method: Callable[..., Any], *args: Any, **kwargs: Any) -> Any:
        self._count_call(name)
        if self._rng.random() < self.failure_rate:
            with self._counter_lock:
                self.failures_injected += 1
                self.failures_by_name[name] = self.failures_by_name.get(name, 0) + 1
            raise PlatformUnavailableError(f"injected transport failure during {name!r}")
        result = method(*args, **kwargs)
        if self._rng.random() < self.duplicate_rate:
            with self._counter_lock:
                self.duplicates_injected += 1
            result = method(*args, **kwargs)
        return result

    def statistics(self) -> dict[str, Any]:
        """Return fault and per-call-name counters for the faults injected so far."""
        with self._counter_lock:
            failures = {
                "failures_injected": self.failures_injected,
                "duplicates_injected": self.duplicates_injected,
                "failures_by_name": dict(self.failures_by_name),
            }
        return {**self.call_counts(), **failures}


class LatencyInjectingTransport(Transport):
    """Charges a fixed wall-clock latency per call attempt before delegating.

    Models the network round-trip a real PyBossa deployment pays on every
    call.  Composes around any inner transport (direct when omitted), so a
    benchmark can stack latency under fault injection or under an
    :class:`AsyncTransport` — which is exactly how the pipelined-transport
    benchmark makes the serialisation wall of one-round-trip-per-call
    measurable.

    Args:
        inner: Transport the call is delegated to after the sleep.
        latency_seconds: Wall-clock seconds charged per call attempt
            (retried attempts each pay it again, like real retries do).
    """

    def __init__(self, inner: Transport | None = None, latency_seconds: float = 0.0):
        if latency_seconds < 0:
            raise ValueError(f"latency_seconds must be >= 0, got {latency_seconds}")
        self.inner = inner or DirectTransport()
        self.latency_seconds = latency_seconds

    def call(self, name: str, method: Callable[..., Any], *args: Any, **kwargs: Any) -> Any:
        if self.latency_seconds > 0:
            time.sleep(self.latency_seconds)
        return self.inner.call(name, method, *args, **kwargs)

    def statistics(self) -> dict[str, Any]:
        """Delegate to the inner transport's counters when it has any."""
        inner_stats = getattr(self.inner, "statistics", None)
        stats = inner_stats() if callable(inner_stats) else {}
        return {**stats, "latency_seconds": self.latency_seconds}

    def close(self) -> None:
        self.inner.close()


class AsyncTransport(Transport):
    """Pipelining transport: up to ``max_in_flight`` calls run concurrently.

    ``call_async`` submits a call to a thread pool and returns a
    :class:`~concurrent.futures.Future`; ``drain`` waits for every
    outstanding call; the plain synchronous :meth:`call` is a **barrier** —
    it drains first, so a synchronous verb always observes every previously
    submitted async call (the flush-on-read contract the
    :class:`~repro.platform.client.PipelinedClient` relies on).

    Two properties make the concurrency safe against the in-process server:

    * **Bounded in-flight window.**  A semaphore caps outstanding calls at
      ``max_in_flight``; a further ``call_async`` blocks the submitter, so
      a producer can never build an unbounded queue of buffered writes
      (backpressure, not buffering).
    * **Ticket-ordered application.**  Each submission takes a monotonic
      ticket, and the server method itself only runs when every earlier
      ticket's call has finished — transport work (injected latency, fault
      decisions, retries) overlaps freely across threads, but server-side
      effects happen strictly in submission order.  Task ids, worker draws
      and page contents therefore stay byte-identical to a serial run,
      which is what lets the pipelined client keep the exact
      ordering/idempotence contracts the fault and crash suites encode.

    The per-call ``retries`` of :meth:`call_async` run *inside* the call's
    in-flight slot and inside its ticket: a failed attempt (e.g. an
    injected :class:`~repro.exceptions.PlatformUnavailableError`) is
    retried without releasing the call's position, so a retried batch still
    applies in order.  Every attempt passes through the inner transport
    individually and is counted individually by any counting layer below.
    """

    def __init__(
        self,
        inner: Transport | None = None,
        max_in_flight: int = 8,
        retry_backoff: float = 0.0,
    ):
        if max_in_flight < 1:
            raise ValueError(f"max_in_flight must be >= 1, got {max_in_flight}")
        if retry_backoff < 0:
            raise ValueError(f"retry_backoff must be >= 0, got {retry_backoff}")
        self.inner = inner or DirectTransport()
        self.max_in_flight = max_in_flight
        #: Base backoff (seconds) for every per-slot retry; 0 keeps the
        #: in-process behaviour of immediate retries.
        self.retry_backoff = retry_backoff
        self._slots = threading.BoundedSemaphore(max_in_flight)
        self._state = threading.Condition()
        self._next_ticket = 0  # next ticket to hand out (guarded by _state)
        self._turn = 0  # lowest ticket not yet finished (guarded by _state)
        self._finished: set[int] = set()  # tickets done while earlier ones run
        self._in_flight = 0
        self.submitted = 0
        self.completed = 0
        self._executor: ThreadPoolExecutor | None = None

    # -- synchronous path ---------------------------------------------------

    def call(self, name: str, method: Callable[..., Any], *args: Any, **kwargs: Any) -> Any:
        """Barrier call: drain every in-flight async call, then run inline."""
        self.drain()
        return self.inner.call(name, method, *args, **kwargs)

    # -- asynchronous path --------------------------------------------------

    def call_async(
        self,
        name: str,
        method: Callable[..., Any],
        *args: Any,
        retries: int = 1,
        **kwargs: Any,
    ) -> Future:
        """Submit a call; returns a future resolving to the call's result.

        Blocks while ``max_in_flight`` calls are already outstanding.  The
        call is attempted up to *retries* times (total attempts; must be
        >= 1) on :class:`~repro.exceptions.PlatformUnavailableError`; the
        future carries the last error when every attempt failed.
        """
        if retries < 1:
            raise ValueError(f"retries must be >= 1 (it counts attempts), got {retries}")
        self._slots.acquire()
        with self._state:
            ticket = self._next_ticket
            self._next_ticket += 1
            self._in_flight += 1
            self.submitted += 1
        try:
            return self._pool().submit(
                self._run, ticket, name, method, args, kwargs, retries
            )
        except BaseException:
            with self._state:
                self._finish(ticket)
            self._slots.release()
            raise

    def _pool(self) -> ThreadPoolExecutor:
        if self._executor is None:
            self._executor = ThreadPoolExecutor(
                max_workers=self.max_in_flight, thread_name_prefix="repro-transport"
            )
        return self._executor

    def _run(
        self,
        ticket: int,
        name: str,
        method: Callable[..., Any],
        args: tuple,
        kwargs: dict,
        retries: int,
    ) -> Any:
        gated = self._gated(ticket, method)
        try:
            return retry_call(
                lambda: self.inner.call(name, gated, *args, **kwargs),
                retries,
                backoff=self.retry_backoff,
            )
        finally:
            with self._state:
                self._finish(ticket)
                self.completed += 1
            self._slots.release()

    def _gated(self, ticket: int, method: Callable[..., Any]) -> Callable[..., Any]:
        """Wrap *method* so it executes only when *ticket*'s turn has come.

        The turnstile both orders server-side effects by submission and
        serialises them — only the one current-turn call can be inside the
        server at any moment, so the (thread-oblivious) server and stores
        never see concurrent mutation.
        """

        def invoke(*args: Any, **kwargs: Any) -> Any:
            with self._state:
                while self._turn != ticket:
                    self._state.wait()
            return method(*args, **kwargs)

        return invoke

    def _finish(self, ticket: int) -> None:
        """Mark *ticket* done and advance the turn past finished tickets.

        Caller must hold ``_state``.  A call can finish out of order (all
        its attempts failed before reaching the server while an earlier
        call still sleeps in transport latency), so finished tickets park
        in a set until the turn reaches them.
        """
        self._finished.add(ticket)
        while self._turn in self._finished:
            self._finished.remove(self._turn)
            self._turn += 1
        self._in_flight -= 1
        self._state.notify_all()

    def drain(self) -> None:
        """Block until no async call is in flight (results stay on futures)."""
        with self._state:
            while self._in_flight:
                self._state.wait()

    # -- introspection and lifecycle ---------------------------------------

    @property
    def in_flight(self) -> int:
        """Number of async calls currently outstanding."""
        with self._state:
            return self._in_flight

    def statistics(self) -> dict[str, Any]:
        """Inner transport counters plus this layer's pipelining counters."""
        inner_stats = getattr(self.inner, "statistics", None)
        stats = inner_stats() if callable(inner_stats) else {}
        with self._state:
            pipelining = {
                "submitted": self.submitted,
                "completed": self.completed,
                "max_in_flight": self.max_in_flight,
            }
        return {**stats, "async": pipelining}

    def close(self) -> None:
        """Drain outstanding calls and stop the worker threads."""
        self.drain()
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None
        self.inner.close()
