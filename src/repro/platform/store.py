"""TaskStore: pluggable persistence for the platform server's state.

The server used to hold every project, task and task run in six in-process
dicts, so the simulated platform could neither survive a restart nor exceed
memory.  This module extracts that state behind one contract with two
implementations:

* :class:`MemoryTaskStore` — the original dicts, still the default and the
  reference semantics the durable store is tested against;
* :class:`DurableTaskStore` — maps the same state onto any
  :class:`~repro.storage.engine.StorageEngine` (memory, sqlite, log,
  sharded) using namespaced tables, the engines' ``put_many`` /
  ``scan(limit, start_after)`` bulk contract, and the ``to_dict`` /
  ``from_dict`` serialisers already on the platform models.

Key namespacing (``DurableTaskStore``, default namespace ``platform``):

=============================  =============================================
table                          contents
=============================  =============================================
``platform::projects``         zero-padded project id -> ``Project.to_dict``
``platform::project_names``    project name -> project id
``platform::tasks``            zero-padded task id -> ``Task.to_dict``
``platform::runs``             zero-padded task id -> list of
                               ``TaskRun.to_dict`` (one record per task)
``platform::meta``             id-counter hints (``next_project_id``,
                               ``next_task_id``, ``next_run_id``) plus one
                               immutable *lease record* per allocated id
                               range (``<counter>::alloc::<first-id>`` ->
                               count) — the put-if-absent leases, not the
                               hints, are what make allocation safe under
                               concurrent writers
``platform::task_index::<p>``  per-project publication-order task-id index
``platform::dedup::<p>``       per-project dedup key -> task id
=============================  =============================================

Task ids come from a durable monotonic counter and their keys are
zero-padded, so sorting a table's keys restores publication order no matter
what physical insertion order a crash (or a later heal) left behind; the
per-project index table therefore serves the server's exclusive task-id
page cursor from its sorted key list — a cursor handed out before a server
restart keeps working on the reopened store.

Recovery invariants (what a reopened server is promised):

* **Identical ids** — the next project/task/run id is read back from the
  ``meta`` table; a crash between counter bump and entity write can only
  leave an unused id gap, never a reused id.
* **Identical dedup behaviour** — dedup keys live next to the tasks they
  name; replaying a ``create_tasks`` batch after a restart returns the
  surviving tasks instead of duplicates.
* **Identical page cursors** — the task-id index is durable, so a streaming
  collection interrupted mid-``iter_task_runs_for_project`` resumes from its
  last cursor on the reopened server.
"""

from __future__ import annotations

import abc
import bisect
import threading
from typing import Any, Sequence

from repro.config import PlatformConfig
from repro.exceptions import ConfigurationError, DuplicateKeyError, PlatformError
from repro.platform.models import Project, Task, TaskRun
from repro.storage.engine import StorageEngine, open_engine


def _cursor_error(start_after: int, project_id: int) -> PlatformError:
    """The error every store raises for a page cursor the project lacks."""
    return PlatformError(
        f"cursor task {start_after} is not a task of project {project_id}"
    )


def _page_task_ids(
    task_ids: Sequence[int], limit: int | None, start_after: int | None, project_id: int
) -> list[int]:
    """Apply the exclusive-cursor page contract to a sorted task-id list.

    Shared by both store implementations so their cursor semantics cannot
    drift: ids come from a monotonic counter, so the per-project list is
    sorted and the cursor resolves by bisection rather than a linear scan.
    """
    if start_after is None:
        position = 0
    else:
        position = bisect.bisect_left(task_ids, start_after)
        if position == len(task_ids) or task_ids[position] != start_after:
            raise _cursor_error(start_after, project_id)
        position += 1
    end = None if limit is None else position + limit
    return list(task_ids[position:end])


class TaskStore(abc.ABC):
    """Persistence contract behind :class:`~repro.platform.server.PlatformServer`.

    The server is the only consumer: it owns validation, redundancy and
    worker simulation, and goes through the store for every read and write
    of projects, tasks, task runs, dedup mappings and id counters.  Stores
    return model objects (:class:`Project`, :class:`Task`,
    :class:`TaskRun`), never raw records.
    """

    #: Name reported by :meth:`describe`, overridden by subclasses.
    store_name = "abstract"

    # -- id counters -------------------------------------------------------

    @abc.abstractmethod
    def allocate_project_id(self) -> int:
        """Reserve and return the next project id (durable before use)."""

    @abc.abstractmethod
    def allocate_task_ids(self, count: int) -> int:
        """Reserve *count* consecutive task ids; return the first."""

    @abc.abstractmethod
    def allocate_run_ids(self, count: int, clock_time: float | None = None) -> int:
        """Reserve *count* consecutive task-run ids; return the first.

        *clock_time*, when given, is recorded as the store's latest
        persisted timestamp in the same write (see
        :meth:`latest_timestamp`) — the server passes its clock after the
        answers being persisted were stamped, so the record rides the
        counter write instead of costing one of its own.
        """

    # -- projects ----------------------------------------------------------

    @abc.abstractmethod
    def put_project(self, project: Project) -> Project:
        """Store a new project (and prepare its per-project indexes).

        Returns the authoritative project for the name: *project* itself
        normally, or — when another writer concurrently created a project
        with the same name — that earlier winner (first writer wins, and
        the loser's record is cleaned up).  Callers must use the returned
        project, not the one they passed in.
        """

    @abc.abstractmethod
    def get_project(self, project_id: int) -> Project | None:
        """Return the project with *project_id*, or None."""

    @abc.abstractmethod
    def find_project_id(self, name: str) -> int | None:
        """Return the id of the project named *name*, or None."""

    @abc.abstractmethod
    def list_project_ids(self) -> list[int]:
        """Return every project id in ascending order."""

    @abc.abstractmethod
    def remove_project(self, project: Project) -> None:
        """Delete *project* together with its tasks, runs and dedup keys."""

    # -- tasks -------------------------------------------------------------

    @abc.abstractmethod
    def add_tasks(self, tasks: Sequence[Task], dedup_keys: Sequence[str | None]) -> None:
        """Store new *tasks* (one batch) and register their dedup keys.

        ``dedup_keys`` is positionally aligned with ``tasks``; a None entry
        registers nothing for that task.  A dedup key that already maps to a
        (possibly deleted) task is overwritten — liveness is re-checked at
        resolve time, so a stale mapping can never resurrect a deleted task.
        """

    @abc.abstractmethod
    def stage_tasks(self, tasks: Sequence[Task]) -> None:
        """Make candidate task records readable *before* their dedup claim.

        The multi-writer publish protocol mirrors :meth:`put_project`'s
        record-first ordering: a server stages its candidate tasks (record
        only — no index entry, no dedup mapping, no runs), then calls
        :meth:`claim_dedup_keys`.  Because every writer stages before
        claiming, a claim that *lost* is guaranteed to find the live
        winner's record via :meth:`get_tasks` — without this step, a loser
        racing the winner's ``add_tasks`` would mistake the not-yet-written
        winner for a stale mapping and double-publish.  A staged task that
        wins is published normally by :meth:`add_tasks` (idempotent
        overwrite); one that loses is dropped via :meth:`discard_staged`.
        A crash between stage and claim leaks an unreachable record — the
        same storage-only leak :meth:`add_tasks` documents for keyless
        specs.
        """

    @abc.abstractmethod
    def discard_staged(self, tasks: Sequence[Task]) -> None:
        """Delete staged task records whose dedup claim lost."""

    @abc.abstractmethod
    def get_task(self, task_id: int) -> Task | None:
        """Return the task with *task_id*, or None."""

    @abc.abstractmethod
    def get_tasks(self, task_ids: Sequence[int]) -> list[Task | None]:
        """Return one task (or None) per requested id, in request order."""

    @abc.abstractmethod
    def update_task(self, task: Task) -> None:
        """Persist mutated fields of an existing task (redundancy, completion)."""

    @abc.abstractmethod
    def remove_task(self, task: Task) -> None:
        """Delete *task* and its runs (its dedup mapping may go stale)."""

    @abc.abstractmethod
    def project_task_ids(self, project_id: int) -> list[int]:
        """Return every task id of *project_id* in publication order."""

    @abc.abstractmethod
    def task_id_page(
        self, project_id: int, limit: int | None, start_after: int | None
    ) -> list[int]:
        """One publication-order page of task ids after the exclusive cursor.

        Raises :class:`~repro.exceptions.PlatformError` when *start_after*
        is not currently a task of the project — the same contract
        (transplanted from the storage ``scan``) on every implementation.
        """

    def task_id_slice(self, project_id: int, limit: int, offset: int) -> list[int]:
        """One offset-addressed slice of the project's publication-order ids.

        Offset semantics are plain list slicing: ``ids[offset:offset +
        limit]``, with offsets past the end yielding ``[]``.  Both stores
        keep a sorted id list per project, so the default implementation is
        already O(project) at worst and O(slice) on the durable store's
        cached list; it exists so the server can serve the pipelined
        client's concurrent slice fetches without a cursor chain.
        """
        return self.project_task_ids(project_id)[offset : offset + limit]

    @abc.abstractmethod
    def resolve_dedup_keys(self, project_id: int, keys: Sequence[str]) -> dict[str, int]:
        """Map each known dedup key of *project_id* to the task id it names.

        Returned ids are raw mappings; callers must re-check task liveness
        (a mapping may survive its task's deletion).
        """

    @abc.abstractmethod
    def claim_dedup_keys(
        self, project_id: int, claims: Sequence[tuple[str, int]]
    ) -> dict[str, int]:
        """Atomically claim dedup keys for task ids; first writer wins.

        Each ``(key, task_id)`` claim either installs the mapping (the
        caller won) or loses to a mapping that already exists; the returned
        dict maps every claimed key to the task id that *owns* it after the
        call.  A caller whose claim lost must discard its candidate task and
        adopt the winner — this is the arbiter that keeps concurrent
        ``create_tasks`` of the same keys exactly-once across server
        processes.  Winning ids are raw mappings like
        :meth:`resolve_dedup_keys`'s: liveness is the caller's problem.
        """

    def ensure_indexed(self, tasks: Sequence[Task]) -> None:
        """Repair the publication-order index entries of existing *tasks*.

        Called by the server for dedup *hits* of a ``create_tasks`` replay:
        on a durable store a crash inside a previous :meth:`add_tasks` can
        have persisted the dedup mapping and task records without their
        index entries, and the replay is the natural place to heal that
        torn batch.  A no-op when every entry is present (and always for
        the memory store, whose ``add_tasks`` cannot tear).
        """

    def latest_timestamp(self) -> float:
        """Return the largest simulated-clock timestamp the store persisted.

        The server fast-forwards its clock past this value on construction,
        so a platform reopened after a restart (whose fresh clock starts at
        zero) never stamps new answers *before* answers that already exist.
        0.0 for stores with no persisted state.
        """
        return 0.0

    # -- task runs ---------------------------------------------------------

    @abc.abstractmethod
    def runs_for_task(self, task_id: int) -> list[TaskRun]:
        """Return the runs of *task_id* in submission order ([] when none)."""

    @abc.abstractmethod
    def runs_for_tasks(self, task_ids: Sequence[int]) -> list[list[TaskRun]]:
        """Bulk :meth:`runs_for_task`: one run list per id, in request order."""

    @abc.abstractmethod
    def append_runs(self, task_id: int, runs: Sequence[TaskRun]) -> None:
        """Append *runs* to the task's answer list (one durable write)."""

    # -- derived reads shared by both implementations ----------------------

    def run_count(self, task_id: int) -> int:
        """Return how many runs *task_id* has collected."""
        return len(self.runs_for_task(task_id))

    def run_counts_for_tasks(self, task_ids: Sequence[int]) -> list[int]:
        """Bulk :meth:`run_count`, positionally aligned with *task_ids*."""
        return [len(runs) for runs in self.runs_for_tasks(task_ids)]

    # -- introspection and lifecycle ---------------------------------------

    @abc.abstractmethod
    def counts(self) -> dict[str, int]:
        """Return ``{"projects": n, "tasks": n, "task_runs": n}``."""

    def describe(self) -> dict[str, Any]:
        """Return a JSON-friendly summary for dashboards and tests."""
        return {"store": self.store_name, **self.counts()}

    def flush(self) -> None:
        """Force buffered writes to durable storage (no-op by default)."""

    def flush_appends(self) -> None:
        """Flush only buffered run appends, if any (no-op by default).

        Cheaper sibling of :meth:`flush` for the end of ``simulate_work``:
        it restores the answers-durable-on-return contract without forcing
        an engine-level flush (an extra commit/fsync) on stores that write
        every append through anyway.
        """

    def close(self) -> None:
        """Release resources held by the store (no-op by default)."""


class MemoryTaskStore(TaskStore):
    """The seed behaviour: every dict the server used to hold, unchanged.

    Model objects are stored by reference (a task returned by the server is
    the stored task), which is exactly what the in-process simulator always
    did; :meth:`update_task` is therefore a no-op for objects obtained from
    this store.
    """

    store_name = "memory"

    def __init__(self) -> None:
        self._projects: dict[int, Project] = {}
        self._projects_by_name: dict[str, int] = {}
        self._tasks: dict[int, Task] = {}
        self._tasks_by_project: dict[int, list[int]] = {}
        self._tasks_by_dedup: dict[tuple[int, str], int] = {}
        self._task_runs: dict[int, list[TaskRun]] = {}
        self._next_project_id = 1
        self._next_task_id = 1
        self._next_run_id = 1
        #: Guards the check-then-act paths (counters, name claims, dedup
        #: claims) so two threads sharing one store — the in-process shape
        #: of the multi-server suites — cannot double-allocate.
        self._mutex = threading.Lock()

    # -- id counters -------------------------------------------------------

    def allocate_project_id(self) -> int:
        with self._mutex:
            allocated = self._next_project_id
            self._next_project_id += 1
            return allocated

    def allocate_task_ids(self, count: int) -> int:
        with self._mutex:
            first = self._next_task_id
            self._next_task_id += count
            return first

    def allocate_run_ids(self, count: int, clock_time: float | None = None) -> int:
        with self._mutex:
            first = self._next_run_id
            self._next_run_id += count
            return first

    # -- projects ----------------------------------------------------------

    def put_project(self, project: Project) -> Project:
        with self._mutex:
            existing_id = self._projects_by_name.get(project.name)
            if existing_id is not None and existing_id != project.project_id:
                existing = self._projects.get(existing_id)
                if existing is not None:
                    return existing
            self._projects[project.project_id] = project
            self._projects_by_name[project.name] = project.project_id
            self._tasks_by_project.setdefault(project.project_id, [])
            return project

    def get_project(self, project_id: int) -> Project | None:
        return self._projects.get(project_id)

    def find_project_id(self, name: str) -> int | None:
        return self._projects_by_name.get(name)

    def list_project_ids(self) -> list[int]:
        return sorted(self._projects)

    def remove_project(self, project: Project) -> None:
        for task_id in self._tasks_by_project.pop(project.project_id, []):
            self._tasks.pop(task_id, None)
            self._task_runs.pop(task_id, None)
        self._tasks_by_dedup = {
            key: task_id
            for key, task_id in self._tasks_by_dedup.items()
            if key[0] != project.project_id
        }
        self._projects_by_name.pop(project.name, None)
        self._projects.pop(project.project_id, None)

    # -- tasks -------------------------------------------------------------

    def add_tasks(self, tasks: Sequence[Task], dedup_keys: Sequence[str | None]) -> None:
        for task, dedup_key in zip(tasks, dedup_keys):
            self._tasks[task.task_id] = task
            self._tasks_by_project[task.project_id].append(task.task_id)
            self._task_runs[task.task_id] = []
            if dedup_key is not None:
                self._tasks_by_dedup[(task.project_id, dedup_key)] = task.task_id

    def stage_tasks(self, tasks: Sequence[Task]) -> None:
        # Record only: no project index entry, no runs list, no dedup
        # mapping — unreachable until add_tasks publishes it.
        for task in tasks:
            self._tasks[task.task_id] = task

    def discard_staged(self, tasks: Sequence[Task]) -> None:
        for task in tasks:
            self._tasks.pop(task.task_id, None)

    def get_task(self, task_id: int) -> Task | None:
        return self._tasks.get(task_id)

    def get_tasks(self, task_ids: Sequence[int]) -> list[Task | None]:
        return [self._tasks.get(task_id) for task_id in task_ids]

    def update_task(self, task: Task) -> None:
        self._tasks[task.task_id] = task

    def remove_task(self, task: Task) -> None:
        self._tasks_by_project[task.project_id].remove(task.task_id)
        self._task_runs.pop(task.task_id, None)
        self._tasks.pop(task.task_id, None)

    def project_task_ids(self, project_id: int) -> list[int]:
        return list(self._tasks_by_project[project_id])

    def task_id_page(
        self, project_id: int, limit: int | None, start_after: int | None
    ) -> list[int]:
        return _page_task_ids(
            self._tasks_by_project[project_id], limit, start_after, project_id
        )

    def task_id_slice(self, project_id: int, limit: int, offset: int) -> list[int]:
        return self._tasks_by_project[project_id][offset : offset + limit]

    def resolve_dedup_keys(self, project_id: int, keys: Sequence[str]) -> dict[str, int]:
        resolved: dict[str, int] = {}
        for key in keys:
            task_id = self._tasks_by_dedup.get((project_id, key))
            if task_id is not None:
                resolved[key] = task_id
        return resolved

    def claim_dedup_keys(
        self, project_id: int, claims: Sequence[tuple[str, int]]
    ) -> dict[str, int]:
        with self._mutex:
            # setdefault is the whole first-writer-wins protocol: a key
            # repeated within *claims* keeps its first task id too.
            return {
                key: self._tasks_by_dedup.setdefault((project_id, key), task_id)
                for key, task_id in claims
            }

    # -- task runs ---------------------------------------------------------

    def runs_for_task(self, task_id: int) -> list[TaskRun]:
        return list(self._task_runs.get(task_id, []))

    def runs_for_tasks(self, task_ids: Sequence[int]) -> list[list[TaskRun]]:
        return [list(self._task_runs.get(task_id, [])) for task_id in task_ids]

    def append_runs(self, task_id: int, runs: Sequence[TaskRun]) -> None:
        self._task_runs.setdefault(task_id, []).extend(runs)

    def run_count(self, task_id: int) -> int:
        return len(self._task_runs.get(task_id, ()))

    def run_counts_for_tasks(self, task_ids: Sequence[int]) -> list[int]:
        return [len(self._task_runs.get(task_id, ())) for task_id in task_ids]

    # -- introspection -----------------------------------------------------

    def counts(self) -> dict[str, int]:
        return {
            "projects": len(self._projects),
            "tasks": len(self._tasks),
            "task_runs": sum(len(runs) for runs in self._task_runs.values()),
        }


class DurableTaskStore(TaskStore):
    """Platform state on a :class:`StorageEngine` — restartable and sharable.

    See the module docstring for the table layout and recovery invariants.
    Writes are batched through the engine's ``put_many`` wherever the server
    hands over a batch (``create_tasks``, per-task run appends), so the
    durable cost of the bulk execution path stays O(1) engine round-trips in
    the batch size.
    """

    store_name = "durable"

    def __init__(
        self,
        engine: StorageEngine,
        namespace: str = "platform",
        owns_engine: bool = False,
        append_batch_size: int = 1,
        shared: bool = False,
        group_commit: bool = False,
    ) -> None:
        """Open the store on *engine*.

        Args:
            engine: Any open storage engine; may be shared with the
                fault-recovery cache (the platform's tables are namespaced).
            namespace: Table-name prefix isolating this store's tables.
            owns_engine: When True, :meth:`close` also closes the engine.
            shared: Declare that *other* store handles (threads, or whole
                server processes on a file-backed engine) write the same
                tables concurrently.  Correctness of id allocation and
                dedup claims never depends on this flag — those go through
                the engine's atomic ``put_new`` / ``put_many(if_absent)``
                either way — but shared mode additionally bypasses the
                single-writer read caches (counters, per-project id lists,
                run totals, latest timestamp) that would otherwise serve
                stale answers about another writer's data.
            append_batch_size: Run appends per durable write.  1 (the
                default) writes every :meth:`append_runs` through
                immediately — the seed behaviour.  Larger values buffer
                appended runs in memory and flush them as one engine
                ``put_many`` once *append_batch_size* runs have
                accumulated (and on :meth:`flush`/:meth:`close`), which
                amortises ``simulate_work``'s one-durable-write-per-task
                cost across tasks.  Reads merge the buffer transparently;
                a crash can lose at most one buffered batch of answers,
                which a rerun of ``simulate_work`` re-creates (the same
                top-up idempotence that heals a crash between per-task
                writes).
            group_commit: Defer the engine's durability barrier across each
                write wave (a task publish's multi-table batches, each run
                append) and commit with one ``commit_group`` per wave /
                flush point — one fsync per touched storage member instead
                of one per write.  Reads on this handle (and other handles
                on the same engine object) merge deferred writes
                transparently; a crash loses at most the uncommitted tail
                of waves, which the idempotent publish/ingest paths
                re-create on rerun.  Forced off in ``shared`` mode: a
                *separate process* on the same database file can neither
                see another writer's uncommitted wave nor write around its
                open transaction.
        """
        if append_batch_size < 1:
            raise ValueError(
                f"append_batch_size must be >= 1, got {append_batch_size}"
            )
        self._engine = engine
        self._namespace = namespace
        self._owns_engine = owns_engine
        self._shared = shared
        self._append_batch_size = append_batch_size
        self._group_commit = bool(group_commit) and not shared
        #: Write-behind buffer of appended-but-unflushed runs, as the
        #: run-dict lists the runs table stores, keyed like the table.
        self._pending_runs: dict[str, list[dict[str, Any]]] = {}
        self._pending_run_count = 0
        self._projects_table = f"{namespace}::projects"
        self._names_table = f"{namespace}::project_names"
        self._tasks_table = f"{namespace}::tasks"
        self._runs_table = f"{namespace}::runs"
        self._meta_table = f"{namespace}::meta"
        for table in (
            self._projects_table,
            self._names_table,
            self._tasks_table,
            self._runs_table,
            self._meta_table,
        ):
            engine.create_table(table)
        #: Cached next-id counters; authoritative copy lives in the meta
        #: table and is re-read lazily after a reopen.
        self._counters: dict[str, int] = {}
        #: Counters whose frontier this store instance has established with
        #: a real lease — the group-commit fast path's entry ticket.
        self._leased_counters: set[str] = set()
        #: Cached total run count; recovered by one scan on first use.
        self._total_runs: int | None = None
        #: Cached copy of the persisted latest-timestamp meta record.
        self._latest_timestamp: float | None = None
        #: Cached sorted task-id list per project, loaded from the index
        #: table on first use and maintained incrementally — pages are then
        #: O(page), not one index scan per page.  Like the counters, the
        #: cache assumes this store object is the engine's only writer.
        self._project_ids: dict[int, list[int]] = {}

    # -- keys and tables ---------------------------------------------------

    @staticmethod
    def _id_key(entity_id: int) -> str:
        """Zero-padded id key: lexicographic order == numeric order."""
        return f"{entity_id:012d}"

    def _index_table(self, project_id: int) -> str:
        return f"{self._namespace}::task_index::{self._id_key(project_id)}"

    def _dedup_table(self, project_id: int) -> str:
        return f"{self._namespace}::dedup::{self._id_key(project_id)}"

    # -- id counters -------------------------------------------------------

    def _allocate(
        self, counter: str, count: int, clock_time: float | None = None
    ) -> int:
        """Reserve *count* consecutive ids via a put-if-absent lease.

        The previous implementation read the counter, bumped it in memory
        and wrote it back — a read-modify-write that is only correct with
        exactly one writer.  Ownership of an id range is now decided by
        inserting a *lease record* keyed by the range's first id: the
        engine's ``put_new`` is atomic even across processes sharing a
        database file, so exactly one contender claims any given range and
        every loser re-probes further along.  On a lost probe the next
        candidate comes from whichever is larger: skipping past the
        winner's claimed range, or the freshly re-read counter hint.

        The counter record itself is demoted to a *hint* — written after a
        successful claim so the next allocation (and a reopened store)
        starts probing near the frontier, but never trusted for ownership.
        Two hint writes racing can leave it behind the true frontier; the
        probe loop walks forward over the surviving leases regardless.  A
        crash between claim and hint write leaves an unused id gap, never a
        reused id — the same gap-only guarantee the single-writer path had.
        A clock record rides in the same hint batch for free.

        Under ``group_commit`` (single-writer by construction — the flag is
        forced off in shared mode) the lease runs once per counter per
        store lifetime, to establish the frontier past any stale hint a
        previous crash left behind.  After that the counter record is
        authoritative for this writer: allocations bump it in memory and
        defer the write, so the hot per-task id reservation stops paying a
        commit.  The bump and the records written under the reserved ids
        ride the same deferred wave, so any barrier commits them together —
        a crash still leaves at most an id gap, never a reused id.
        """
        if self._group_commit and counter in self._leased_counters:
            next_id = self._counters.get(counter)
            if next_id is None:  # pragma: no cover — leasing seeds the cache
                next_id = int(self._engine.get(self._meta_table, counter, default=1))
            self._counters[counter] = next_id + count
            items: list[tuple[str, Any]] = [(counter, next_id + count)]
            if clock_time is not None and clock_time > self.latest_timestamp():
                self._latest_timestamp = clock_time
                items.append(("latest_timestamp", clock_time))
            self._engine.put_many(self._meta_table, items, defer_commit=True)
            return next_id
        next_id = self._counters.get(counter)
        if next_id is None or self._shared:
            next_id = int(self._engine.get(self._meta_table, counter, default=1))
        while True:
            lease_key = f"{counter}::alloc::{next_id:012d}"
            try:
                self._engine.put_new(self._meta_table, lease_key, count)
                break
            except DuplicateKeyError:
                claimed = int(self._engine.get(self._meta_table, lease_key, default=1))
                hint = int(self._engine.get(self._meta_table, counter, default=1))
                next_id = max(next_id + max(1, claimed), hint)
        self._leased_counters.add(counter)
        self._counters[counter] = next_id + count
        items: list[tuple[str, Any]] = [(counter, next_id + count)]
        if clock_time is not None and clock_time > self.latest_timestamp():
            self._latest_timestamp = clock_time
            items.append(("latest_timestamp", clock_time))
        # The hint is advisory (see above), so it may ride to the next group
        # barrier; the lease itself committed through put_new regardless.
        self._engine.put_many(self._meta_table, items, defer_commit=self._group_commit)
        return next_id

    def _record_latest(self, clock_time: float) -> None:
        """Persist *clock_time* as the latest timestamp when it advances it."""
        if clock_time > self.latest_timestamp():
            self._latest_timestamp = clock_time
            self._engine.put_many(
                self._meta_table,
                [("latest_timestamp", clock_time)],
                defer_commit=self._group_commit,
            )

    def latest_timestamp(self) -> float:
        if self._latest_timestamp is None or self._shared:
            self._latest_timestamp = float(
                self._engine.get(self._meta_table, "latest_timestamp", default=0.0)
            )
        return self._latest_timestamp

    def allocate_project_id(self) -> int:
        return self._allocate("next_project_id", 1)

    def allocate_task_ids(self, count: int) -> int:
        return self._allocate("next_task_id", count)

    def allocate_run_ids(self, count: int, clock_time: float | None = None) -> int:
        return self._allocate("next_run_id", count, clock_time=clock_time)

    # -- projects ----------------------------------------------------------

    def put_project(self, project: Project) -> Project:
        # Record first, name claim second.  The name claim (an atomic
        # put_new) is the arbiter of concurrent same-name creates, and this
        # ordering means whoever wins it has already written a complete
        # project record — a loser can never observe a won name whose
        # project does not exist yet.  A crash between the two writes
        # leaves an unnamed orphan record (invisible to find_project_id;
        # the replayed create simply makes a fresh project), the same
        # orphan class the task path tolerates.
        self._engine.create_table(self._index_table(project.project_id))
        self._engine.create_table(self._dedup_table(project.project_id))
        self._engine.put(
            self._projects_table, self._id_key(project.project_id), project.to_dict()
        )
        try:
            self._engine.put_new(self._names_table, project.name, project.project_id)
        except DuplicateKeyError:
            existing_id = self.find_project_id(project.name)
            if existing_id is not None and existing_id != project.project_id:
                existing = self.get_project(existing_id)
                if existing is not None:
                    # Lost the race: discard our record and adopt the winner.
                    self._engine.delete(
                        self._projects_table, self._id_key(project.project_id)
                    )
                    self._engine.drop_table(self._index_table(project.project_id))
                    self._engine.drop_table(self._dedup_table(project.project_id))
                    return existing
            # The mapping is ours already (a replay) or points at a deleted
            # project: take it over.  Two creators can race this takeover
            # only after an explicit delete_project; last writer wins and
            # the other's record becomes an unnamed orphan — documented as
            # out of scope for concurrent delete+create of one name.
            self._engine.put(self._names_table, project.name, project.project_id)
        if not self._shared:
            self._project_ids[project.project_id] = []
        self._record_latest(project.created_at)
        return project

    def get_project(self, project_id: int) -> Project | None:
        payload = self._engine.get(self._projects_table, self._id_key(project_id))
        return Project.from_dict(payload) if payload is not None else None

    def find_project_id(self, name: str) -> int | None:
        project_id = self._engine.get(self._names_table, name)
        return int(project_id) if project_id is not None else None

    def list_project_ids(self) -> list[int]:
        # Ids are monotonic, so insertion order is ascending id order.
        return [int(key) for key in self._engine.scan_keys(self._projects_table)]

    def remove_project(self, project: Project) -> None:
        # Index entries first (never a dangling id), then runs, then the
        # records; project record last, so an interrupted delete can simply
        # be retried — the project stays discoverable until everything it
        # owns is gone.  One batched delete per table instead of one commit
        # per task per table.
        self._flush_pending_runs()
        index_table = self._index_table(project.project_id)
        keys = [
            self._id_key(task_id)
            for task_id in self.project_task_ids(project.project_id)
        ]
        if keys:
            if self._total_runs is not None:
                for payload in self._engine.get_many(
                    self._runs_table, keys, default=[]
                ):
                    self._total_runs -= len(payload)
            self._engine.delete_many(index_table, keys)
            self._engine.delete_many(self._runs_table, keys)
            self._engine.delete_many(self._tasks_table, keys)
        self._project_ids.pop(project.project_id, None)
        self._engine.drop_table(index_table)
        self._engine.drop_table(self._dedup_table(project.project_id))
        self._engine.delete(self._names_table, project.name)
        self._engine.delete(self._projects_table, self._id_key(project.project_id))

    # -- tasks -------------------------------------------------------------

    def add_tasks(self, tasks: Sequence[Task], dedup_keys: Sequence[str | None]) -> None:
        if not tasks:
            return
        # One batch per table, in crash-safe order (a crash can only fall
        # *between* engine batches): dedup mappings first — a mapping to a
        # task that was never written fails the liveness check and the
        # replay simply re-creates under fresh ids.  Task records second —
        # with the mapping present, a replay now resolves to live tasks and
        # returns them instead of duplicating crowd work.  Index entries
        # last — a replay that resolves a hit heals any entries the crash
        # swallowed via :meth:`ensure_indexed`.  No ordering leaves a
        # window where a replay double-publishes.  (A spec *without* a
        # dedup key cannot be recognised by any replay; a crash before its
        # index entry leaves an unreachable task record — a storage leak
        # only, invisible to every page and to :meth:`counts`, which reads
        # the index.)
        index_items: dict[int, list[tuple[str, Any]]] = {}
        dedup_items: dict[int, list[tuple[str, Any]]] = {}
        for task, dedup_key in zip(tasks, dedup_keys):
            index_items.setdefault(task.project_id, []).append(
                (self._id_key(task.task_id), task.task_id)
            )
            if dedup_key is not None:
                dedup_items.setdefault(task.project_id, []).append(
                    (dedup_key, task.task_id)
                )
        # Under group commit the whole publish wave shares one durability
        # barrier: on a single-file engine the wave then commits atomically
        # (strictly stronger than the between-batches ordering above); on a
        # multi-member engine a crash may tear the wave *across* members,
        # which the same replay paths heal — the keyed replay resolves or
        # re-creates, and ensure_indexed repairs swallowed index entries.
        defer = self._group_commit
        for project_id, items in dedup_items.items():
            self._engine.put_many(
                self._dedup_table(project_id), items, defer_commit=defer
            )
        self._engine.put_many(
            self._tasks_table,
            [(self._id_key(task.task_id), task.to_dict()) for task in tasks],
            defer_commit=defer,
        )
        for project_id, items in index_items.items():
            self._engine.put_many(
                self._index_table(project_id), items, defer_commit=defer
            )
            cached = self._project_ids.get(project_id)
            if cached is not None:
                # Fresh ids come from the monotonic counter, so they all
                # sort after anything already cached.
                cached.extend(task_id for _, task_id in items)
        self._record_latest(max(task.created_at for task in tasks))
        if defer:
            self._engine.commit_group()

    def stage_tasks(self, tasks: Sequence[Task]) -> None:
        if not tasks:
            return
        # Record only (see the base-class contract): one durable batch that
        # makes this writer's candidates resolvable by a racing claimer.
        self._engine.put_many(
            self._tasks_table,
            [(self._id_key(task.task_id), task.to_dict()) for task in tasks],
        )

    def discard_staged(self, tasks: Sequence[Task]) -> None:
        self._engine.delete_many(
            self._tasks_table, [self._id_key(task.task_id) for task in tasks]
        )

    def ensure_indexed(self, tasks: Sequence[Task]) -> None:
        by_project: dict[int, list[Task]] = {}
        for task in tasks:
            by_project.setdefault(task.project_id, []).append(task)
        for project_id, group in by_project.items():
            table = self._index_table(project_id)
            keys = [self._id_key(task.task_id) for task in group]
            present = self._engine.get_many(table, keys)
            missing = [
                (key, task.task_id)
                for key, task, value in zip(keys, group, present)
                if value is None
            ]
            if missing:
                # Healed entries land at the engine's tail; harmless,
                # because per-project pages are served from the *sorted*
                # key list, never from physical insertion order.  The
                # cached list is reloaded rather than patched in place.
                self._engine.put_many(table, missing)
                self._project_ids.pop(project_id, None)

    def get_task(self, task_id: int) -> Task | None:
        payload = self._engine.get(self._tasks_table, self._id_key(task_id))
        return Task.from_dict(payload) if payload is not None else None

    def get_tasks(self, task_ids: Sequence[int]) -> list[Task | None]:
        payloads = self._engine.get_many(
            self._tasks_table, [self._id_key(task_id) for task_id in task_ids]
        )
        return [
            Task.from_dict(payload) if payload is not None else None
            for payload in payloads
        ]

    def update_task(self, task: Task) -> None:
        self._engine.put(self._tasks_table, self._id_key(task.task_id), task.to_dict())

    def remove_task(self, task: Task) -> None:
        self._flush_pending_runs()
        key = self._id_key(task.task_id)
        if self._total_runs is not None:
            self._total_runs -= len(self._engine.get(self._runs_table, key, default=[]))
        # Index entry first: a crash mid-delete then leaves an *invisible*
        # orphan (task/runs no project lists) rather than a dangling index
        # entry that resolves to nothing.
        self._engine.delete(self._index_table(task.project_id), key)
        self._engine.delete(self._runs_table, key)
        self._engine.delete(self._tasks_table, key)
        cached = self._project_ids.get(task.project_id)
        if cached is not None:
            position = bisect.bisect_left(cached, task.task_id)
            if position < len(cached) and cached[position] == task.task_id:
                del cached[position]

    def _sorted_task_ids(self, project_id: int) -> list[int]:
        """The project's task ids, ascending — cached after one index scan.

        Zero-padded keys make lexicographic order numeric order, and ids
        are monotonic, so sorting restores publication order regardless of
        the index's physical insertion order (entries healed by
        ``ensure_indexed`` after a torn batch land at the engine's tail).
        """
        if self._shared:
            # Another server may have appended to this project; the cache
            # cannot know, so shared mode reads the index every time.
            return sorted(
                int(key)
                for key in self._engine.scan_keys(self._index_table(project_id))
            )
        cached = self._project_ids.get(project_id)
        if cached is None:
            cached = sorted(
                int(key)
                for key in self._engine.scan_keys(self._index_table(project_id))
            )
            self._project_ids[project_id] = cached
        return cached

    def project_task_ids(self, project_id: int) -> list[int]:
        return list(self._sorted_task_ids(project_id))

    def task_id_page(
        self, project_id: int, limit: int | None, start_after: int | None
    ) -> list[int]:
        return _page_task_ids(
            self._sorted_task_ids(project_id), limit, start_after, project_id
        )

    def task_id_slice(self, project_id: int, limit: int, offset: int) -> list[int]:
        # Slice the cached list directly: O(slice), not the base
        # implementation's full project_task_ids copy per call.
        return self._sorted_task_ids(project_id)[offset : offset + limit]

    def resolve_dedup_keys(self, project_id: int, keys: Sequence[str]) -> dict[str, int]:
        if not keys:
            return {}
        values = self._engine.get_many(self._dedup_table(project_id), list(keys))
        return {
            key: int(task_id)
            for key, task_id in zip(keys, values)
            if task_id is not None
        }

    def claim_dedup_keys(
        self, project_id: int, claims: Sequence[tuple[str, int]]
    ) -> dict[str, int]:
        if not claims:
            return {}
        # put_many(if_absent=True) is atomic first-writer-wins on every
        # engine (the SQLite engine pushes it into INSERT OR IGNORE, so it
        # holds across processes too) and hands back the surviving record
        # per key — winner or not, the returned id is the owner's.
        records = self._engine.put_many(
            self._dedup_table(project_id), list(claims), if_absent=True
        )
        return {record.key: int(record.value) for record in records}

    # -- task runs ---------------------------------------------------------

    def _decode_runs(self, payload: Any) -> list[TaskRun]:
        return [TaskRun.from_dict(entry) for entry in payload]

    def _merged_payload(self, key: str, stored: Any) -> list[dict[str, Any]]:
        """Return *stored* with any buffered (write-behind) runs appended."""
        pending = self._pending_runs.get(key)
        if not pending:
            return stored
        return list(stored) + pending

    def runs_for_task(self, task_id: int) -> list[TaskRun]:
        key = self._id_key(task_id)
        payload = self._engine.get(self._runs_table, key, default=[])
        return self._decode_runs(self._merged_payload(key, payload))

    def runs_for_tasks(self, task_ids: Sequence[int]) -> list[list[TaskRun]]:
        keys = [self._id_key(task_id) for task_id in task_ids]
        payloads = self._engine.get_many(self._runs_table, keys, default=[])
        return [
            self._decode_runs(self._merged_payload(key, payload))
            for key, payload in zip(keys, payloads)
        ]

    def append_runs(self, task_id: int, runs: Sequence[TaskRun]) -> None:
        if not runs:
            return
        key = self._id_key(task_id)
        if self._append_batch_size > 1:
            self._pending_runs.setdefault(key, []).extend(
                run.to_dict() for run in runs
            )
            self._pending_run_count += len(runs)
            if self._total_runs is not None:
                self._total_runs += len(runs)
            if self._pending_run_count >= self._append_batch_size:
                self._flush_pending_runs()
            return
        # Copy before extending: the memory engine hands out its stored list
        # by reference, and the stored value must only change via put.
        stored = list(self._engine.get(self._runs_table, key, default=[]))
        stored.extend(run.to_dict() for run in runs)
        # Under group commit the append rides to the next barrier (a lease
        # allocation, an explicit flush, or close) instead of paying its own
        # commit — the simulate loop's hot path.  Reads on this engine see
        # the deferred write immediately.
        self._engine.put_many(
            self._runs_table, [(key, stored)], defer_commit=self._group_commit
        )
        if self._total_runs is not None:
            self._total_runs += len(runs)

    def _flush_pending_runs(self) -> None:
        """Flush the write-behind append buffer as one engine batch.

        One ``get_many`` to fetch the touched tasks' stored run lists, one
        ``put_many`` to write them back extended — O(1) engine round-trips
        per flush no matter how many tasks contributed appends.  The write
        is atomic per engine batch semantics, so a crash loses either the
        whole buffer or (on the crash-stepping engines) a key-prefix of
        it; both heal by re-running ``simulate_work``.
        """
        if not self._pending_runs:
            return
        keys = list(self._pending_runs)
        stored_lists = self._engine.get_many(self._runs_table, keys, default=[])
        self._engine.put_many(
            self._runs_table,
            [
                (key, list(stored) + self._pending_runs[key])
                for key, stored in zip(keys, stored_lists)
            ],
            defer_commit=self._group_commit,
        )
        self._pending_runs = {}
        self._pending_run_count = 0

    def run_count(self, task_id: int) -> int:
        key = self._id_key(task_id)
        payload = self._engine.get(self._runs_table, key, default=[])
        return len(payload) + len(self._pending_runs.get(key, ()))

    def run_counts_for_tasks(self, task_ids: Sequence[int]) -> list[int]:
        keys = [self._id_key(task_id) for task_id in task_ids]
        payloads = self._engine.get_many(self._runs_table, keys, default=[])
        return [
            len(payload) + len(self._pending_runs.get(key, ()))
            for key, payload in zip(keys, payloads)
        ]

    # -- introspection and lifecycle ---------------------------------------

    def _count_total_runs(self) -> int:
        self._flush_pending_runs()
        if self._shared:
            # Other writers append runs this handle never sees; count what
            # is actually on the engine, every time.
            return sum(
                len(record.value) for record in self._engine.scan(self._runs_table)
            )
        if self._total_runs is None:
            # One recovery scan on the first counts() after (re)open;
            # maintained incrementally afterwards.  (Deliberately *not* a
            # persisted counter: the scan reflects what actually survived a
            # crash, which a counter written ahead of the runs would not.)
            self._total_runs = sum(
                len(record.value) for record in self._engine.scan(self._runs_table)
            )
        return self._total_runs

    def counts(self) -> dict[str, int]:
        project_ids = self.list_project_ids()
        return {
            "projects": len(project_ids),
            # Count *indexed* tasks: an unreachable record left by a crash
            # before its index entry (see add_tasks) must not skew stats.
            "tasks": sum(
                self._engine.count(self._index_table(project_id))
                for project_id in project_ids
            ),
            "task_runs": self._count_total_runs(),
        }

    def describe(self) -> dict[str, Any]:
        description = super().describe()
        description["engine"] = self._engine.engine_name
        description["namespace"] = self._namespace
        description["shared"] = self._shared
        return description

    def flush(self) -> None:
        self._flush_pending_runs()
        if self._group_commit:
            self._engine.commit_group()
        self._engine.flush()

    def flush_appends(self) -> None:
        self._flush_pending_runs()
        if self._group_commit:
            self._engine.commit_group()

    def close(self) -> None:
        self._flush_pending_runs()
        if self._group_commit:
            # The engine may outlive this store handle (shared-engine
            # contexts): leave no wave uncommitted behind us.
            self._engine.commit_group()
        if self._owns_engine:
            self._engine.close()


def open_task_store(
    config: PlatformConfig, shared_engine: StorageEngine | None = None
) -> TaskStore:
    """Build the task store described by ``config.store`` / ``config.store_engine``.

    Args:
        config: Platform configuration.  ``store`` selects ``"memory"``
            (default) or ``"durable"``; for a durable store,
            ``store_engine`` (a :class:`~repro.config.StorageConfig`) names
            the engine to open — the store then owns and closes it.
        shared_engine: An already-open engine to piggyback on when
            ``store == "durable"`` and no ``store_engine`` is configured.
            This is how :class:`~repro.core.context.CrowdContext` keeps the
            whole experiment — client cache *and* platform state — in one
            sharable artifact.

    Raises:
        ConfigurationError: Unknown ``store`` kind, or a durable store with
            neither ``store_engine`` nor *shared_engine*.
    """
    if config.store == "memory":
        return MemoryTaskStore()
    if config.store == "durable":
        if config.store_engine is not None:
            return DurableTaskStore(
                open_engine(config.store_engine),
                owns_engine=True,
                append_batch_size=config.append_batch_size,
                group_commit=config.group_commit,
            )
        if shared_engine is not None:
            return DurableTaskStore(
                shared_engine,
                append_batch_size=config.append_batch_size,
                group_commit=config.group_commit,
            )
        raise ConfigurationError(
            "PlatformConfig(store='durable') needs a store_engine (or an engine "
            "to share, as CrowdContext provides)"
        )
    raise ConfigurationError(
        f"unknown platform task store {config.store!r}; expected 'memory' or 'durable'"
    )
