"""Data model of the simulated platform: projects, tasks and task runs.

The field names deliberately mirror PyBossa's JSON API (``info``,
``n_answers``, ``task_run``) so that code written against the original
Reprowd client reads naturally against this simulator.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any


@dataclass
class Project:
    """A crowdsourcing project (one per experiment table).

    Attributes:
        project_id: Server-assigned numeric id.
        name: Unique project name (Reprowd uses the CrowdData table name).
        short_name: URL-safe variant of the name.
        description: Human-readable description.
        task_presenter: HTML of the task presenter shown to workers.
        created_at: Simulated-clock creation timestamp.
    """

    project_id: int
    name: str
    short_name: str
    description: str = ""
    task_presenter: str = ""
    created_at: float = 0.0

    def to_dict(self) -> dict[str, Any]:
        """Return a JSON-friendly representation."""
        return {
            "id": self.project_id,
            "name": self.name,
            "short_name": self.short_name,
            "description": self.description,
            "task_presenter": self.task_presenter,
            "created_at": self.created_at,
        }

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "Project":
        """Rebuild a project from :meth:`to_dict` output."""
        return cls(
            project_id=payload["id"],
            name=payload["name"],
            short_name=payload["short_name"],
            description=payload.get("description", ""),
            task_presenter=payload.get("task_presenter", ""),
            created_at=payload.get("created_at", 0.0),
        )


@dataclass
class Task:
    """One published task.

    Attributes:
        task_id: Server-assigned numeric id.
        project_id: Owning project.
        info: Arbitrary task payload (the CrowdData ``object`` plus presenter
            metadata such as the candidate answers).
        n_assignments: Number of distinct worker answers requested.
        priority: Scheduling priority (higher first), unused by default.
        created_at: Simulated-clock publication timestamp.
        completed_at: Simulated-clock time the final answer arrived, or None.
    """

    task_id: int
    project_id: int
    info: dict[str, Any]
    n_assignments: int = 3
    priority: float = 0.0
    created_at: float = 0.0
    completed_at: float | None = None

    def to_dict(self) -> dict[str, Any]:
        """Return a JSON-friendly representation."""
        return {
            "id": self.task_id,
            "project_id": self.project_id,
            "info": self.info,
            "n_answers": self.n_assignments,
            "priority": self.priority,
            "created_at": self.created_at,
            "completed_at": self.completed_at,
        }

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "Task":
        """Rebuild a task from :meth:`to_dict` output."""
        return cls(
            task_id=payload["id"],
            project_id=payload["project_id"],
            info=dict(payload["info"]),
            n_assignments=payload.get("n_answers", 3),
            priority=payload.get("priority", 0.0),
            created_at=payload.get("created_at", 0.0),
            completed_at=payload.get("completed_at"),
        )


@dataclass
class TaskRun:
    """One worker's answer to one task — the unit of lineage.

    Attributes:
        run_id: Server-assigned numeric id.
        task_id: The answered task.
        project_id: The owning project.
        worker_id: The answering worker.
        answer: The worker's answer.
        submitted_at: Simulated-clock submission timestamp.
        latency_seconds: Simulated time the worker spent on the task.
        assignment_order: 1-based order of this answer among the task's
            assignments (the paper's lineage example asks "which workers did
            the tasks?", and in what order).
    """

    run_id: int
    task_id: int
    project_id: int
    worker_id: str
    answer: Any
    submitted_at: float = 0.0
    latency_seconds: float = 0.0
    assignment_order: int = 1

    def to_dict(self) -> dict[str, Any]:
        """Return a JSON-friendly representation."""
        return {
            "id": self.run_id,
            "task_id": self.task_id,
            "project_id": self.project_id,
            "worker_id": self.worker_id,
            "answer": self.answer,
            "submitted_at": self.submitted_at,
            "latency_seconds": self.latency_seconds,
            "assignment_order": self.assignment_order,
        }

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "TaskRun":
        """Rebuild a task run from :meth:`to_dict` output."""
        return cls(
            run_id=payload["id"],
            task_id=payload["task_id"],
            project_id=payload["project_id"],
            worker_id=payload["worker_id"],
            answer=payload["answer"],
            submitted_at=payload.get("submitted_at", 0.0),
            latency_seconds=payload.get("latency_seconds", 0.0),
            assignment_order=payload.get("assignment_order", 1),
        )
