"""PyBossa-shaped client used by the CrowdData layer.

The client is the only part of the platform package that the core library
talks to.  It mirrors the subset of the ``pbclient`` API the original
Reprowd uses — create/find project, create task, fetch task runs — plus a
``simulate_work`` call that stands in for "wait for humans to answer".

All calls go through a :class:`repro.platform.transport.Transport`, and every
write is retried on transport failure, which together with the server's
idempotent project creation exercises the same robustness the original needs
against a flaky PyBossa deployment.
"""

from __future__ import annotations

from typing import Any, Iterator, Sequence

from repro.exceptions import PlatformUnavailableError
from repro.platform.models import Project, Task, TaskRun
from repro.platform.server import PlatformServer
from repro.platform.transport import DirectTransport, Transport


class PlatformClient:
    """Client facade over :class:`repro.platform.server.PlatformServer`."""

    def __init__(
        self,
        server: PlatformServer,
        api_key: str | None = None,
        transport: Transport | None = None,
        max_retries: int = 5,
    ):
        """Connect to *server* with *api_key*.

        Args:
            server: The in-process platform server.
            api_key: API key; defaults to the server's configured key.
            transport: Transport used for every call (direct when omitted).
            max_retries: Number of times a failed call is retried before the
                transport error is propagated.
        """
        self.server = server
        self.api_key = api_key if api_key is not None else server.config.api_key
        self.transport = transport or DirectTransport()
        if max_retries < 1:
            raise ValueError(f"max_retries must be >= 1, got {max_retries}")
        self.max_retries = max_retries
        server.require_auth(self.api_key)

    # -- internals -------------------------------------------------------------

    def _call(self, name: str, method, *args: Any, **kwargs: Any) -> Any:
        """Invoke a server method through the transport with retries."""
        last_error: PlatformUnavailableError | None = None
        for _ in range(self.max_retries):
            try:
                return self.transport.call(name, method, *args, **kwargs)
            except PlatformUnavailableError as exc:
                last_error = exc
        assert last_error is not None
        raise last_error

    # -- projects ---------------------------------------------------------------

    def create_project(
        self, name: str, description: str = "", task_presenter: str = ""
    ) -> Project:
        """Create (or fetch, if it already exists) the project named *name*."""
        return self._call(
            "create_project",
            self.server.create_project,
            name,
            description=description,
            task_presenter=task_presenter,
        )

    def find_project(self, name: str) -> Project | None:
        """Return the project named *name*, or None."""
        return self._call("find_project", self.server.find_project, name)

    def get_project(self, project_id: int) -> Project:
        """Return the project with *project_id*."""
        return self._call("get_project", self.server.get_project, project_id)

    def delete_project(self, project_id: int) -> None:
        """Delete the project and all of its tasks and answers."""
        self._call("delete_project", self.server.delete_project, project_id)

    # -- tasks -------------------------------------------------------------------

    def create_task(
        self,
        project_id: int,
        info: dict[str, Any],
        n_assignments: int | None = None,
        dedup_key: str | None = None,
    ) -> Task:
        """Publish one task and return its descriptor."""
        return self._call(
            "create_task",
            self.server.create_task,
            project_id,
            info,
            n_assignments=n_assignments,
            dedup_key=dedup_key,
        )

    def create_tasks(
        self, project_id: int, task_specs: Sequence[dict[str, Any]]
    ) -> list[Task]:
        """Publish a batch of tasks in one round-trip; return them in order.

        Each spec carries ``info`` plus optional ``n_assignments`` and
        ``dedup_key``.  Give every spec a ``dedup_key`` when publishing from
        durable state: the retry loop may replay the whole batch after an
        ambiguous failure, and only dedup keys make that replay harmless.
        """
        return self._call(
            "create_tasks", self.server.create_tasks, project_id, list(task_specs)
        )

    def get_task(self, task_id: int) -> Task:
        """Return the task with *task_id*."""
        return self._call("get_task", self.server.get_task, task_id)

    def list_tasks(self, project_id: int) -> list[Task]:
        """Return every task of *project_id*."""
        return self._call("list_tasks", self.server.list_tasks, project_id)

    def delete_task(self, task_id: int) -> None:
        """Delete one task and its task runs."""
        self._call("delete_task", self.server.delete_task, task_id)

    def extend_task_redundancy(self, task_id: int, extra: int) -> Task:
        """Request *extra* additional assignments for an existing task."""
        return self._call(
            "extend_task_redundancy", self.server.extend_task_redundancy, task_id, extra
        )

    # -- task runs ------------------------------------------------------------------

    def get_task_runs(self, task_id: int) -> list[TaskRun]:
        """Return the answers collected so far for *task_id*."""
        return self._call("get_task_runs", self.server.get_task_runs, task_id)

    def get_task_runs_for_project(self, project_id: int) -> dict[int, list[TaskRun]]:
        """Return every task's runs of *project_id* in one call, by task id.

        Materialises the whole project; prefer
        :meth:`iter_task_runs_for_project` for projects that may not fit in
        memory.
        """
        return self._call(
            "get_task_runs_for_project",
            self.server.get_task_runs_for_project,
            project_id,
        )

    def list_project_task_ids(
        self, project_id: int, limit: int, start_after: int | None = None
    ) -> list[int]:
        """One page of the project's task ids (exclusive *start_after* cursor)."""
        return self._call(
            "list_project_task_ids",
            self.server.list_project_task_ids,
            project_id,
            limit,
            start_after=start_after,
        )

    def iter_project_task_ids(
        self, project_id: int, page_size: int = 500
    ) -> Iterator[int]:
        """Generate every task id of *project_id*, one retried call per page."""
        cursor: int | None = None
        while True:
            page = self.list_project_task_ids(project_id, page_size, start_after=cursor)
            yield from page
            if len(page) < page_size:
                return
            cursor = page[-1]

    def get_task_runs_page(
        self, project_id: int, limit: int, start_after: int | None = None
    ) -> list[tuple[int, list[TaskRun]]]:
        """One page of ``(task_id, runs)`` pairs (exclusive cursor contract)."""
        return self._call(
            "get_task_runs_page",
            self.server.get_task_runs_page,
            project_id,
            limit,
            start_after=start_after,
        )

    def iter_task_runs_for_project(
        self, project_id: int, page_size: int = 500
    ) -> Iterator[tuple[int, list[TaskRun]]]:
        """Generate every task's ``(task_id, runs)`` pair, page by page.

        Streaming sibling of :meth:`get_task_runs_for_project`: identical
        contents, but each transport round-trip carries at most *page_size*
        tasks' runs, and each page is retried independently — a transport
        failure mid-stream re-fetches one page, not the whole project.
        """
        cursor: int | None = None
        while True:
            page = self.get_task_runs_page(project_id, page_size, start_after=cursor)
            yield from page
            if len(page) < page_size:
                return
            cursor = page[-1][0]

    def is_task_complete(self, task_id: int) -> bool:
        """Return True when the task has all requested answers."""
        return self._call("is_task_complete", self.server.is_task_complete, task_id)

    def is_project_complete(self, project_id: int) -> bool:
        """Return True when every task of the project is answered."""
        return self._call("is_project_complete", self.server.is_project_complete, project_id)

    def pending_assignments(self, project_id: int | None = None) -> int:
        """Return the number of outstanding assignments."""
        return self._call("pending_assignments", self.server.pending_assignments, project_id)

    # -- crowd simulation ---------------------------------------------------------------

    def simulate_work(
        self, project_id: int | None = None, max_assignments: int | None = None
    ) -> int:
        """Stand-in for waiting on human workers: fill pending assignments."""
        return self._call(
            "simulate_work",
            self.server.simulate_work,
            project_id=project_id,
            max_assignments=max_assignments,
        )

    def statistics(self) -> dict[str, Any]:
        """Return server-side counters."""
        return self._call("statistics", self.server.statistics)
