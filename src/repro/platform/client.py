"""PyBossa-shaped client used by the CrowdData layer.

The client is the only part of the platform package that the core library
talks to.  It mirrors the subset of the ``pbclient`` API the original
Reprowd uses — create/find project, create task, fetch task runs — plus a
``simulate_work`` call that stands in for "wait for humans to answer".

All calls go through a :class:`repro.platform.transport.Transport`, and every
write is retried on transport failure, which together with the server's
idempotent project creation exercises the same robustness the original needs
against a flaky PyBossa deployment.

Two clients share that surface:

* :class:`PlatformClient` — one blocking round-trip per call (the seed
  behaviour, and the serial baseline every pipelining claim is measured
  against);
* :class:`PipelinedClient` — the same verbs over an
  :class:`~repro.platform.transport.AsyncTransport`: large ``create_tasks``
  publishes are split into sub-batches kept in flight concurrently, and the
  streaming iterators pump ``max_in_flight`` offset-addressed pages at once,
  so transport latency overlaps with server-side storage work while every
  ordering and idempotence contract of the serial client still holds.
"""

from __future__ import annotations

from collections import deque
from concurrent.futures import Future
from typing import Any, Callable, Iterator, Sequence

from repro.exceptions import PlatformUnavailableError
from repro.platform.models import Project, Task, TaskRun
from repro.platform.server import PlatformServer
from repro.platform.transport import (
    AsyncTransport,
    DirectTransport,
    Transport,
    retry_call,
)


class PlatformClient:
    """Client facade over :class:`repro.platform.server.PlatformServer`."""

    def __init__(
        self,
        server: PlatformServer,
        api_key: str | None = None,
        transport: Transport | None = None,
        max_retries: int = 5,
        retry_backoff: float = 0.0,
        retry_jitter: Callable[[], float] | None = None,
    ):
        """Connect to *server* with *api_key*.

        Args:
            server: The in-process platform server.
            api_key: API key; defaults to the server's configured key.
            transport: Transport used for every call (direct when omitted).
            max_retries: Maximum transport attempts per call (the first
                attempt included) before the transport error is propagated.
            retry_backoff: Base delay between retried attempts (exponential
                with jitter; see
                :func:`~repro.platform.transport.retry_call`).  0 retries
                immediately — the right default in-process; wire clients use
                a small base so a restarting server is not hammered.
            retry_jitter: Deterministic jitter source for the retry delays
                (a zero-argument callable returning [0, 1]); tests pass a
                seeded ``random.Random(...).random`` so fault-recovery
                timing is reproducible.  None keeps the module-level rng.
        """
        self.server = server
        self.api_key = api_key if api_key is not None else server.config.api_key
        self.transport = transport or DirectTransport()
        if max_retries < 1:
            raise ValueError(f"max_retries must be >= 1, got {max_retries}")
        if retry_backoff < 0:
            raise ValueError(f"retry_backoff must be >= 0, got {retry_backoff}")
        self.max_retries = max_retries
        self.retry_backoff = retry_backoff
        self.retry_jitter = retry_jitter
        server.require_auth(self.api_key)

    # -- internals -------------------------------------------------------------

    def _call(self, name: str, method, *args: Any, **kwargs: Any) -> Any:
        """Invoke a server method through the transport with retries."""
        return retry_call(
            lambda: self.transport.call(name, method, *args, **kwargs),
            self.max_retries,
            backoff=self.retry_backoff,
            jitter=self.retry_jitter,
        )

    # -- projects ---------------------------------------------------------------

    def create_project(
        self, name: str, description: str = "", task_presenter: str = ""
    ) -> Project:
        """Create (or fetch, if it already exists) the project named *name*."""
        return self._call(
            "create_project",
            self.server.create_project,
            name,
            description=description,
            task_presenter=task_presenter,
        )

    def find_project(self, name: str) -> Project | None:
        """Return the project named *name*, or None."""
        return self._call("find_project", self.server.find_project, name)

    def get_project(self, project_id: int) -> Project:
        """Return the project with *project_id*."""
        return self._call("get_project", self.server.get_project, project_id)

    def delete_project(self, project_id: int) -> None:
        """Delete the project and all of its tasks and answers."""
        self._call("delete_project", self.server.delete_project, project_id)

    # -- tasks -------------------------------------------------------------------

    def create_task(
        self,
        project_id: int,
        info: dict[str, Any],
        n_assignments: int | None = None,
        dedup_key: str | None = None,
    ) -> Task:
        """Publish one task and return its descriptor."""
        return self._call(
            "create_task",
            self.server.create_task,
            project_id,
            info,
            n_assignments=n_assignments,
            dedup_key=dedup_key,
        )

    def create_tasks(
        self, project_id: int, task_specs: Sequence[dict[str, Any]]
    ) -> list[Task]:
        """Publish a batch of tasks in one round-trip; return them in order.

        Each spec carries ``info`` plus optional ``n_assignments`` and
        ``dedup_key``.  Give every spec a ``dedup_key`` when publishing from
        durable state: the retry loop may replay the whole batch after an
        ambiguous failure, and only dedup keys make that replay harmless.
        """
        return self._call(
            "create_tasks", self.server.create_tasks, project_id, list(task_specs)
        )

    def get_task(self, task_id: int) -> Task:
        """Return the task with *task_id*."""
        return self._call("get_task", self.server.get_task, task_id)

    def list_tasks(self, project_id: int) -> list[Task]:
        """Return every task of *project_id*."""
        return self._call("list_tasks", self.server.list_tasks, project_id)

    def delete_task(self, task_id: int) -> None:
        """Delete one task and its task runs."""
        self._call("delete_task", self.server.delete_task, task_id)

    def extend_task_redundancy(self, task_id: int, extra: int) -> Task:
        """Request *extra* additional assignments for an existing task."""
        return self._call(
            "extend_task_redundancy", self.server.extend_task_redundancy, task_id, extra
        )

    def extend_tasks_redundancy(self, extensions: dict[int, int]) -> list[Task]:
        """Request extra assignments for a batch of tasks in one round-trip.

        *extensions* maps task id to the number of additional assignments;
        the adaptive collection loop uses this to top up every unresolved
        task of a round with a single platform call.
        """
        return self._call(
            "extend_tasks_redundancy",
            self.server.extend_tasks_redundancy,
            dict(extensions),
        )

    # -- task runs ------------------------------------------------------------------

    def get_task_runs(self, task_id: int) -> list[TaskRun]:
        """Return the answers collected so far for *task_id*."""
        return self._call("get_task_runs", self.server.get_task_runs, task_id)

    def get_task_runs_for_project(self, project_id: int) -> dict[int, list[TaskRun]]:
        """Return every task's runs of *project_id* in one call, by task id.

        Materialises the whole project; prefer
        :meth:`iter_task_runs_for_project` for projects that may not fit in
        memory.
        """
        return self._call(
            "get_task_runs_for_project",
            self.server.get_task_runs_for_project,
            project_id,
        )

    def list_project_task_ids(
        self, project_id: int, limit: int, start_after: int | None = None
    ) -> list[int]:
        """One page of the project's task ids (exclusive *start_after* cursor)."""
        return self._call(
            "list_project_task_ids",
            self.server.list_project_task_ids,
            project_id,
            limit,
            start_after=start_after,
        )

    def iter_project_task_ids(
        self, project_id: int, page_size: int = 500
    ) -> Iterator[int]:
        """Generate every task id of *project_id*, one retried call per page."""
        cursor: int | None = None
        while True:
            page = self.list_project_task_ids(project_id, page_size, start_after=cursor)
            yield from page
            if len(page) < page_size:
                return
            cursor = page[-1]

    def list_project_task_ids_slice(
        self, project_id: int, limit: int, offset: int = 0
    ) -> list[int]:
        """One offset-addressed slice of the project's task ids.

        Sibling of :meth:`list_project_task_ids` whose position is an
        absolute offset instead of a chained cursor — slices at different
        offsets are independent, which is what lets the pipelined client
        fetch several of them concurrently.  Offsets past the end return
        ``[]``.
        """
        return self._call(
            "list_project_task_ids_slice",
            self.server.list_project_task_ids_slice,
            project_id,
            limit,
            offset,
        )

    def get_task_runs_slice(
        self, project_id: int, limit: int, offset: int = 0
    ) -> list[tuple[int, list[TaskRun]]]:
        """One offset-addressed slice of ``(task_id, runs)`` pairs.

        Same offset contract as :meth:`list_project_task_ids_slice`.
        """
        return self._call(
            "get_task_runs_slice",
            self.server.get_task_runs_slice,
            project_id,
            limit,
            offset,
        )

    def get_task_runs_page(
        self, project_id: int, limit: int, start_after: int | None = None
    ) -> list[tuple[int, list[TaskRun]]]:
        """One page of ``(task_id, runs)`` pairs (exclusive cursor contract)."""
        return self._call(
            "get_task_runs_page",
            self.server.get_task_runs_page,
            project_id,
            limit,
            start_after=start_after,
        )

    def iter_task_runs_for_project(
        self, project_id: int, page_size: int = 500
    ) -> Iterator[tuple[int, list[TaskRun]]]:
        """Generate every task's ``(task_id, runs)`` pair, page by page.

        Streaming sibling of :meth:`get_task_runs_for_project`: identical
        contents, but each transport round-trip carries at most *page_size*
        tasks' runs, and each page is retried independently — a transport
        failure mid-stream re-fetches one page, not the whole project.
        """
        cursor: int | None = None
        while True:
            page = self.get_task_runs_page(project_id, page_size, start_after=cursor)
            yield from page
            if len(page) < page_size:
                return
            cursor = page[-1][0]

    def is_task_complete(self, task_id: int) -> bool:
        """Return True when the task has all requested answers."""
        return self._call("is_task_complete", self.server.is_task_complete, task_id)

    def is_project_complete(self, project_id: int) -> bool:
        """Return True when every task of the project is answered."""
        return self._call("is_project_complete", self.server.is_project_complete, project_id)

    def pending_assignments(self, project_id: int | None = None) -> int:
        """Return the number of outstanding assignments."""
        return self._call("pending_assignments", self.server.pending_assignments, project_id)

    # -- crowd simulation ---------------------------------------------------------------

    def simulate_work(
        self, project_id: int | None = None, max_assignments: int | None = None
    ) -> int:
        """Stand-in for waiting on human workers: fill pending assignments."""
        return self._call(
            "simulate_work",
            self.server.simulate_work,
            project_id=project_id,
            max_assignments=max_assignments,
        )

    def statistics(self) -> dict[str, Any]:
        """Return server-side counters."""
        return self._call("statistics", self.server.statistics)

    # -- lifecycle ----------------------------------------------------------------

    def close(self) -> None:
        """Release transport resources (worker threads for async transports)."""
        self.transport.close()


class PipelinedClient(PlatformClient):
    """Client facade that keeps up to ``max_in_flight`` calls on the wire.

    Drop-in replacement for :class:`PlatformClient` (select it with
    :class:`~repro.config.PlatformConfig`\\ ``(transport="pipelined")``).
    Three verb families change shape; everything else inherits the serial
    behaviour:

    * :meth:`create_tasks` splits a large publish into sub-batches of
      ``batch_size`` specs and keeps up to ``max_in_flight`` of them in
      flight, so each batch's transport latency overlaps the server's
      storage work on its predecessors.  Sub-batches are applied to the
      server **in submission order** (the transport's ticket turnstile) and
      each one retries independently inside its slot — give every spec a
      ``dedup_key`` so a replayed sub-batch is idempotent, exactly like the
      serial client's retried single batch.
    * :meth:`iter_task_runs_for_project` / :meth:`iter_project_task_ids`
      pump offset-addressed slices (``get_task_runs_slice``) concurrently
      instead of chaining exclusive cursors, turning ``ceil(n /
      page_size)`` serial round-trips into ``ceil(n / page_size /
      max_in_flight)`` waves.  Pages are yielded in publication order
      regardless of arrival order.
    * Every synchronous verb is a **flush-on-read barrier**: it goes
      through :meth:`AsyncTransport.call <repro.platform.transport.AsyncTransport.call>`,
      which drains all in-flight calls first — a read can never observe the
      platform mid-pipeline.

    Failure semantics: a sub-batch whose retries are exhausted raises from
    the verb, like the serial client; earlier sub-batches may already be
    applied, which is the same torn-publish shape a crash leaves and which
    dedup keys make a rerun heal.
    """

    def __init__(
        self,
        server: PlatformServer,
        api_key: str | None = None,
        transport: Transport | None = None,
        max_retries: int = 5,
        max_in_flight: int = 8,
        batch_size: int = 500,
        retry_backoff: float = 0.0,
    ):
        """Connect to *server*, wrapping *transport* in an async layer.

        Args:
            server: The in-process platform server.
            api_key: API key; defaults to the server's configured key.
            transport: Inner transport each attempt goes through (fault
                injection, latency, counting...).  An
                :class:`~repro.platform.transport.AsyncTransport` is used
                as-is; anything else is wrapped in one.
            max_retries: Attempts per call (sync and per in-flight batch).
            max_in_flight: Concurrent calls kept on the wire (ignored when
                *transport* is already an AsyncTransport, which brings its
                own bound).
            batch_size: Specs per ``create_tasks`` sub-batch and the
                default page size for slice-pumped iteration.
            retry_backoff: Base delay between retried attempts, applied to
                the synchronous path here and to the async layer's per-slot
                retries (ignored when *transport* is already an
                AsyncTransport, which brings its own backoff).
        """
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        if not isinstance(transport, AsyncTransport):
            transport = AsyncTransport(
                transport, max_in_flight=max_in_flight, retry_backoff=retry_backoff
            )
        super().__init__(
            server,
            api_key=api_key,
            transport=transport,
            max_retries=max_retries,
            retry_backoff=retry_backoff,
        )
        self.max_in_flight = transport.max_in_flight
        self.batch_size = batch_size

    # -- internals ----------------------------------------------------------------

    def _call_async(self, name: str, method, *args: Any) -> Future:
        """Submit one retried call to the async transport."""
        return self.transport.call_async(
            name, method, *args, retries=self.max_retries
        )

    def _iter_slice_pages(
        self, name: str, method: Callable[..., Any], project_id: int, page_size: int
    ) -> Iterator[list]:
        """Yield slices in offset order while ``max_in_flight`` are fetched ahead.

        The window submits the slice at each successive offset until one
        comes back short — the end of the project, and the end of the
        stream: like the serial cursor iterator, nothing past the first
        short page is yielded, so tasks appended mid-iteration can
        lengthen the final page but never produce a gapped stream.  Slices
        already submitted past that point are legal (they return ``[]``
        against a quiescent project) — they are the price of not knowing
        the project size in advance, and they overlap with useful fetches
        instead of extending the critical path; they are settled, not
        yielded.
        """
        window: deque[Future] = deque()
        offset = 0
        try:
            while True:
                while len(window) < self.max_in_flight:
                    window.append(
                        self._call_async(name, method, project_id, page_size, offset)
                    )
                    offset += page_size
                page = window.popleft().result()
                if page:
                    yield page
                if len(page) < page_size:
                    return
        finally:
            # A consumer may stop mid-stream (streaming collection breaks
            # as soon as every row is filled); settle the speculative
            # fetches so no future outlives the iterator unobserved.
            while window:
                try:
                    window.popleft().result()
                except PlatformUnavailableError:
                    pass

    # -- pipelined verbs ----------------------------------------------------------

    def create_tasks(
        self, project_id: int, task_specs: Sequence[dict[str, Any]]
    ) -> list[Task]:
        """Publish a batch with up to ``max_in_flight`` sub-batches in flight.

        Returns the tasks in spec order, exactly like the serial client.
        See the class docstring for the retry/idempotence contract.
        """
        specs = list(task_specs)
        if len(specs) <= self.batch_size:
            return super().create_tasks(project_id, specs)
        futures = [
            self._call_async(
                "create_tasks",
                self.server.create_tasks,
                project_id,
                specs[start : start + self.batch_size],
            )
            for start in range(0, len(specs), self.batch_size)
        ]
        tasks: list[Task] = []
        first_error: Exception | None = None
        for future in futures:
            # Settle every future even after a failure — transport or
            # server-side alike: an abandoned sub-batch must not stay in
            # flight behind the caller's back.
            try:
                result = future.result()
            except Exception as exc:
                if first_error is None:
                    first_error = exc
                continue
            tasks.extend(result)
        if first_error is not None:
            raise first_error
        return tasks

    def iter_project_task_ids(
        self, project_id: int, page_size: int | None = None
    ) -> Iterator[int]:
        """Generate every task id with ``max_in_flight`` slices on the wire.

        *page_size* defaults to this client's ``batch_size``.
        """
        for page in self._iter_slice_pages(
            "list_project_task_ids_slice",
            self.server.list_project_task_ids_slice,
            project_id,
            page_size or self.batch_size,
        ):
            yield from page

    def iter_task_runs_for_project(
        self, project_id: int, page_size: int | None = None
    ) -> Iterator[tuple[int, list[TaskRun]]]:
        """Generate ``(task_id, runs)`` pairs with concurrent slice fetches.

        Same contents and order as the serial iterator; at most
        ``max_in_flight`` slices' runs are in flight at once, so peak
        residency is bounded by ``max_in_flight * page_size`` tasks' runs.
        *page_size* defaults to this client's ``batch_size``.
        """
        for page in self._iter_slice_pages(
            "get_task_runs_slice",
            self.server.get_task_runs_slice,
            project_id,
            page_size or self.batch_size,
        ):
            yield from page
