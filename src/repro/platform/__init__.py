"""Simulated crowdsourcing platform (PyBossa-shaped).

The original Reprowd talks to a PyBossa server over HTTP; workers answer
tasks in a browser.  Here the platform is an in-process simulator exposing
the same surface the CrowdData layer needs: projects, tasks with a
redundancy requirement, task runs (one per worker answer), and a client API
that publishes tasks and polls for results.  Worker answers come from a
:class:`repro.workers.WorkerPool`, and an optional fault-injecting transport
sits between client and server to exercise retry/idempotence paths.
"""

from repro.platform.assignment import (
    AssignmentStrategy,
    LeastLoadedAssignment,
    RandomAssignment,
    RoundRobinAssignment,
)
from repro.platform.client import PipelinedClient, PlatformClient
from repro.platform.models import Project, Task, TaskRun
from repro.platform.server import PlatformServer
from repro.platform.store import (
    DurableTaskStore,
    MemoryTaskStore,
    TaskStore,
    open_task_store,
)
from repro.platform.transport import (
    AsyncTransport,
    CountingTransport,
    DirectTransport,
    FaultInjectingTransport,
    LatencyInjectingTransport,
    Transport,
)
from repro.platform.wire import (
    RemoteServer,
    WireClient,
    WireServer,
    WireServerHandle,
    WireTransport,
    spawn_server,
)

__all__ = [
    "AssignmentStrategy",
    "RandomAssignment",
    "RoundRobinAssignment",
    "LeastLoadedAssignment",
    "PlatformClient",
    "PipelinedClient",
    "Project",
    "Task",
    "TaskRun",
    "PlatformServer",
    "TaskStore",
    "MemoryTaskStore",
    "DurableTaskStore",
    "open_task_store",
    "Transport",
    "DirectTransport",
    "CountingTransport",
    "FaultInjectingTransport",
    "LatencyInjectingTransport",
    "AsyncTransport",
    "WireTransport",
    "WireClient",
    "WireServer",
    "WireServerHandle",
    "RemoteServer",
    "spawn_server",
]
