"""A real socket boundary for the platform: length-prefixed JSON over TCP.

Everything before this module exercised the client→server path through an
in-process function call (``DirectTransport``).  This module puts the same
verbs behind an actual network endpoint:

* :class:`WireServer` hosts a :class:`~repro.platform.server.PlatformServer`
  behind a TCP listener — in this process (tests), or in its own process via
  ``python -m repro.platform.wire`` / :func:`spawn_server`;
* :class:`WireTransport` is a client-side
  :class:`~repro.platform.transport.Transport` speaking the wire protocol,
  so the existing retry/backoff/dedup machinery heals dropped connections
  exactly like injected faults;
* :class:`WireClient` is a :class:`~repro.platform.client.PlatformClient`
  wired to a remote server through a :class:`RemoteServer` proxy.

Protocol (see ``docs/wire.md``):

* **Framing** — every message is one *frame*: a 4-byte big-endian unsigned
  length followed by that many bytes of UTF-8 JSON.  Frames larger than
  ``max_frame_bytes`` (default 16 MiB) are rejected on both sides.
* **Requests** — ``{"op": <verb>, "args": [...], "kwargs": {...}}``; one
  request is outstanding per connection at a time.
* **Responses** — ``{"ok": true, "result": ...}`` or ``{"ok": false,
  "error": {"kind": ..., "message": ..., "attrs": {...}}}``.  Error kinds
  name :mod:`repro.exceptions` classes and are re-raised client-side as the
  matching exception.
* **Values** — JSON scalars, lists and string-keyed dicts pass through;
  model objects, tuples and non-string-keyed dicts travel as tagged
  objects (``{"__wire__": "task", ...}``) and are rebuilt on the far side.

Failure semantics: any connect/reset/EOF/timeout on the client raises
:class:`~repro.exceptions.PlatformUnavailableError` — the *retryable* error
the platform stack already knows — after dropping the connection, so the
next attempt reconnects from scratch.  Combined with dedup keys, a call
whose response was lost mid-wire replays exactly-once against the restarted
server.  Server-side errors keep the connection open; they are answers, not
faults.

Composition limits: ``WireTransport`` is a per-attempt transport like
``DirectTransport``; wrapping it in an ``AsyncTransport`` (the pipelined
client) is **not** supported in this revision because the protocol allows
only one outstanding request per connection.
"""

from __future__ import annotations

import argparse
import json
import os
import socket
import struct
import subprocess
import sys
import threading
import time
from typing import Any, Callable, Sequence

from repro import exceptions as _exceptions
from repro.config import PlatformConfig, StorageConfig
from repro.exceptions import (
    ConfigurationError,
    DuplicateKeyError,
    PlatformError,
    PlatformUnavailableError,
    ProjectNotFoundError,
    ReprowdError,
    TaskNotFoundError,
)
from repro.platform.client import PlatformClient
from repro.platform.models import Project, Task, TaskRun
from repro.platform.server import PlatformServer
from repro.platform.store import DurableTaskStore, MemoryTaskStore
from repro.platform.transport import Transport, retry_call
from repro.storage.engine import open_engine
from repro.workers.pool import WorkerPool

#: Largest frame either side will send or accept, in bytes.
DEFAULT_MAX_FRAME_BYTES = 16 * 1024 * 1024

#: Socket timeout for client calls (covers slow simulate_work batches).
DEFAULT_WIRE_TIMEOUT = 30.0

#: Base retry backoff for wire clients.  Unlike the in-process default of
#: 0.0, a real server restart takes wall-clock time; hammering it with
#: back-to-back attempts would exhaust the retry budget before it returns.
DEFAULT_WIRE_RETRY_BACKOFF = 0.05

#: Key marking a dict as a tagged wire value rather than a plain mapping.
_TAG = "__wire__"

_HEADER = struct.Struct("!I")

#: The verbs a server will dispatch — everything PlatformClient speaks,
#: plus auth, flush and a liveness probe.  Anything else is rejected
#: without touching the platform.
WIRE_OPS = frozenset(
    {
        "require_auth",
        "ping",
        "flush",
        "create_project",
        "find_project",
        "get_project",
        "delete_project",
        "create_task",
        "create_tasks",
        "get_task",
        "list_tasks",
        "delete_task",
        "extend_task_redundancy",
        "extend_tasks_redundancy",
        "get_task_runs",
        "get_task_runs_for_project",
        "list_project_task_ids",
        "list_project_task_ids_slice",
        "get_task_runs_slice",
        "get_task_runs_page",
        "is_task_complete",
        "is_project_complete",
        "pending_assignments",
        "simulate_work",
        "statistics",
    }
)


class FrameTooLargeError(PlatformError):
    """A frame exceeded the negotiated maximum size.

    Deliberately *not* a :class:`PlatformUnavailableError`: retrying an
    oversized payload would send the same oversized payload again.
    """

    def __init__(self, length: int, max_frame_bytes: int):
        super().__init__(
            f"wire frame of {length} bytes exceeds the "
            f"{max_frame_bytes}-byte maximum"
        )
        self.length = length
        self.max_frame_bytes = max_frame_bytes


# -- value encoding ----------------------------------------------------------


def encode_value(value: Any) -> Any:
    """Encode *value* into the JSON-safe wire representation.

    Plain JSON shapes pass through; model objects, tuples and dicts with
    non-string keys (or that collide with the tag key) become tagged
    objects :func:`decode_value` rebuilds exactly.
    """
    if isinstance(value, Project):
        return {_TAG: "project", "data": value.to_dict()}
    if isinstance(value, Task):
        return {_TAG: "task", "data": value.to_dict()}
    if isinstance(value, TaskRun):
        return {_TAG: "run", "data": value.to_dict()}
    if isinstance(value, tuple):
        return {_TAG: "tuple", "items": [encode_value(item) for item in value]}
    if isinstance(value, list):
        return [encode_value(item) for item in value]
    if isinstance(value, dict):
        if _TAG not in value and all(isinstance(key, str) for key in value):
            return {key: encode_value(item) for key, item in value.items()}
        # Non-string keys (get_task_runs_for_project keys by task id) or a
        # payload that happens to contain the tag key itself: ship as an
        # explicit pair list so nothing is mistaken for a tagged object.
        return {
            _TAG: "map",
            "items": [
                [encode_value(key), encode_value(item)] for key, item in value.items()
            ],
        }
    return value


def decode_value(value: Any) -> Any:
    """Invert :func:`encode_value`."""
    if isinstance(value, list):
        return [decode_value(item) for item in value]
    if isinstance(value, dict):
        tag = value.get(_TAG)
        if tag is None:
            return {key: decode_value(item) for key, item in value.items()}
        if tag == "project":
            return Project.from_dict(value["data"])
        if tag == "task":
            return Task.from_dict(value["data"])
        if tag == "run":
            return TaskRun.from_dict(value["data"])
        if tag == "tuple":
            return tuple(decode_value(item) for item in value["items"])
        if tag == "map":
            return {
                decode_value(key): decode_value(item) for key, item in value["items"]
            }
        raise PlatformError(f"unknown wire value tag {tag!r}")
    return value


# -- error encoding ----------------------------------------------------------

#: Exception kinds rebuilt client-side, by class name.  Registered from the
#: exceptions module so new ReprowdError subclasses are wire-known for free.
_ERROR_KINDS: dict[str, type] = {
    name: cls
    for name, cls in vars(_exceptions).items()
    if isinstance(cls, type) and issubclass(cls, ReprowdError)
}

#: Exception attributes worth shipping so the client can rebuild the
#: errors whose constructors need more than a message.
_ERROR_ATTRS = ("project_id", "task_id", "table_name", "key", "step", "detail")


def encode_error(exc: BaseException) -> dict[str, Any]:
    """Encode an exception as the wire error object."""
    attrs: dict[str, Any] = {}
    for name in _ERROR_ATTRS:
        attr = getattr(exc, name, None)
        if isinstance(attr, (str, int, float, bool)):
            attrs[name] = attr
    kind = type(exc).__name__ if isinstance(exc, ReprowdError) else "PlatformError"
    message = str(exc) if isinstance(exc, ReprowdError) else f"{type(exc).__name__}: {exc}"
    return {"kind": kind, "message": message, "attrs": attrs}


def decode_error(error: dict[str, Any]) -> ReprowdError:
    """Rebuild the closest client-side exception for a wire error object."""
    kind = error.get("kind", "PlatformError")
    message = error.get("message", "")
    attrs = error.get("attrs") or {}
    if kind == "ProjectNotFoundError":
        return ProjectNotFoundError(attrs.get("project_id"))
    if kind == "TaskNotFoundError":
        return TaskNotFoundError(attrs.get("task_id"))
    if kind == "DuplicateKeyError":
        return DuplicateKeyError(attrs.get("table_name", "?"), attrs.get("key", "?"))
    cls = _ERROR_KINDS.get(kind)
    if cls is not None:
        try:
            return cls(message)
        except TypeError:
            pass
    return PlatformError(message or f"server error of kind {kind!r}")


# -- framing -----------------------------------------------------------------


def write_frame(
    sock: socket.socket, payload: dict[str, Any], max_frame_bytes: int
) -> None:
    """Send one frame; raises :class:`FrameTooLargeError` before sending."""
    data = json.dumps(payload, separators=(",", ":")).encode("utf-8")
    if len(data) > max_frame_bytes:
        raise FrameTooLargeError(len(data), max_frame_bytes)
    # One sendall for header+body: a killed peer then fails the whole
    # frame rather than leaving a bare header on the wire.
    sock.sendall(_HEADER.pack(len(data)) + data)


def _recv_exact(sock: socket.socket, count: int) -> bytes:
    chunks: list[bytes] = []
    remaining = count
    while remaining:
        chunk = sock.recv(min(remaining, 65536))
        if not chunk:
            raise ConnectionError(
                f"connection closed with {remaining} of {count} frame bytes unread"
            )
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def read_frame(sock: socket.socket, max_frame_bytes: int) -> dict[str, Any] | None:
    """Read one frame; None on a clean EOF *between* frames.

    EOF inside a frame (header or body) raises :class:`ConnectionError` —
    a peer died mid-message, which the client maps to
    :class:`PlatformUnavailableError`.  Partial ``recv`` returns are
    reassembled, so a frame split across arbitrarily many TCP segments
    reads back whole.
    """
    header = b""
    while len(header) < _HEADER.size:
        chunk = sock.recv(_HEADER.size - len(header))
        if not chunk:
            if not header:
                return None
            raise ConnectionError("connection closed inside a frame header")
        header += chunk
    (length,) = _HEADER.unpack(header)
    if length > max_frame_bytes:
        raise FrameTooLargeError(length, max_frame_bytes)
    return json.loads(_recv_exact(sock, length).decode("utf-8"))


# -- client side -------------------------------------------------------------


class WireTransport(Transport):
    """Client-side transport speaking the wire protocol to one server.

    Implements the per-attempt :class:`Transport` contract: every
    :meth:`call` is one request/response exchange, any transport-level
    failure (connect refused, reset, EOF, timeout) drops the connection and
    raises :class:`PlatformUnavailableError`, and the next call reconnects.
    The *method* argument of :meth:`call` — a bound method under direct
    transports — is ignored here; the verb *name* is what goes on the wire.
    """

    def __init__(
        self,
        host: str,
        port: int,
        timeout: float = DEFAULT_WIRE_TIMEOUT,
        max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
    ):
        self.host = host
        self.port = port
        self.timeout = timeout
        self.max_frame_bytes = max_frame_bytes
        self._sock: socket.socket | None = None

    def _connect(self) -> socket.socket:
        if self._sock is None:
            sock = socket.create_connection((self.host, self.port), timeout=self.timeout)
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            self._sock = sock
        return self._sock

    def _drop(self) -> None:
        sock, self._sock = self._sock, None
        if sock is not None:
            try:
                sock.close()
            except OSError:  # pragma: no cover - close is best-effort
                pass

    def call(self, name: str, method: Any, *args: Any, **kwargs: Any) -> Any:
        request = {
            "op": name,
            "args": [encode_value(arg) for arg in args],
            "kwargs": {key: encode_value(value) for key, value in kwargs.items()},
        }
        try:
            sock = self._connect()
            write_frame(sock, request, self.max_frame_bytes)
            response = read_frame(sock, self.max_frame_bytes)
        except FrameTooLargeError:
            # Outbound: nothing was sent.  Inbound: the stream is desynced.
            # Dropping is safe either way, and the error is deterministic,
            # so it must not look retryable.
            self._drop()
            raise
        except (OSError, ValueError) as exc:
            # OSError covers connect/reset/timeout; ValueError covers a
            # corrupt (non-JSON) frame from a dying peer.
            self._drop()
            raise PlatformUnavailableError(
                f"wire call {name!r} to {self.host}:{self.port} failed: {exc}"
            ) from exc
        if response is None:
            self._drop()
            raise PlatformUnavailableError(
                f"server closed the connection during {name!r}"
            )
        if response.get("ok"):
            return decode_value(response.get("result"))
        raise decode_error(response.get("error") or {})

    def close(self) -> None:
        self._drop()


class RemoteServer:
    """Client-side proxy standing where :class:`PlatformServer` stands.

    :class:`PlatformClient` holds a server object and passes its bound
    methods to the transport; against a remote platform there is no such
    object, so this proxy synthesises one verb handle per attribute access.
    The handles are callable (they perform the wire call) but under a
    :class:`WireTransport` they are never invoked — the transport dispatches
    on the verb *name*.
    """

    def __init__(self, transport: WireTransport, config: PlatformConfig):
        self._transport = transport
        #: Client-side view of the platform config (api_key in particular);
        #: authoritative state lives in the server process.
        self.config = config

    def __getattr__(self, name: str) -> "_RemoteVerb":
        if name.startswith("_") or name not in WIRE_OPS:
            raise AttributeError(
                f"{type(self).__name__!s} exposes only wire verbs, not {name!r}"
            )
        return _RemoteVerb(self._transport, name)

    def require_auth(self, api_key: str) -> None:
        """Authenticate over the wire, retrying while the server starts up."""
        retry_call(
            lambda: self._transport.call("require_auth", None, api_key),
            retries=5,
            backoff=DEFAULT_WIRE_RETRY_BACKOFF,
        )

    def flush(self) -> None:
        """Ask the remote platform to flush its store durably."""
        self._transport.call("flush", None)

    def close(self) -> None:
        """No-op: the server's lifecycle belongs to its own process."""


class _RemoteVerb:
    """One callable verb handle vended by :class:`RemoteServer`."""

    def __init__(self, transport: WireTransport, name: str):
        self._transport = transport
        self.__name__ = name

    def __call__(self, *args: Any, **kwargs: Any) -> Any:
        return self._transport.call(self.__name__, self, *args, **kwargs)


class WireClient(PlatformClient):
    """A :class:`PlatformClient` whose server lives across a socket.

    Same verbs, same retry/dedup behaviour — only the transport differs,
    and the retry backoff defaults to a small base
    (:data:`DEFAULT_WIRE_RETRY_BACKOFF`) instead of 0 because real
    reconnects take wall-clock time.
    """

    def __init__(
        self,
        host: str,
        port: int,
        api_key: str | None = None,
        max_retries: int = 5,
        retry_backoff: float = DEFAULT_WIRE_RETRY_BACKOFF,
        retry_jitter: "Callable[[], float] | None" = None,
        timeout: float = DEFAULT_WIRE_TIMEOUT,
        max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
        owned_server: "WireServerHandle | None" = None,
    ):
        """Connect to the server at ``host:port``.

        Args:
            host: Server host.
            port: Server port.
            api_key: API key; the default platform key when omitted.
            max_retries: Transport attempts per call, first included.
            retry_backoff: Base delay between retried attempts.
            retry_jitter: Deterministic jitter source for the retry delays
                (see :class:`~repro.platform.client.PlatformClient`); tests
                seed it so reconnect timing cannot flake.
            timeout: Socket timeout per request/response exchange.
            max_frame_bytes: Frame-size cap (must match the server's).
            owned_server: A handle from :func:`spawn_server` this client
                should stop when it closes — how a private per-experiment
                server process gets its lifetime tied to the experiment.
        """
        config = PlatformConfig() if api_key is None else PlatformConfig(api_key=api_key)
        transport = WireTransport(
            host, port, timeout=timeout, max_frame_bytes=max_frame_bytes
        )
        self._owned_server = owned_server
        super().__init__(
            RemoteServer(transport, config),
            api_key=api_key,
            transport=transport,
            max_retries=max_retries,
            retry_backoff=retry_backoff,
            retry_jitter=retry_jitter,
        )

    def close(self) -> None:
        super().close()
        if self._owned_server is not None:
            self._owned_server.stop()
            self._owned_server = None


# -- server side -------------------------------------------------------------


class WireServer:
    """TCP front-end for one :class:`PlatformServer`.

    Threaded: one accept loop, one thread per connection, and one dispatch
    lock serialising every platform call — the platform server (clock,
    worker pool, store caches) is not internally thread-safe, and the wire
    contract only promises one outstanding request per *connection*, not
    true server-side parallelism.  Cross-process parallelism is the shared
    store's job (see ``--shared``).
    """

    def __init__(
        self,
        platform: PlatformServer,
        host: str = "127.0.0.1",
        port: int = 0,
        max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
    ):
        """Bind (but do not start serving) on ``host:port``.

        Port 0 binds an ephemeral port; read the chosen one from ``.port``.
        The caller keeps ownership of *platform* — :meth:`stop` never
        closes it.
        """
        self.platform = platform
        self.max_frame_bytes = max_frame_bytes
        self._listener = socket.create_server((host, port))
        self.host, self.port = self._listener.getsockname()[:2]
        self._dispatch_lock = threading.Lock()
        self._stopping = threading.Event()
        self._accept_thread: threading.Thread | None = None
        self._connections: set[socket.socket] = set()
        self._connections_lock = threading.Lock()
        self._threads: list[threading.Thread] = []

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> None:
        """Start accepting connections on a background thread."""
        if self._accept_thread is not None:
            return
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="wire-accept", daemon=True
        )
        self._accept_thread.start()

    def serve_forever(self) -> None:
        """Serve on the calling thread until :meth:`stop` is called."""
        self.start()
        assert self._accept_thread is not None
        while self._accept_thread.is_alive():
            self._accept_thread.join(timeout=0.5)

    def stop(self) -> None:
        """Stop accepting, sever every connection, and join the threads.

        In-flight calls see their sockets closed — clients observe
        :class:`PlatformUnavailableError`, exactly like a killed process.
        """
        if self._stopping.is_set():
            return
        self._stopping.set()
        # Closing a listener does not wake a blocked accept() on Linux;
        # connect once so the accept loop observes the stop flag instead of
        # idling until its join timeout.
        try:
            socket.create_connection((self.host, self.port), timeout=1.0).close()
        except OSError:
            pass
        try:
            self._listener.close()
        except OSError:  # pragma: no cover
            pass
        with self._connections_lock:
            connections = list(self._connections)
        for conn in connections:
            try:
                conn.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                conn.close()
            except OSError:  # pragma: no cover
                pass
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=5.0)
        for thread in self._threads:
            thread.join(timeout=5.0)

    def __enter__(self) -> "WireServer":
        self.start()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()

    # -- serving -----------------------------------------------------------

    def _accept_loop(self) -> None:
        while not self._stopping.is_set():
            try:
                conn, _ = self._listener.accept()
            except OSError:
                return  # listener closed by stop()
            conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            with self._connections_lock:
                self._connections.add(conn)
            thread = threading.Thread(
                target=self._serve_connection, args=(conn,), daemon=True
            )
            self._threads.append(thread)
            thread.start()

    def _serve_connection(self, conn: socket.socket) -> None:
        try:
            while not self._stopping.is_set():
                try:
                    request = read_frame(conn, self.max_frame_bytes)
                except FrameTooLargeError as exc:
                    # Reject, answer, and drop the connection: the unread
                    # body bytes make the stream unusable.
                    self._respond(conn, {"ok": False, "error": encode_error(exc)})
                    return
                except (OSError, ValueError):
                    return  # peer died or sent garbage; nothing to answer
                if request is None:
                    return  # clean disconnect between frames
                response = self._dispatch(request)
                if not self._respond(conn, response):
                    return
        finally:
            with self._connections_lock:
                self._connections.discard(conn)
            try:
                conn.close()
            except OSError:  # pragma: no cover
                pass

    def _respond(self, conn: socket.socket, response: dict[str, Any]) -> bool:
        try:
            write_frame(conn, response, self.max_frame_bytes)
            return True
        except FrameTooLargeError as exc:
            # The *result* outgrew the frame cap (a whole-project fetch of
            # a huge project).  Tell the caller to use the paged verbs.
            try:
                write_frame(conn, {"ok": False, "error": encode_error(exc)}, self.max_frame_bytes)
                return True
            except OSError:
                return False
        except OSError:
            return False

    def _dispatch(self, request: dict[str, Any]) -> dict[str, Any]:
        op = request.get("op")
        if not isinstance(op, str) or op not in WIRE_OPS:
            return {
                "ok": False,
                "error": encode_error(PlatformError(f"unknown wire operation {op!r}")),
            }
        args = [decode_value(arg) for arg in request.get("args") or []]
        kwargs = {
            key: decode_value(value)
            for key, value in (request.get("kwargs") or {}).items()
        }
        try:
            with self._dispatch_lock:
                if op == "ping":
                    result: Any = "pong"
                elif op == "flush":
                    result = self.platform.flush()
                else:
                    result = getattr(self.platform, op)(*args, **kwargs)
            return {"ok": True, "result": encode_value(result)}
        except Exception as exc:  # noqa: BLE001 - every failure must cross the wire
            return {"ok": False, "error": encode_error(exc)}


# -- server process management ----------------------------------------------


class WireServerHandle:
    """A spawned server process: address, liveness, and termination."""

    def __init__(self, process: subprocess.Popen, host: str, port: int):
        self.process = process
        self.host = host
        self.port = port

    def alive(self) -> bool:
        """True while the server process is running."""
        return self.process.poll() is None

    def kill(self) -> None:
        """Kill the process hard (SIGKILL) — the chaos-test path."""
        if self.alive():
            self.process.kill()
        self.process.wait(timeout=10)

    def stop(self) -> None:
        """Terminate the process and reap it."""
        if self.alive():
            self.process.terminate()
            try:
                self.process.wait(timeout=10)
            except subprocess.TimeoutExpired:  # pragma: no cover
                self.process.kill()
                self.process.wait(timeout=10)

    def __enter__(self) -> "WireServerHandle":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()


def _python_env() -> dict[str, str]:
    """Subprocess env whose ``PYTHONPATH`` can import :mod:`repro`."""
    import repro

    src_dir = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
    env = dict(os.environ)
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = src_dir + (os.pathsep + existing if existing else "")
    return env


def spawn_server(
    db: str | None = None,
    host: str = "127.0.0.1",
    api_key: str | None = None,
    seed: int = 0,
    pool_size: int = 20,
    accuracy: float = 0.95,
    shared: bool = False,
    namespace: str = "platform",
    append_batch_size: int = 1,
    port_file: str | None = None,
    timeout: float = 20.0,
) -> WireServerHandle:
    """Launch ``python -m repro.platform.wire`` and wait until it listens.

    Args:
        db: SQLite file for a durable platform store; None serves from an
            in-memory store (state dies with the process).  Two servers
            spawned on the *same* ``db`` (pass ``shared=True``) form the
            multi-server cluster the contention suite exercises.
        host: Interface to bind.
        api_key: Platform API key (default key when omitted).
        seed: Worker-pool seed.
        pool_size: Simulated workers in the pool.
        accuracy: Uniform worker accuracy.
        shared: Mark the durable store as concurrently written by other
            server processes (disables its single-writer caches).
        namespace: Durable store table-name prefix.
        append_batch_size: Run appends per durable write.
        port_file: Where the server publishes its bound port; a throwaway
            sibling of *db* (or of a temp dir) when omitted.
        timeout: Seconds to wait for the server to come up.

    Returns:
        A :class:`WireServerHandle`; the caller owns the process.
    """
    if port_file is None:
        import tempfile

        base = os.path.dirname(os.path.abspath(db)) if db else tempfile.mkdtemp()
        port_file = os.path.join(
            base, f".wire-port-{os.getpid()}-{id(object()):x}.txt"
        )
    if os.path.exists(port_file):
        os.unlink(port_file)
    command = [
        sys.executable,
        "-m",
        "repro.platform.wire",
        "--host",
        host,
        "--port",
        "0",
        "--port-file",
        port_file,
        "--seed",
        str(seed),
        "--pool-size",
        str(pool_size),
        "--accuracy",
        str(accuracy),
        "--namespace",
        namespace,
        "--append-batch-size",
        str(append_batch_size),
    ]
    if db is not None:
        command += ["--store", "durable", "--db", db]
    if api_key is not None:
        command += ["--api-key", api_key]
    if shared:
        command.append("--shared")
    process = subprocess.Popen(
        command,
        env=_python_env(),
        stdout=subprocess.DEVNULL,
        stderr=subprocess.PIPE,
        text=True,
    )
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if process.poll() is not None:
            stderr = process.stderr.read() if process.stderr else ""
            raise PlatformUnavailableError(
                "wire server exited during startup "
                f"(code {process.returncode}): {stderr.strip()[-500:]}"
            )
        try:
            with open(port_file, "r", encoding="utf-8") as handle:
                text = handle.read().strip()
            if text:
                return WireServerHandle(process, host, int(text))
        except (OSError, ValueError):
            pass
        time.sleep(0.02)
    process.kill()
    raise PlatformUnavailableError(
        f"wire server did not publish a port within {timeout} seconds"
    )


# -- command line ------------------------------------------------------------


def build_platform(args: argparse.Namespace) -> PlatformServer:
    """Build the :class:`PlatformServer` a CLI invocation asked for."""
    if args.store == "durable":
        if not args.db:
            raise ConfigurationError("--store durable requires --db PATH")
        store = DurableTaskStore(
            open_engine(StorageConfig(engine="sqlite", path=args.db)),
            namespace=args.namespace,
            owns_engine=True,
            append_batch_size=args.append_batch_size,
            shared=args.shared,
        )
    else:
        store = MemoryTaskStore()
    config_kwargs: dict[str, Any] = {"seed": args.seed}
    if args.api_key is not None:
        config_kwargs["api_key"] = args.api_key
    return PlatformServer(
        worker_pool=WorkerPool.uniform(args.pool_size, args.accuracy, seed=args.seed),
        config=PlatformConfig(**config_kwargs),
        store=store,
    )


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point of ``python -m repro.platform.wire``: serve until killed."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.platform.wire",
        description="Serve a reprowd platform over a TCP socket.",
    )
    parser.add_argument("--host", default="127.0.0.1", help="interface to bind")
    parser.add_argument(
        "--port", type=int, default=0, help="port to bind (0 = ephemeral)"
    )
    parser.add_argument(
        "--port-file",
        default=None,
        help="write the bound port here once listening (spawn handshake)",
    )
    parser.add_argument(
        "--store",
        choices=("memory", "durable"),
        default="memory",
        help="platform state: in-process dicts, or a durable SQLite store",
    )
    parser.add_argument("--db", default=None, help="SQLite file for --store durable")
    parser.add_argument(
        "--namespace", default="platform", help="durable store table prefix"
    )
    parser.add_argument(
        "--shared",
        action="store_true",
        help="other server processes write the same durable store",
    )
    parser.add_argument(
        "--append-batch-size",
        type=int,
        default=1,
        help="run appends coalesced per durable write",
    )
    parser.add_argument("--api-key", default=None, help="accepted API key")
    parser.add_argument("--seed", type=int, default=0, help="worker-pool seed")
    parser.add_argument(
        "--pool-size", type=int, default=20, help="simulated workers in the pool"
    )
    parser.add_argument(
        "--accuracy", type=float, default=0.95, help="uniform worker accuracy"
    )
    parser.add_argument(
        "--max-frame-bytes",
        type=int,
        default=DEFAULT_MAX_FRAME_BYTES,
        help="reject frames larger than this",
    )
    args = parser.parse_args(argv)

    platform = build_platform(args)
    server = WireServer(
        platform, host=args.host, port=args.port, max_frame_bytes=args.max_frame_bytes
    )
    if args.port_file:
        with open(args.port_file, "w", encoding="utf-8") as handle:
            handle.write(f"{server.port}\n")
    print(f"wire server listening on {server.host}:{server.port}", flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:  # pragma: no cover - interactive use
        pass
    finally:
        server.stop()
        platform.close()
    return 0


if __name__ == "__main__":
    sys.exit(main())
