"""Task-assignment strategies: which workers answer which task.

PyBossa assigns tasks to whichever workers show up; the simulator makes that
policy explicit and swappable so experiments can study its effect (e.g. the
least-loaded policy spreads answers evenly, the random policy can give one
prolific worker a large share — which is exactly when Dawid-Skene EM starts
beating majority vote).
"""

from __future__ import annotations

import abc
from typing import Sequence

from repro.exceptions import NoEligibleWorkerError
from repro.workers.pool import SimulatedWorker, WorkerPool


class AssignmentStrategy(abc.ABC):
    """Strategy choosing the distinct workers that answer one task."""

    @abc.abstractmethod
    def assign(self, pool: WorkerPool, n_assignments: int) -> list[SimulatedWorker]:
        """Return *n_assignments* distinct workers from *pool*."""

    @staticmethod
    def _check(pool: WorkerPool, n_assignments: int) -> None:
        if n_assignments <= 0:
            raise ValueError(f"n_assignments must be positive, got {n_assignments}")
        if n_assignments > len(pool):
            raise NoEligibleWorkerError(
                f"task needs {n_assignments} distinct workers but the pool has {len(pool)}"
            )


class RandomAssignment(AssignmentStrategy):
    """Each task gets a uniformly random set of distinct workers."""

    def assign(self, pool: WorkerPool, n_assignments: int) -> list[SimulatedWorker]:
        self._check(pool, n_assignments)
        return pool.draw_distinct(n_assignments)


class RoundRobinAssignment(AssignmentStrategy):
    """Workers are cycled in pool order so each answers a similar number of tasks."""

    def __init__(self) -> None:
        self._cursor = 0

    def assign(self, pool: WorkerPool, n_assignments: int) -> list[SimulatedWorker]:
        self._check(pool, n_assignments)
        workers = pool.workers
        chosen: list[SimulatedWorker] = []
        for offset in range(n_assignments):
            chosen.append(workers[(self._cursor + offset) % len(workers)])
        self._cursor = (self._cursor + n_assignments) % len(workers)
        return chosen


class LeastLoadedAssignment(AssignmentStrategy):
    """Pick the workers that have answered the fewest tasks so far."""

    def assign(self, pool: WorkerPool, n_assignments: int) -> list[SimulatedWorker]:
        self._check(pool, n_assignments)
        ranked: Sequence[SimulatedWorker] = sorted(
            pool.workers, key=lambda worker: (worker.answered_tasks, worker.worker_id)
        )
        return list(ranked[:n_assignments])
