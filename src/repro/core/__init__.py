"""Core of the reproduction: the CrowdData abstraction and CrowdContext.

A crowdsourcing experiment is a sequence of manipulations of a tabular
dataset (CrowdData).  Task and result columns are persisted through the
fault-recovery cache so that re-running a program — after a crash, or on a
collaborator's machine with the shared database file — behaves as if the
program had never stopped: no task is ever re-published, no answer is ever
re-collected, and every manipulation is recorded for later examination.
"""

from repro.core.budget import BudgetExceededError, BudgetTracker
from repro.core.cache import FaultRecoveryCache
from repro.core.context import CrowdContext
from repro.core.crowddata import CrowdData
from repro.core.export import ExperimentExporter
from repro.core.lineage import AnswerLineage, LineageQuery
from repro.core.manipulations import Manipulation, ManipulationLog
from repro.core.session import ExperimentSession

__all__ = [
    "CrowdContext",
    "CrowdData",
    "FaultRecoveryCache",
    "AnswerLineage",
    "LineageQuery",
    "Manipulation",
    "ManipulationLog",
    "ExperimentSession",
    "BudgetTracker",
    "BudgetExceededError",
    "ExperimentExporter",
]
