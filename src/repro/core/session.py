"""Experiment sessions: the share-and-examine workflow as an object.

Figure 2/3 of the paper describe a two-person workflow: Bob runs an
experiment against a database file, shares code + file with Ally, and Ally
reruns and extends it.  :class:`ExperimentSession` packages that workflow —
it owns a database path, runs an experiment function against it, and can
export/import the resulting artifact so tests and benchmarks can script the
whole exchange.
"""

from __future__ import annotations

import os
import shutil
from dataclasses import dataclass, field, replace
from typing import Any, Callable

from repro.config import ReprowdConfig, StorageConfig
from repro.core.context import CrowdContext
from repro.exceptions import CrowdDataError

#: An experiment is any callable taking a CrowdContext and returning a result.
Experiment = Callable[[CrowdContext], Any]


@dataclass
class ExperimentSession:
    """A named, file-backed experiment that can be shared and re-run.

    Attributes:
        name: Experiment name (used in messages only).
        db_path: Path of the SQLite database file backing the experiment.
        seed: Seed forwarded to the context configuration.
        runs: Number of times :meth:`run` has been called on this object.
        durable_platform: When True, the simulated platform's own state
            (projects, tasks, task runs, id counters) lives in the database
            file too (:meth:`ReprowdConfig.durable`), so the platform — not
            just the client cache — survives crash-and-rerun and travels
            with the shared artifact.
        storage_engine: Which durable engine backs ``db_path`` —
            ``"sqlite"`` (the default single sharable file), ``"sharded"``
            or ``"ring"`` (``db_path`` is then a *directory* of child
            files, and the whole directory is the sharable artifact).
        storage_replicas: For the ``"ring"`` engine, how many members keep
            a copy of every key (``StorageConfig.replicas``); 2 lets the
            experiment survive the loss of any single ring member.
        transport: Which client/server boundary the experiment crosses —
            ``"direct"`` (in-process, the default), ``"pipelined"`` or
            ``"wire"`` (the context spawns a ``python -m
            repro.platform.wire`` server process and talks to it over a
            real TCP socket; with ``durable_platform`` the platform's own
            state lives in a sibling ``<db_path>.platform.db`` file, which
            travels with the artifact on :meth:`share`).
    """

    name: str
    db_path: str
    seed: int = 7
    runs: int = 0
    context_kwargs: dict[str, Any] = field(default_factory=dict)
    durable_platform: bool = False
    storage_engine: str = "sqlite"
    storage_replicas: int = 1
    transport: str = "direct"

    def platform_db_path(self) -> str:
        """Path of the wire server's own state file (wire + durable only)."""
        return f"{self.db_path}.platform.db"

    def open_context(self) -> CrowdContext:
        """Open a CrowdContext over this session's database file."""
        factory = ReprowdConfig.durable if self.durable_platform else ReprowdConfig.sqlite
        config = factory(self.db_path, seed=self.seed)
        if self.storage_engine != "sqlite" or self.storage_replicas != 1:
            config = replace(
                config,
                storage=replace(
                    config.storage,
                    engine=self.storage_engine,
                    replicas=self.storage_replicas,
                ),
            )
        if self.transport != "direct":
            platform = replace(config.platform, transport=self.transport)
            if self.transport == "wire" and self.durable_platform:
                # The wire server runs in its own process and cannot share
                # this context's engine, so its durable state gets a sibling
                # file next to the cache database.
                platform = replace(
                    platform,
                    store_engine=StorageConfig(
                        engine="sqlite", path=self.platform_db_path()
                    ),
                )
            config = replace(config, platform=platform)
        return CrowdContext(config=config, **self.context_kwargs)

    def run(self, experiment: Experiment) -> Any:
        """Run *experiment* against this session's database and return its result.

        Because crowd data is cached in the database, running the same
        experiment again reuses every published task and collected answer.
        """
        with self.open_context() as context:
            result = experiment(context)
        self.runs += 1
        return result

    def share(self, destination: str) -> "ExperimentSession":
        """Copy the database file to *destination* and return Ally's session.

        This is Bob handing his artifact to Ally: she gets her own session
        object pointing at her own copy of the database.
        """
        if not os.path.exists(self.db_path):
            raise CrowdDataError(
                f"cannot share {self.name!r}: database {self.db_path!r} does not exist yet"
            )
        os.makedirs(os.path.dirname(os.path.abspath(destination)), exist_ok=True)
        if os.path.isdir(self.db_path):
            # Partitioned backends (sharded/ring): the artifact is the whole
            # directory of child files.
            shutil.copytree(self.db_path, destination, dirs_exist_ok=True)
        else:
            shutil.copy2(self.db_path, destination)
        shared = ExperimentSession(
            name=f"{self.name} (shared)",
            db_path=destination,
            seed=self.seed,
            context_kwargs=dict(self.context_kwargs),
            durable_platform=self.durable_platform,
            storage_engine=self.storage_engine,
            storage_replicas=self.storage_replicas,
            transport=self.transport,
        )
        if os.path.isfile(self.platform_db_path()):
            # Wire + durable: the platform's own state file is part of the
            # artifact — Ally's server must resume Bob's ids and dedup keys.
            shutil.copy2(self.platform_db_path(), shared.platform_db_path())
        return shared

    def database_size_bytes(self) -> int:
        """Return the size of the database artifact (0 when it does not exist).

        For partitioned backends the artifact is a directory; its size is
        the sum of every file beneath it.
        """
        if not os.path.exists(self.db_path):
            return 0
        if os.path.isdir(self.db_path):
            return sum(
                os.path.getsize(os.path.join(root, name))
                for root, _, names in os.walk(self.db_path)
                for name in names
            )
        size = os.path.getsize(self.db_path)
        if os.path.isfile(self.platform_db_path()):
            size += os.path.getsize(self.platform_db_path())
        return size
