"""CrowdContext: the main entry point for Reprowd functionality (Figure 1).

A context wires together the storage engine (fault-recovery cache), the
crowdsourcing platform client, the simulated worker pool and the shared
clock, and hands out :class:`repro.core.crowddata.CrowdData` tables.  In the
paper Bob constructs a CrowdContext pointing at his PyBossa server and a
local cache database; here the "server" is the in-process simulator, and the
cache database is the sharable artifact.
"""

from __future__ import annotations

import os
from typing import Any, Callable, Sequence

from repro.config import ReprowdConfig
from repro.core.budget import BudgetTracker
from repro.core.cache import FaultRecoveryCache
from repro.core.crowddata import CrowdData
from repro.core.manipulations import ManipulationLog
from repro.exceptions import ConfigurationError, CrowdDataError
from repro.platform.client import PipelinedClient, PlatformClient
from repro.platform.server import PlatformServer
from repro.platform.store import open_task_store
from repro.platform.transport import FaultInjectingTransport, Transport
from repro.storage.engine import StorageEngine, open_engine
from repro.utils.timing import SimulatedClock
from repro.workers.pool import WorkerPool


class CrowdContext:
    """Entry point that encapsulates every Reprowd component."""

    def __init__(
        self,
        config: ReprowdConfig | None = None,
        engine: StorageEngine | None = None,
        client: PlatformClient | None = None,
        worker_pool: WorkerPool | None = None,
        transport: Transport | None = None,
        ground_truth: Callable[[Any], Any] | None = None,
        budget: BudgetTracker | None = None,
        log_buffer_size: int = 1,
    ):
        """Create a context.

        Args:
            config: Full configuration; :meth:`ReprowdConfig.in_memory` when
                omitted.
            engine: Pre-built storage engine (overrides ``config.storage``).
            client: Pre-built platform client (overrides the simulated one).
            worker_pool: Pre-built worker pool (overrides ``config.workers``).
            transport: Transport between client and server, e.g. a
                :class:`FaultInjectingTransport`.  With
                ``PlatformConfig(transport="pipelined")`` it becomes the
                *inner* transport of the pipelined client's async layer.
            ground_truth: Default object -> true-answer callable given to
                every CrowdData created by this context.
            budget: Optional crowd-spend tracker shared by every CrowdData of
                this context.
            log_buffer_size: Manipulation-log entries buffered per durable
                append (see :class:`~repro.core.manipulations.ManipulationLog`);
                1 keeps every verb's entry written through immediately.
        """
        self.config = config or ReprowdConfig.in_memory()
        self.clock = SimulatedClock()
        self.engine = engine or open_engine(self.config.storage)
        self.worker_pool = worker_pool or WorkerPool.from_config(self.config.workers)
        self.ground_truth = ground_truth
        self.budget = budget

        self._owns_server = client is None
        if client is not None:
            self.client = client
            self.server = client.server
        else:
            transport_kind = self.config.platform.transport
            if transport_kind == "wire":
                self.client = self._open_wire_client(transport)
                self.server = self.client.server
            elif transport_kind in ("direct", "pipelined"):
                if transport is None and (
                    self.config.platform.failure_rate > 0
                    or self.config.platform.duplicate_delivery_rate > 0
                ):
                    transport = FaultInjectingTransport(
                        failure_rate=self.config.platform.failure_rate,
                        duplicate_rate=self.config.platform.duplicate_delivery_rate,
                        seed=self.config.platform.seed,
                    )
                # With PlatformConfig(store="durable") and no explicit
                # store_engine, the platform's state shares this context's
                # engine: cache and platform land in one sharable artifact,
                # and reopening the same file reopens the same platform.
                self.server = PlatformServer(
                    worker_pool=self.worker_pool,
                    config=self.config.platform,
                    clock=self.clock,
                    store=open_task_store(
                        self.config.platform, shared_engine=self.engine
                    ),
                )
                retry_backoff = self.config.platform.retry_backoff_seconds or 0.0
                if transport_kind == "pipelined":
                    self.client = PipelinedClient(
                        self.server,
                        transport=transport,
                        max_in_flight=self.config.platform.max_in_flight,
                        batch_size=self.config.platform.pipeline_batch_size,
                        retry_backoff=retry_backoff,
                    )
                else:
                    self.client = PlatformClient(
                        self.server, transport=transport, retry_backoff=retry_backoff
                    )
            else:
                raise ConfigurationError(
                    f"unknown platform transport {transport_kind!r}; "
                    "expected 'direct', 'pipelined' or 'wire'"
                )

        self._log_buffer_size = log_buffer_size
        self._tables: dict[str, CrowdData] = {}
        self.engine.create_table("__tables__")

    def _open_wire_client(self, transport: Transport | None):
        """Connect to (or spawn) a wire server per ``config.platform``.

        With ``wire_port`` set, connects to the external server already
        listening there.  With the default ``wire_port=0``, spawns a
        private ``python -m repro.platform.wire`` process whose lifetime is
        tied to this context: closing the context's client terminates it.
        The spawned server builds its own uniform worker pool from
        ``config.workers``'s size and mean accuracy (spammer/adversarial
        mixes need an external server) and — because it cannot share this
        process's engine — keeps durable platform state in the separate
        SQLite file named by ``store_engine``.
        """
        from repro.platform.wire import (
            DEFAULT_WIRE_RETRY_BACKOFF,
            WireClient,
            spawn_server,
        )

        platform = self.config.platform
        if transport is not None:
            raise ConfigurationError(
                "transport='wire' builds its own socket transport; injected "
                "transports (fault/latency/counting) only compose with the "
                "in-process transports"
            )
        retry_backoff = platform.retry_backoff_seconds
        if retry_backoff is None:
            retry_backoff = DEFAULT_WIRE_RETRY_BACKOFF
        client_kwargs: dict[str, Any] = {
            "api_key": platform.api_key,
            "retry_backoff": retry_backoff,
            "max_frame_bytes": platform.wire_max_frame_bytes,
        }
        if platform.wire_port:
            return WireClient(platform.wire_host, platform.wire_port, **client_kwargs)
        db = None
        if platform.store == "durable":
            engine_config = platform.store_engine
            if engine_config is None or engine_config.engine != "sqlite":
                raise ConfigurationError(
                    "a durable wire platform needs "
                    "PlatformConfig.store_engine=StorageConfig(engine='sqlite', "
                    "path=...): the server runs in its own process and cannot "
                    "share this context's engine"
                )
            db = engine_config.path
        handle = spawn_server(
            db=db,
            host=platform.wire_host,
            api_key=platform.api_key,
            seed=platform.seed,
            pool_size=self.config.workers.size,
            accuracy=self.config.workers.mean_accuracy,
            append_batch_size=platform.append_batch_size,
        )
        return WireClient(
            handle.host, handle.port, owned_server=handle, **client_kwargs
        )

    # -- constructors (mirroring the original Reprowd API) --------------------------

    @classmethod
    def in_memory(cls, seed: int = 7, **kwargs: Any) -> "CrowdContext":
        """Context with no durable state (tests, throwaway experiments)."""
        return cls(config=ReprowdConfig.in_memory(seed=seed), **kwargs)

    @classmethod
    def with_sqlite(cls, path: str, seed: int = 7, **kwargs: Any) -> "CrowdContext":
        """Context whose cache lives in the SQLite file at *path*.

        This is Bob's configuration: the file at *path* is exactly what he
        shares with Ally.
        """
        return cls(config=ReprowdConfig.sqlite(path, seed=seed), **kwargs)

    # -- CrowdData management --------------------------------------------------------

    def CrowdData(  # noqa: N802 — mirrors the original Reprowd method name
        self,
        object_list: Sequence[Any],
        table_name: str,
        ground_truth: Callable[[Any], Any] | None = None,
    ) -> CrowdData:
        """Create (or re-open) the CrowdData table *table_name*.

        Args:
            object_list: Input objects, one per row (step 1 of Figure 2).
            table_name: Name of the table; also the platform project name.
            ground_truth: Optional per-table override of the context's
                ground-truth oracle.
        """
        if not table_name or not isinstance(table_name, str):
            raise CrowdDataError(f"table_name must be a non-empty string, got {table_name!r}")
        cache = FaultRecoveryCache(self.engine, table_name)
        log = ManipulationLog(self.engine, table_name, buffer_size=self._log_buffer_size)
        crowddata = CrowdData(
            table_name=table_name,
            objects=list(object_list),
            client=self.client,
            cache=cache,
            manipulation_log=log,
            clock=self.clock,
            ground_truth=ground_truth or self.ground_truth,
            budget=self.budget,
        )
        self._tables[table_name] = crowddata
        self.engine.put("__tables__", table_name, {"table": table_name})
        return crowddata

    def get_table(self, table_name: str) -> CrowdData:
        """Return a CrowdData created earlier in this context."""
        try:
            return self._tables[table_name]
        except KeyError:
            raise CrowdDataError(
                f"no CrowdData named {table_name!r} in this context; "
                f"known tables: {sorted(self._tables)}"
            ) from None

    def show_tables(self) -> list[str]:
        """Return the names of every table ever stored in this database.

        Includes tables created by previous runs against the same database
        file — this is how Ally discovers what Bob's experiment contains.
        """
        return sorted(self.engine.keys("__tables__"))

    def delete_table(self, table_name: str) -> None:
        """Remove a table's cached crowd data, lineage and manipulation log."""
        for suffix in ("tasks", "results", "meta", "manipulations"):
            self.engine.drop_table(f"{table_name}::{suffix}")
        self.engine.delete("__tables__", table_name)
        self._tables.pop(table_name, None)

    # -- simulation controls ------------------------------------------------------------

    def set_ground_truth(self, ground_truth: Callable[[Any], Any] | None) -> None:
        """Set the default object -> true-answer oracle for new tables."""
        self.ground_truth = ground_truth

    def describe(self) -> dict[str, Any]:
        """Return a JSON-friendly summary of the whole context."""
        return {
            "storage": self.engine.describe(),
            "platform": self.client.statistics(),
            "tables": self.show_tables(),
        }

    # -- lifecycle -------------------------------------------------------------------------

    def flush(self) -> None:
        """Flush buffered logs, the storage engine and the server's task store."""
        for table in self._tables.values():
            table.log.flush()
        if self._owns_server:
            self.server.flush()
        self.engine.flush()

    def close(self) -> None:
        """Flush and close the storage engine (and the server's own store)."""
        for table in self._tables.values():
            table.log.flush()
        if self._owns_server:
            # Client first: closing the transport drains any in-flight
            # async calls (e.g. slices of an abandoned streaming
            # collection) so nothing still runs against the server when its
            # store goes away.  The server close only closes what the
            # store owns; a shared engine (the durable platform default)
            # is left for the line below.
            self.client.close()
            self.server.close()
        self.engine.close()

    def __enter__(self) -> "CrowdContext":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    @property
    def db_path(self) -> str:
        """Path of the sharable database file (":memory:" when not durable)."""
        return getattr(self.engine, "path", ":memory:")

    def export_database(self, destination: str) -> str:
        """Copy the database file to *destination* for sharing.

        Returns the destination path.  Raises :class:`CrowdDataError` when
        the context is not backed by a file.
        """
        import shutil

        path = self.db_path
        if path == ":memory:" or not os.path.exists(path):
            raise CrowdDataError("this context is not backed by a database file")
        self.flush()
        shutil.copy2(path, destination)
        return destination
