"""CrowdData: a crowdsourcing experiment as manipulations of a table.

The five steps of Bob's experiment (Figure 2) map onto CrowdData verbs:

1. ``CrowdContext.CrowdData(object_list, table_name)`` — initialise the table
   with ``id`` and ``object`` columns.
2. ``set_presenter(presenter)`` — choose the web UI (table unchanged).
3. ``publish_task(n_assignments)`` — add the ``task`` column (persisted).
4. ``get_result()`` — add the ``result`` column (persisted).
5. ``mv()`` / ``em()`` / ``wmv()`` — add a derived quality-control column.

Task and result columns go through the :class:`FaultRecoveryCache`, so
re-running the same program — after a crash or on Ally's machine — publishes
no duplicate tasks and re-collects no answers.  Every verb is appended to the
manipulation log and every answer carries lineage, which is what makes the
experiment examinable.

Bulk execution path
-------------------

``publish_task`` and ``get_result`` are batched end to end: one
``get_many`` against the cache, one ``create_tasks`` platform round-trip,
and one ``put_many`` back to the cache — the cost of a verb is O(1)
round-trips in the number of rows instead of O(n).  The fault-recovery
contract is unchanged:

* every ``create_tasks`` spec carries the row's object key as a platform
  ``dedup_key``, so replaying a batch (client retry, crash before the cache
  write, rerun on Ally's machine against Bob's still-running server) returns
  the existing tasks instead of duplicating them;
* cache batch writes use ``put_new`` semantics per key
  (``put_many(..., if_absent=True)``): a crash mid-batch leaves a durable
  prefix that the rerun never overwrites or version-bumps.

Streaming collection
--------------------

Collection no longer materialises a whole project's answers at once.
``get_result`` reads the cache through ``FaultRecoveryCache.iter_results``
(one ``get_many`` per page), checks for stale cached tasks against the
platform's id-only page stream (``iter_project_task_ids`` — one integer per
task, no runs shipped), then walks ``PlatformClient.
iter_task_runs_for_project(page_size)``: each page carries at most
``collect_page_size`` tasks' runs, rows are filled as their page arrives,
and complete results are flushed to the cache one ``put_many`` per page.  At
no point are more than one page of task runs resident in the pipeline, so a
project larger than memory collects in space bounded by the page size — and
a crash between page flushes leaves durable page-prefixes that the rerun's
``if_absent`` batch writes heal, exactly like the single-batch path did.

Pipelined transport
-------------------

Nothing in this module is transport-aware: when the context is configured
with ``PlatformConfig(transport="pipelined")``, the client handed in is a
:class:`~repro.platform.client.PipelinedClient` and the same verbs overlap
transport latency for free — ``publish_task``'s single ``create_tasks``
batch is split into in-flight sub-batches (each spec already carries its
``dedup_key``, so a retried sub-batch is as harmless as a retried single
batch), and the two page streams ``get_result`` walks (the id-only
staleness check and the task-run pages) are pumped ``max_in_flight``
slices at a time instead of one cursor-chained round-trip per page.  Every
non-streaming verb is a flush-on-read barrier, so the fault-recovery
reasoning above is unchanged.  ``docs/transport.md`` works the round-trip
counts through.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Sequence

from repro.core.budget import BudgetExceededError, BudgetTracker
from repro.core.cache import FaultRecoveryCache
from repro.core.lineage import AnswerLineage, LineageQuery
from repro.core.manipulations import Manipulation, ManipulationLog
from repro.exceptions import CrowdDataError
from repro.platform.client import PlatformClient
from repro.presenters.base import BasePresenter, registry as presenter_registry
from repro.quality.adaptive import AdaptiveCollectionStats, AdaptivePolicy
from repro.quality.aggregation import AggregationResult, get_aggregator
from repro.quality.incremental import IncrementalAggregator, IncrementalMajorityVote
from repro.storage.schema import TableSchema


class CrowdData:
    """A tabular crowdsourcing experiment.

    Instances are created through :meth:`repro.core.context.CrowdContext.CrowdData`
    rather than directly; the context supplies the platform client, the
    storage-backed cache, and the shared simulated clock.
    """

    def __init__(
        self,
        table_name: str,
        objects: Sequence[Any],
        client: PlatformClient,
        cache: FaultRecoveryCache,
        manipulation_log: ManipulationLog,
        clock,
        ground_truth: Callable[[Any], Any] | None = None,
        budget: BudgetTracker | None = None,
    ):
        """Initialise the table with ``id`` and ``object`` columns.

        Args:
            table_name: Name of the experiment table (also the platform
                project name).
            objects: The input objects, one per row.
            client: Platform client used to publish tasks and fetch answers.
            cache: Fault-recovery cache backing the task/result columns.
            manipulation_log: Durable log of the verbs applied to this table.
            clock: Simulated clock shared with the platform.
            ground_truth: Optional callable mapping an object to its hidden
                true answer, forwarded to the simulated workers.
            budget: Optional budget tracker; every requested assignment is
                charged against it at publication time.
        """
        self.table_name = table_name
        self.client = client
        self.cache = cache
        self.log = manipulation_log
        self.clock = clock
        self.ground_truth = ground_truth
        self.budget = budget

        self.presenter: BasePresenter | None = None
        self.project_id: int | None = None
        self.schema = TableSchema.standard(table_name)

        self.data: dict[str, list[Any]] = {
            "id": list(range(1, len(objects) + 1)),
            "object": list(objects),
            "task": [None] * len(objects),
            "result": [None] * len(objects),
        }
        self._restore_presenter()
        self.log.record(
            "init",
            parameters={"rows": len(objects)},
            columns_added=["id", "object"],
            rows_affected=len(objects),
            timestamp=self.clock.now,
        )

    # -- basic table access ----------------------------------------------------------

    def __len__(self) -> int:
        return len(self.data["id"])

    @property
    def columns(self) -> list[str]:
        """Column names currently present, in creation order."""
        return list(self.data.keys())

    def column(self, name: str) -> list[Any]:
        """Return one column as a list (copy)."""
        try:
            return list(self.data[name])
        except KeyError:
            raise CrowdDataError(
                f"table {self.table_name!r} has no column {name!r}; "
                f"available: {self.columns}"
            ) from None

    def rows(self) -> list[dict[str, Any]]:
        """Return the table as a list of row dictionaries."""
        names = self.columns
        return [
            {name: self.data[name][index] for name in names} for index in range(len(self))
        ]

    def row(self, index: int) -> dict[str, Any]:
        """Return the row at *index* (0-based) as a dictionary."""
        if not 0 <= index < len(self):
            raise CrowdDataError(f"row index {index} out of range for {len(self)} rows")
        return {name: self.data[name][index] for name in self.columns}

    # -- step 2: presenter -------------------------------------------------------------

    def set_presenter(self, presenter: BasePresenter) -> "CrowdData":
        """Choose the web user interface used to publish this table's tasks."""
        self.presenter = presenter
        self.cache.put_meta("presenter", presenter.describe())
        self.log.record(
            "set_presenter",
            parameters=presenter.describe(),
            timestamp=self.clock.now,
        )
        return self

    def _restore_presenter(self) -> None:
        """Rebuild the presenter Bob used, if one is stored in the cache."""
        description = self.cache.get_meta("presenter")
        if description:
            self.presenter = presenter_registry.build(description)

    def _require_presenter(self) -> BasePresenter:
        if self.presenter is None:
            raise CrowdDataError(
                "no presenter set — call set_presenter(...) before publish_task()"
            )
        return self.presenter

    # -- step 3: publish tasks ------------------------------------------------------------

    def publish_task(
        self, n_assignments: int = 3, priority: float = 0.0
    ) -> "CrowdData":
        """Publish one task per row, adding the persistent ``task`` column.

        Rows whose task is already in the fault-recovery cache are *not*
        re-published; this is what makes a rerun free of duplicate crowd
        work.
        """
        presenter = self._require_presenter()
        self._ensure_project(presenter)
        keys = self._object_keys(presenter)
        cached = self.cache.get_tasks(keys)
        cache_hits = 0
        # Row indexes awaiting a descriptor, grouped by object key so a key
        # repeated across rows is published (and charged) exactly once.
        pending: dict[str, list[int]] = {}
        for index, descriptor in enumerate(cached):
            if descriptor is not None:
                self.data["task"][index] = descriptor
                cache_hits += 1
            else:
                pending.setdefault(keys[index], []).append(index)
        if pending:
            # Under a hard budget, publish only the affordable prefix: its
            # crowd work is durable (platform + cache), spend matches tasks
            # actually purchased, and the overflow raises below so a rerun
            # with more budget resumes from where this one stopped.
            publish_keys = list(pending)
            overflow = 0
            if self.budget is not None and self.budget.budget is not None:
                per_task = n_assignments * self.budget.price_per_assignment
                if per_task > 0:
                    remaining = max(0.0, self.budget.budget - self.budget.spent)
                    affordable = min(
                        len(publish_keys), int((remaining + 1e-9) // per_task)
                    )
                    overflow = len(publish_keys) - affordable
                    publish_keys = publish_keys[:affordable]
            if publish_keys:
                specs = []
                for key in publish_keys:
                    obj = self.data["object"][pending[key][0]]
                    true_answer = self.ground_truth(obj) if self.ground_truth else None
                    specs.append(
                        {
                            "info": presenter.build_task_info(obj, true_answer=true_answer),
                            "n_assignments": n_assignments,
                            "dedup_key": key,
                        }
                    )
                tasks = self.client.create_tasks(self.project_id, specs)
                # Charge only once the platform accepted the batch, so
                # recorded spend never exceeds crowd work actually purchased.
                if self.budget is not None:
                    for key in publish_keys:
                        self.budget.charge(
                            n_assignments, label=f"{self.table_name}:{key}"
                        )
                descriptors: dict[str, dict[str, Any]] = {}
                for key, task in zip(publish_keys, tasks):
                    descriptors[key] = {
                        "task_id": task.task_id,
                        "project_id": task.project_id,
                        "object_key": key,
                        "n_assignments": task.n_assignments,
                        "published_at": task.created_at,
                        "task_type": presenter.task_type,
                        "priority": priority,
                    }
                self.cache.put_tasks(descriptors)
                for key in publish_keys:
                    for index in pending[key]:
                        self.data["task"][index] = descriptors[key]
            if overflow:
                raise BudgetExceededError(
                    overflow * n_assignments * self.budget.price_per_assignment,
                    self.budget.spent,
                    self.budget.budget,
                )
        self.log.record(
            "publish_task",
            parameters={"n_assignments": n_assignments, "priority": priority},
            columns_added=["task"],
            rows_affected=len(self),
            cache_hits=cache_hits,
            timestamp=self.clock.now,
        )
        return self

    def _object_keys(self, presenter: BasePresenter) -> list[str]:
        """Return each row's durable cache key, in row order."""
        return [
            self.cache.object_key(obj, presenter.task_type)
            for obj in self.data["object"]
        ]

    def _ensure_project(self, presenter: BasePresenter) -> None:
        """Create (or re-attach to) the platform project for this table."""
        if self.project_id is not None:
            return
        cached_project = self.cache.get_meta("project")
        if cached_project is not None:
            existing = self.client.find_project(cached_project["name"])
            if existing is not None:
                self.project_id = existing.project_id
                return
        project = self.client.create_project(
            name=self.table_name,
            description=f"Reprowd experiment table {self.table_name!r}",
            task_presenter=presenter.template_html(),
        )
        self.project_id = project.project_id
        self.cache.put_meta("project", {"name": project.name, "id": project.project_id})

    # -- step 4: collect results -------------------------------------------------------------

    #: Tasks per platform round-trip and results per cache batch write when
    #: collecting — the bound on how many task runs are resident at once.
    collect_page_size = 500

    def get_result(self, blocking: bool = True) -> "CrowdData":
        """Collect crowd answers, adding the persistent ``result`` column.

        Collection streams: cached results are read one page at a time, the
        platform's answers arrive in pages of :attr:`collect_page_size`
        tasks, and complete results are flushed to the fault-recovery cache
        per page — a project larger than memory collects in bounded space.

        Args:
            blocking: When True (default) the call simulates crowd work until
                every task is complete.  When False it only picks up answers
                that already exist — rows without enough answers keep a
                partial result, mirroring the original's non-blocking mode.
        """
        presenter = self._require_presenter()
        cache_hits = self._load_cached_results(presenter)
        missing = self._missing_rows("get_result()")
        if missing:
            self._heal_stale_tasks(missing)
            if blocking:
                self.client.simulate_work(project_id=self.project_id)

            def build(descriptor: dict[str, Any], runs: list) -> tuple[dict[str, Any], bool]:
                complete = len(runs) >= descriptor["n_assignments"]
                result = {
                    "object_key": descriptor["object_key"],
                    "task_id": descriptor["task_id"],
                    "published_at": descriptor["published_at"],
                    "complete": complete,
                    "assignments": [run.to_dict() for run in runs],
                }
                # Only complete results are persisted: a partial result must
                # be re-fetched on the next run so late answers are picked up.
                return result, complete

            self._collect_streaming(missing, build)
        self.log.record(
            "get_result",
            parameters={"blocking": blocking},
            columns_added=["result"],
            rows_affected=len(self),
            cache_hits=cache_hits,
            timestamp=self.clock.now,
        )
        return self

    def _load_cached_results(self, presenter: BasePresenter) -> int:
        """Fill rows from the cache, one page at a time; return the hit count."""
        keys = self._object_keys(presenter)
        cache_hits = 0
        for index, result in self.cache.iter_results(keys, self.collect_page_size):
            if result is not None:
                self.data["result"][index] = result
                cache_hits += 1
        return cache_hits

    def _missing_rows(self, verb: str) -> list[int]:
        """Rows still lacking a result, validated as collectable."""
        missing = [
            index for index, value in enumerate(self.data["result"]) if value is None
        ]
        if not missing:
            return missing
        if self.project_id is None:
            raise CrowdDataError(
                f"no tasks have been published — call publish_task() before {verb}"
            )
        for index in missing:
            if self.data["task"][index] is None:
                raise CrowdDataError(
                    f"row {index} has no published task; publish_task() must cover every row"
                )
        return missing

    def _heal_stale_tasks(self, missing: list[int]) -> None:
        """Re-publish cached tasks the current platform does not know.

        A cached descriptor may reference a task id from a platform that was
        since redeployed.  Membership is checked against the platform's
        id-only page stream — one integer per task crosses the wire, no task
        runs — and the stale rows are re-published in one batch so the
        experiment self-heals.
        """
        known_ids = set(
            self.client.iter_project_task_ids(self.project_id, self.collect_page_size)
        )
        stale = [
            index
            for index in missing
            if self.data["task"][index]["task_id"] not in known_ids
        ]
        if stale:
            self._republish_many(stale)

    def _collect_streaming(
        self,
        missing: list[int],
        build: Callable[[dict[str, Any], list], tuple[dict[str, Any], bool]],
    ) -> None:
        """Fill *missing* rows from the platform's paged task-run stream.

        *build* maps ``(descriptor, runs)`` to ``(result, cache_it)``.  Rows
        are filled as their page arrives and cache-worthy results are flushed
        with one batch write per :attr:`collect_page_size` results, so peak
        resident task runs are bounded by the page size.  The stream stops as
        soon as every missing row is resolved.
        """
        waiting: dict[int, list[int]] = {}
        for index in missing:
            waiting.setdefault(self.data["task"][index]["task_id"], []).append(index)
        to_cache: dict[str, Any] = {}

        def fill(task_id: int, indexes: list[int], runs: list) -> None:
            # Build per row, not per task: rows sharing a task each get their
            # own result exactly as the batched path produced them.
            for index in indexes:
                descriptor = self.data["task"][index]
                result, cache_it = build(descriptor, runs)
                self.data["result"][index] = result
                if cache_it:
                    to_cache[descriptor["object_key"]] = result

        def flush() -> None:
            if to_cache:
                self.cache.put_results(dict(to_cache))
                to_cache.clear()

        for task_id, runs in self.client.iter_task_runs_for_project(
            self.project_id, self.collect_page_size
        ):
            indexes = waiting.pop(task_id, None)
            if indexes is None:
                continue
            fill(task_id, indexes, runs)
            if len(to_cache) >= self.collect_page_size:
                flush()
            if not waiting:
                break
        # Tasks the stream did not return get an empty answer list — the
        # same default the batched map lookup used.
        for task_id, indexes in list(waiting.items()):
            fill(task_id, indexes, [])
        flush()

    def get_result_adaptive(
        self,
        policy: AdaptivePolicy | None = None,
        aggregator: IncrementalAggregator | None = None,
    ) -> "CrowdData":
        """Collect answers with adaptive redundancy (budget-aware ``get_result``).

        Tasks should have been published with ``policy.initial_assignments``.
        Each round simulates the crowd, then walks the platform's paged
        task-run stream **once** — O(pages) round-trips per round instead of
        one ``get_task_runs`` call per unresolved task — feeding only each
        task's *new* runs into an incremental quality model.  Items whose
        confidence crosses the policy threshold stop purchasing answers, and
        a single batched ``extend_tasks_redundancy`` call per round tops up
        the still-ambiguous ones, so the freed budget flows to the hard
        objects.  Rows already in the fault-recovery cache are never
        re-collected.

        Budget ordering: a round's extensions are charged only *after* the
        platform accepted them, so a transport failure mid-round leaks no
        spend.  Under a hard budget only the affordable prefix of a round is
        purchased (descriptors and charges made durable) before the overflow
        raises — a rerun with more budget resumes where this one stopped.

        Args:
            policy: The adaptive policy; defaults to :class:`AdaptivePolicy`.
            aggregator: Incremental quality model fed page by page; defaults
                to :class:`~repro.quality.incremental.IncrementalMajorityVote`.
                Pass an :class:`~repro.quality.incremental.OnlineDawidSkene`
                for posterior-based early stopping; it is kept (with its
                learned worker statistics) on :attr:`last_adaptive_aggregator`.
        """
        policy = policy or AdaptivePolicy()
        presenter = self._require_presenter()
        stats = AdaptiveCollectionStats()
        cache_hits = self._load_cached_results(presenter)
        missing = self._missing_rows("get_result_adaptive()")
        tracker = aggregator if aggregator is not None else IncrementalMajorityVote()
        if missing:
            self._heal_stale_tasks(missing)
            self._adaptive_rounds(missing, policy, tracker, stats)
            counted: set[int] = set()

            def build(descriptor: dict[str, Any], runs: list) -> tuple[dict[str, Any], bool]:
                task_id = descriptor["task_id"]
                if task_id not in counted:
                    # Classify per *task*, not per row: rows sharing one
                    # deduplicated task contribute a single item to the
                    # stats tallies.
                    counted.add(task_id)
                    answers = [run.answer for run in runs]
                    if len(runs) < policy.min_assignments:
                        stats.items_below_minimum += 1
                    elif len(runs) >= policy.max_assignments and not (
                        answers
                        and policy.confidence(answers) >= policy.confidence_threshold
                    ):
                        stats.items_at_cap += 1
                    else:
                        stats.items_resolved_early += 1
                result = {
                    "object_key": descriptor["object_key"],
                    "task_id": descriptor["task_id"],
                    "published_at": descriptor["published_at"],
                    "complete": True,
                    "adaptive": True,
                    "assignments": [run.to_dict() for run in runs],
                }
                return result, True

            self._collect_streaming(missing, build)
        self._last_adaptive_stats = stats
        self._last_adaptive_aggregator = tracker
        self.log.record(
            "get_result_adaptive",
            parameters={
                "confidence_threshold": policy.confidence_threshold,
                "max_assignments": policy.max_assignments,
                **stats.to_dict(),
            },
            columns_added=["result"],
            rows_affected=len(self),
            cache_hits=cache_hits,
            timestamp=self.clock.now,
        )
        return self

    def _adaptive_rounds(
        self,
        missing: list[int],
        policy: AdaptivePolicy,
        tracker: IncrementalAggregator,
        stats: AdaptiveCollectionStats,
    ) -> None:
        """Run the adaptive round loop over the paged task-run stream.

        One state per *task* (rows sharing a deduplicated task are decided
        once): ``seen`` is how many of the task's runs have already been fed
        to *tracker*, so each round ships only the new suffix of each run
        list into the model.
        """
        pending: dict[int, dict[str, Any]] = {}
        for index in missing:
            descriptor = self.data["task"][index]
            pending.setdefault(
                descriptor["task_id"], {"descriptor": descriptor, "seen": 0}
            )
        while pending:
            self.client.simulate_work(project_id=self.project_id)
            stats.rounds += 1
            round_new = 0
            streamed = 0
            remaining = set(pending)
            page: dict[int, list[tuple[str, Any]]] = {}
            for task_id, runs in self.client.iter_task_runs_for_project(
                self.project_id, self.collect_page_size
            ):
                streamed += 1
                state = pending.get(task_id)
                if state is None:
                    continue
                remaining.discard(task_id)
                new_runs = runs[state["seen"] :]
                if new_runs:
                    state["seen"] = len(runs)
                    page[task_id] = [(run.worker_id, run.answer) for run in new_runs]
                    round_new += len(new_runs)
                    if len(page) >= self.collect_page_size:
                        tracker.partial_fit(page)
                        page.clear()
                if not remaining:
                    break
            if page:
                tracker.partial_fit(page)
            stats.pages_streamed += max(1, -(-streamed // self.collect_page_size))
            stats.answers_collected += round_new

            extensions: dict[int, int] = {}
            for task_id in list(pending):
                seen = pending[task_id]["seen"]
                if seen >= policy.max_assignments:
                    pending.pop(task_id)
                    continue
                if seen >= policy.min_assignments:
                    counts = tracker.counts(task_id)
                    confidence = (
                        policy.confidence_from_counts(counts)
                        if counts is not None
                        else tracker.confidence(task_id)
                    )
                    if confidence >= policy.confidence_threshold:
                        pending.pop(task_id)
                        continue
                extra = min(policy.extra_per_round, policy.max_assignments - seen)
                if extra > 0:
                    extensions[task_id] = extra
            if not pending:
                break
            if round_new == 0:
                # The platform produced nothing new this round; further
                # rounds cannot make progress (a dead or non-simulating
                # platform) — stop purchasing and let the final collection
                # classify the leftovers (below-minimum / at-cap).
                break
            if extensions:
                self._extend_adaptive(pending, extensions, stats)

    def _extend_adaptive(
        self,
        pending: dict[int, dict[str, Any]],
        extensions: dict[int, int],
        stats: AdaptiveCollectionStats,
    ) -> None:
        """Purchase one round's redundancy extensions: extend first, charge after.

        The whole round is one ``extend_tasks_redundancy`` round-trip.  The
        budget is charged only once the platform has accepted the batch —
        the failure mode of charging first is committed spend with no
        purchased redundancy.  Under a hard budget only the affordable
        prefix is purchased; the overflow raises after the prefix's
        descriptors and charges are durable, mirroring ``publish_task``.
        """
        overflow = 0
        if self.budget is not None and self.budget.budget is not None:
            price = self.budget.price_per_assignment
            headroom = max(0.0, self.budget.budget - self.budget.spent)
            affordable = int((headroom + 1e-9) // price) if price > 0 else None
            if affordable is not None:
                purchase: dict[int, int] = {}
                used = 0
                for task_id, extra in extensions.items():
                    if used + extra > affordable:
                        overflow += extra
                        continue
                    used += extra
                    purchase[task_id] = extra
                extensions = purchase
        if extensions:
            tasks = self.client.extend_tasks_redundancy(extensions)
            by_id = {task.task_id: task for task in tasks}
            updates: dict[str, dict[str, Any]] = {}
            for task_id, extra in extensions.items():
                descriptor = pending[task_id]["descriptor"]
                descriptor["n_assignments"] = by_id[task_id].n_assignments
                updates[descriptor["object_key"]] = descriptor
                if self.budget is not None:
                    self.budget.charge(
                        extra,
                        label=f"{self.table_name}:{descriptor['object_key']}:adaptive",
                    )
                stats.extensions_requested += extra
            self.cache.update_tasks(updates)
        if overflow:
            raise BudgetExceededError(
                overflow * self.budget.price_per_assignment,
                self.budget.spent,
                self.budget.budget,
            )

    @property
    def last_adaptive_stats(self) -> AdaptiveCollectionStats | None:
        """Statistics of the most recent adaptive collection, if any."""
        return getattr(self, "_last_adaptive_stats", None)

    @property
    def last_adaptive_aggregator(self) -> IncrementalAggregator | None:
        """The incremental model the most recent adaptive collection fed."""
        return getattr(self, "_last_adaptive_aggregator", None)

    def _republish_many(self, indexes: list[int]) -> None:
        """Re-publish rows whose cached task the platform no longer knows.

        One ``create_tasks`` call for the whole batch; the refreshed
        descriptors overwrite the stale cache entries (deliberately *not*
        ``put_new`` semantics — the old descriptor is known-dead).
        """
        presenter = self._require_presenter()
        self._ensure_project(presenter)
        specs = []
        for index in indexes:
            obj = self.data["object"][index]
            old_descriptor = self.data["task"][index]
            true_answer = self.ground_truth(obj) if self.ground_truth else None
            specs.append(
                {
                    "info": presenter.build_task_info(obj, true_answer=true_answer),
                    "n_assignments": old_descriptor["n_assignments"],
                    "dedup_key": old_descriptor["object_key"],
                }
            )
        tasks = self.client.create_tasks(self.project_id, specs)
        refreshed: dict[str, dict[str, Any]] = {}
        for index, task in zip(indexes, tasks):
            old_descriptor = self.data["task"][index]
            descriptor = dict(old_descriptor)
            descriptor.update(
                {
                    "task_id": task.task_id,
                    "project_id": task.project_id,
                    "published_at": task.created_at,
                }
            )
            self.data["task"][index] = descriptor
            refreshed[old_descriptor["object_key"]] = descriptor
        for key, descriptor in refreshed.items():
            self.cache.put_task(key, descriptor)

    # -- step 5: quality control -------------------------------------------------------------

    def quality_control(self, method: str = "mv", column: str | None = None, **kwargs: Any) -> "CrowdData":
        """Aggregate each row's answers with *method*, adding a derived column.

        Args:
            method: Registered aggregator name (``"mv"``, ``"wmv"``, ``"em"``,
                ``"glad"``).
            column: Name of the derived column; defaults to *method*.
            **kwargs: Extra arguments for the aggregator constructor.
        """
        column_name = column or method
        votes = self._vote_table()
        aggregator = get_aggregator(method, **kwargs)
        aggregation = aggregator.aggregate(votes)
        self.data[column_name] = [
            aggregation.decisions.get(index) for index in range(len(self))
        ]
        if not self.schema.has_column(column_name):
            self.schema.add_column(self._derived_spec(column_name, method))
        self._last_aggregation = aggregation
        self.log.record(
            "quality_control",
            parameters={"method": method, "column": column_name, **_jsonable(kwargs)},
            columns_added=[column_name],
            rows_affected=len(self),
            timestamp=self.clock.now,
        )
        return self

    @staticmethod
    def _derived_spec(column_name: str, method: str):
        from repro.storage.schema import ColumnSpec

        return ColumnSpec(name=column_name, persistent=False, description=f"{method} decision")

    def mv(self, **kwargs: Any) -> "CrowdData":
        """Majority vote — the rule in Bob's experiment (adds column ``mv``)."""
        return self.quality_control("mv", **kwargs)

    def wmv(self, **kwargs: Any) -> "CrowdData":
        """Weighted majority vote (adds column ``wmv``)."""
        return self.quality_control("wmv", **kwargs)

    def em(self, **kwargs: Any) -> "CrowdData":
        """Dawid-Skene expectation-maximisation (adds column ``em``)."""
        return self.quality_control("em", **kwargs)

    @property
    def last_aggregation(self) -> AggregationResult | None:
        """The full result of the most recent quality-control verb."""
        return getattr(self, "_last_aggregation", None)

    def _vote_table(self) -> dict[int, list[tuple[str, Any]]]:
        """Build the aggregation input: row index -> (worker, answer) votes."""
        votes: dict[int, list[tuple[str, Any]]] = {}
        for index, result in enumerate(self.data["result"]):
            if result is None:
                raise CrowdDataError(
                    "results have not been collected — call get_result() before quality control"
                )
            votes[index] = [
                (assignment["worker_id"], assignment["answer"])
                for assignment in result["assignments"]
            ]
        return votes

    # -- examination / extension (Figure 3) ---------------------------------------------------

    def append(self, obj: Any) -> "CrowdData":
        """Append one new row with *obj* (task/result start empty)."""
        return self.extend([obj])

    def extend(self, objects: Iterable[Any]) -> "CrowdData":
        """Append new rows; already-present objects are skipped.

        This is how Ally labels more images on top of Bob's experiment: the
        original rows keep their cached tasks and results, the new rows get
        published on the next ``publish_task()``.
        """
        new_objects = list(objects)
        existing = {self.cache.object_key(obj, self._task_type_hint()) for obj in self.data["object"]}
        added = 0
        for obj in new_objects:
            key = self.cache.object_key(obj, self._task_type_hint())
            if key in existing:
                continue
            existing.add(key)
            self.data["id"].append(len(self.data["id"]) + 1)
            self.data["object"].append(obj)
            self.data["task"].append(None)
            self.data["result"].append(None)
            for column_name in self.data:
                if column_name not in ("id", "object", "task", "result"):
                    self.data[column_name].append(None)
            added += 1
        self.log.record(
            "extend",
            parameters={"objects": len(new_objects), "added": added},
            rows_affected=added,
            timestamp=self.clock.now,
        )
        return self

    def _task_type_hint(self) -> str:
        return self.presenter.task_type if self.presenter is not None else "generic"

    def filter(self, predicate: Callable[[dict[str, Any]], bool]) -> "CrowdData":
        """Keep only the rows for which *predicate(row_dict)* is truthy.

        The cache is untouched: filtered-out rows stay recoverable, matching
        the paper's rule that derived state is recomputable while crowd data
        is never thrown away silently.
        """
        keep = [index for index, row in enumerate(self.rows()) if predicate(row)]
        for column_name in self.data:
            self.data[column_name] = [self.data[column_name][index] for index in keep]
        self.log.record(
            "filter",
            parameters={"kept": len(keep)},
            rows_affected=len(keep),
            timestamp=self.clock.now,
        )
        return self

    def clear(self) -> "CrowdData":
        """Drop all rows and forget the cached crowd data for this table."""
        for column_name in self.data:
            self.data[column_name] = []
        self.cache.clear()
        self.log.record("clear", timestamp=self.clock.now)
        return self

    # -- lineage ---------------------------------------------------------------------------------

    def lineage_records(self) -> list[AnswerLineage]:
        """Return one lineage record per collected answer."""
        records: list[AnswerLineage] = []
        for index, result in enumerate(self.data["result"]):
            if result is None:
                continue
            descriptor = self.data["task"][index] or {}
            published_at = result.get("published_at", descriptor.get("published_at", 0.0))
            for assignment in result["assignments"]:
                records.append(
                    AnswerLineage(
                        object_key=result["object_key"],
                        task_id=result["task_id"],
                        run_id=assignment["id"],
                        worker_id=assignment["worker_id"],
                        answer=assignment["answer"],
                        published_at=published_at,
                        submitted_at=assignment["submitted_at"],
                        latency_seconds=assignment["latency_seconds"],
                        assignment_order=assignment["assignment_order"],
                    )
                )
        return records

    def lineage(self) -> LineageQuery:
        """Return a :class:`LineageQuery` over every collected answer."""
        return LineageQuery(self.lineage_records())

    def manipulation_history(self) -> list[Manipulation]:
        """Return the durable manipulation log of this table."""
        return self.log.history()

    # -- presentation -------------------------------------------------------------------------------

    def describe(self) -> dict[str, Any]:
        """Return a JSON-friendly summary used by the examination API."""
        return {
            "table": self.table_name,
            "rows": len(self),
            "columns": self.columns,
            "cache": self.cache.describe(),
            "manipulations": [m.operation for m in self.log.history()],
        }

    def __repr__(self) -> str:
        return (
            f"CrowdData(table={self.table_name!r}, rows={len(self)}, "
            f"columns={self.columns})"
        )


def _jsonable(kwargs: dict[str, Any]) -> dict[str, Any]:
    """Drop non-JSON-friendly values from a kwargs dict for logging."""
    cleaned: dict[str, Any] = {}
    for key, value in kwargs.items():
        if isinstance(value, (str, int, float, bool)) or value is None:
            cleaned[key] = value
        else:
            cleaned[key] = repr(value)
    return cleaned
