"""The manipulation log: what makes an experiment *examinable*.

Every CrowdData verb (publish_task, get_result, mv, extend, filter, ...) is
recorded as a :class:`Manipulation` with its parameters and its effect on the
table's columns.  Ally can read the log to understand exactly what Bob's
experiment did without reverse-engineering his code, and the log doubles as
an audit trail when she extends the experiment.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.storage.engine import StorageEngine


@dataclass(frozen=True)
class Manipulation:
    """One recorded manipulation of a CrowdData table.

    Attributes:
        sequence: 1-based position in the table's manipulation history.
        operation: Verb name (``"publish_task"``, ``"mv"``, ...).
        parameters: The verb's parameters, JSON-friendly.
        columns_added: Columns the verb added to the table.
        rows_affected: Number of rows the verb touched.
        cache_hits: How many rows were served from the fault-recovery cache
            (0 for purely computational verbs).
        timestamp: Simulated-clock time of the manipulation.
    """

    sequence: int
    operation: str
    parameters: dict[str, Any] = field(default_factory=dict)
    columns_added: list[str] = field(default_factory=list)
    rows_affected: int = 0
    cache_hits: int = 0
    timestamp: float = 0.0

    def to_dict(self) -> dict[str, Any]:
        """Return a JSON-friendly representation."""
        return {
            "sequence": self.sequence,
            "operation": self.operation,
            "parameters": self.parameters,
            "columns_added": self.columns_added,
            "rows_affected": self.rows_affected,
            "cache_hits": self.cache_hits,
            "timestamp": self.timestamp,
        }

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "Manipulation":
        """Rebuild a manipulation from :meth:`to_dict` output."""
        return cls(
            sequence=payload["sequence"],
            operation=payload["operation"],
            parameters=dict(payload.get("parameters", {})),
            columns_added=list(payload.get("columns_added", [])),
            rows_affected=payload.get("rows_affected", 0),
            cache_hits=payload.get("cache_hits", 0),
            timestamp=payload.get("timestamp", 0.0),
        )


class ManipulationLog:
    """Durable, append-only log of a table's manipulations.

    Appends are batched: :meth:`record_many` persists any number of
    manipulations with a single engine ``put_many`` — one transaction on
    SQLite, one group append (one fsync) on the log-structured engine — and
    :meth:`record` is the single-entry case of the same path.  The next
    sequence is re-read from the durable count per batch (``count`` is O(1)
    on every engine), so several log instances over the same table — e.g. a
    table re-opened while an old handle is still alive — interleave without
    overwriting each other's entries.

    With ``buffer_size > 1`` the log coalesces single :meth:`record` calls
    too: entries accumulate in memory and land as one ``record_many`` batch
    when the buffer fills, on :meth:`flush`, and before any read
    (:meth:`history`, :meth:`operations`, ``len()``) — the same
    flush-on-read barrier the pipelined transport uses, so a reader can
    never observe a log missing entries that were already recorded.  The
    trade-off is single-writer only (buffered sequences are assigned
    optimistically) and that a crash can lose the buffered tail — verbs
    whose *data* effects survived will simply re-record their entries on
    the rerun, so the audit trail stays complete for every surviving run.
    """

    def __init__(self, engine: StorageEngine, table_name: str, buffer_size: int = 1):
        if buffer_size < 1:
            raise ValueError(f"buffer_size must be >= 1, got {buffer_size}")
        self.engine = engine
        self.table_name = table_name
        self.buffer_size = buffer_size
        self._buffer: list[Manipulation] = []
        #: Cached durable entry count for buffered sequencing; None until
        #: first read, invalidated whenever another writer may interleave
        #: (record_many re-reads the engine count).
        self._persisted_count: int | None = None
        self._log_table = f"{table_name}::manipulations"
        engine.create_table(self._log_table)

    def record(
        self,
        operation: str,
        parameters: dict[str, Any] | None = None,
        columns_added: list[str] | None = None,
        rows_affected: int = 0,
        cache_hits: int = 0,
        timestamp: float = 0.0,
    ) -> Manipulation:
        """Append one manipulation and return it.

        With a buffer configured, the entry is sequenced immediately but
        becomes durable when the buffer flushes (full buffer, any read, or
        :meth:`flush`).
        """
        entry = {
            "operation": operation,
            "parameters": parameters,
            "columns_added": columns_added,
            "rows_affected": rows_affected,
            "cache_hits": cache_hits,
            "timestamp": timestamp,
        }
        if self.buffer_size == 1:
            return self.record_many([entry])[0]
        manipulation = self._build(
            self._durable_count() + len(self._buffer) + 1, entry
        )
        self._buffer.append(manipulation)
        if len(self._buffer) >= self.buffer_size:
            self.flush()
        return manipulation

    def _durable_count(self) -> int:
        """The persisted entry count, read from the engine once per streak.

        Buffered sequencing assumes a single writer anyway (see the class
        docstring), so the count is cached and advanced on flush instead of
        costing one engine round-trip per buffered record.
        """
        if self._persisted_count is None:
            self._persisted_count = self.engine.count(self._log_table)
        return self._persisted_count

    @staticmethod
    def _build(sequence: int, entry: dict[str, Any]) -> Manipulation:
        return Manipulation(
            sequence=sequence,
            operation=entry["operation"],
            parameters=dict(entry.get("parameters") or {}),
            columns_added=list(entry.get("columns_added") or []),
            rows_affected=entry.get("rows_affected", 0),
            cache_hits=entry.get("cache_hits", 0),
            timestamp=entry.get("timestamp", 0.0),
        )

    def record_many(self, entries: list[dict[str, Any]]) -> list[Manipulation]:
        """Append a batch of manipulations atomically; return them in order.

        Each entry is a dict of :meth:`record` keyword arguments with a
        required ``"operation"``.  The whole batch becomes one engine
        ``put_many``, so either every entry is durable or none is.  Any
        buffered single records are flushed first so the batch lands after
        them in sequence order.
        """
        self.flush()
        # Re-read the durable count: this is the multi-writer-safe path, so
        # the single-writer cache must not serve it (and is refreshed).
        next_sequence = self.engine.count(self._log_table) + 1
        manipulations = [
            self._build(next_sequence + offset, entry)
            for offset, entry in enumerate(entries)
        ]
        self._persist(manipulations)
        self._persisted_count = next_sequence - 1 + len(manipulations)
        return manipulations

    def _persist(self, manipulations: list[Manipulation]) -> None:
        if manipulations:
            self.engine.put_many(
                self._log_table,
                [
                    (f"{manipulation.sequence:08d}", manipulation.to_dict())
                    for manipulation in manipulations
                ],
            )

    def flush(self) -> None:
        """Persist any buffered entries as one engine batch."""
        if self._buffer:
            buffered, self._buffer = self._buffer, []
            self._persist(buffered)
            if self._persisted_count is not None:
                self._persisted_count += len(buffered)

    def history(self) -> list[Manipulation]:
        """Return every manipulation in sequence order."""
        self.flush()
        records = sorted(self.engine.items(self._log_table), key=lambda item: item[0])
        return [Manipulation.from_dict(value) for _, value in records]

    def operations(self) -> list[str]:
        """Return just the verb names, in order."""
        return [manipulation.operation for manipulation in self.history()]

    def clear(self) -> None:
        """Forget the history (used by ``CrowdData.clear()``)."""
        self._buffer = []
        self._persisted_count = 0
        self.engine.drop_table(self._log_table)
        self.engine.create_table(self._log_table)

    def __len__(self) -> int:
        self.flush()
        return self.engine.count(self._log_table)
