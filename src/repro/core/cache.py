"""Fault-recovery cache: the durable half of CrowdData.

The paper persists the ``task`` and ``result`` columns of every CrowdData
table in a database so that "when the program is crashed, rerunning the
program is as if it has never crashed".  The cache keys both columns by a
*content hash of the row's object plus the presenter type*, not by row
position — so re-running a program that builds its input list in a different
order, filters it, or extends it still reuses every previously published
task and collected answer.
"""

from __future__ import annotations

from typing import Any

from repro.storage.engine import StorageEngine
from repro.utils.hashing import stable_hash


class FaultRecoveryCache:
    """Durable cache of published tasks and collected results.

    One cache instance serves one CrowdData table; the engine tables it uses
    are namespaced by the CrowdData table name so that many experiments can
    share one database file (Bob's sharable artifact).
    """

    def __init__(self, engine: StorageEngine, table_name: str):
        self.engine = engine
        self.table_name = table_name
        self._tasks_table = f"{table_name}::tasks"
        self._results_table = f"{table_name}::results"
        self._meta_table = f"{table_name}::meta"
        for name in (self._tasks_table, self._results_table, self._meta_table):
            engine.create_table(name)

    # -- cache keys -------------------------------------------------------------

    @staticmethod
    def object_key(obj: Any, task_type: str) -> str:
        """Return the durable cache key for (*obj*, *task_type*)."""
        return stable_hash({"object": obj, "task_type": task_type})

    # -- task column --------------------------------------------------------------

    def get_task(self, key: str) -> dict[str, Any] | None:
        """Return the cached task descriptor for *key*, or None."""
        return self.engine.get(self._tasks_table, key)

    def put_task(self, key: str, task: dict[str, Any]) -> None:
        """Persist the task descriptor for *key* (idempotent overwrite)."""
        self.engine.put(self._tasks_table, key, task)

    def task_count(self) -> int:
        """Number of cached task descriptors."""
        return self.engine.count(self._tasks_table)

    # -- result column --------------------------------------------------------------

    def get_result(self, key: str) -> list[dict[str, Any]] | None:
        """Return the cached task runs for *key*, or None when absent."""
        return self.engine.get(self._results_table, key)

    def put_result(self, key: str, task_runs: list[dict[str, Any]]) -> None:
        """Persist the complete list of task runs for *key*."""
        self.engine.put(self._results_table, key, task_runs)

    def result_count(self) -> int:
        """Number of cached (complete) results."""
        return self.engine.count(self._results_table)

    # -- table metadata ----------------------------------------------------------------

    def get_meta(self, key: str, default: Any = None) -> Any:
        """Return table metadata stored under *key* (presenter, ordering...)."""
        return self.engine.get(self._meta_table, key, default)

    def put_meta(self, key: str, value: Any) -> None:
        """Persist table metadata under *key*."""
        self.engine.put(self._meta_table, key, value)

    # -- maintenance ----------------------------------------------------------------------

    def clear(self) -> None:
        """Drop everything cached for this table (Reprowd's ``clear()``)."""
        for name in (self._tasks_table, self._results_table, self._meta_table):
            self.engine.drop_table(name)
            self.engine.create_table(name)

    def all_cached_objects(self) -> list[str]:
        """Return every cached object key (task-column keys)."""
        return self.engine.keys(self._tasks_table)

    def describe(self) -> dict[str, Any]:
        """Return cache statistics for the examination API."""
        return {
            "table": self.table_name,
            "cached_tasks": self.task_count(),
            "cached_results": self.result_count(),
        }
