"""Fault-recovery cache: the durable half of CrowdData.

The paper persists the ``task`` and ``result`` columns of every CrowdData
table in a database so that "when the program is crashed, rerunning the
program is as if it has never crashed".  The cache keys both columns by a
*content hash of the row's object plus the presenter type*, not by row
position — so re-running a program that builds its input list in a different
order, filters it, or extends it still reuses every previously published
task and collected answer.

The bulk entry points (:meth:`FaultRecoveryCache.get_tasks`,
:meth:`~FaultRecoveryCache.put_tasks`, :meth:`~FaultRecoveryCache.get_results`,
:meth:`~FaultRecoveryCache.put_results`) back CrowdData's batched publish and
collect path.  Bulk writes use the engines' ``put_new``-per-key semantics
(``put_many(..., if_absent=True)``): a key that already survived an earlier
run is never overwritten or version-bumped, so a crash in the middle of a
batch write followed by a rerun fills only the missing keys — crowd work is
never re-purchased and never duplicated.
"""

from __future__ import annotations

from typing import Any, Iterable, Mapping, Sequence

from repro.storage.engine import StorageEngine
from repro.utils.hashing import stable_hash


class FaultRecoveryCache:
    """Durable cache of published tasks and collected results.

    One cache instance serves one CrowdData table; the engine tables it uses
    are namespaced by the CrowdData table name so that many experiments can
    share one database file (Bob's sharable artifact).
    """

    def __init__(self, engine: StorageEngine, table_name: str):
        self.engine = engine
        self.table_name = table_name
        self._tasks_table = f"{table_name}::tasks"
        self._results_table = f"{table_name}::results"
        self._meta_table = f"{table_name}::meta"
        for name in (self._tasks_table, self._results_table, self._meta_table):
            engine.create_table(name)

    # -- cache keys -------------------------------------------------------------

    @staticmethod
    def object_key(obj: Any, task_type: str) -> str:
        """Return the durable cache key for (*obj*, *task_type*)."""
        return stable_hash({"object": obj, "task_type": task_type})

    # -- task column --------------------------------------------------------------

    def get_task(self, key: str) -> dict[str, Any] | None:
        """Return the cached task descriptor for *key*, or None."""
        return self.engine.get(self._tasks_table, key)

    def put_task(self, key: str, task: dict[str, Any]) -> None:
        """Persist the task descriptor for *key* (idempotent overwrite)."""
        self.engine.put(self._tasks_table, key, task)

    def get_tasks(self, keys: Sequence[str]) -> list[dict[str, Any] | None]:
        """Return the cached descriptor (or None) per key, in one read."""
        return self.engine.get_many(self._tasks_table, keys)

    def put_tasks(self, tasks: Mapping[str, dict[str, Any]]) -> None:
        """Persist a batch of task descriptors with put_new-per-key semantics.

        Descriptors already in the cache — e.g. the surviving prefix of a
        batch that crashed half-way — are left untouched, so a rerun can
        replay the whole batch without duplicating anything.
        """
        self.engine.put_many(self._tasks_table, list(tasks.items()), if_absent=True)

    def update_tasks(self, tasks: Mapping[str, dict[str, Any]]) -> None:
        """Overwrite a batch of task descriptors in one write.

        Bulk sibling of :meth:`put_task`'s idempotent overwrite — used when
        a known descriptor legitimately changes (adaptive redundancy
        top-ups), never for first publication (that is :meth:`put_tasks`,
        whose put_new semantics protect crashed batches).
        """
        self.engine.put_many(self._tasks_table, list(tasks.items()), if_absent=False)

    def task_count(self) -> int:
        """Number of cached task descriptors.

        Delegates to the engine's ``count``, which is constant-space on
        every engine (SQL ``COUNT(*)`` / dict length) — no scan involved.
        """
        return self.engine.count(self._tasks_table)

    # -- result column --------------------------------------------------------------

    def get_result(self, key: str) -> list[dict[str, Any]] | None:
        """Return the cached task runs for *key*, or None when absent."""
        return self.engine.get(self._results_table, key)

    def put_result(self, key: str, task_runs: list[dict[str, Any]]) -> None:
        """Persist the complete list of task runs for *key*."""
        self.engine.put(self._results_table, key, task_runs)

    def get_results(self, keys: Sequence[str]) -> list[Any]:
        """Return the cached result (or None) per key, in one read.

        Materialises one value per key; for row counts that may dwarf memory
        use :meth:`iter_results` instead.
        """
        return self.engine.get_many(self._results_table, keys)

    def iter_results(
        self, keys: Sequence[str], page_size: int | None = None
    ) -> Iterable[tuple[int, Any]]:
        """Yield ``(position, cached result or None)`` per key, page by page.

        The streaming sibling of :meth:`get_results`: each engine
        ``get_many`` materialises at most *page_size* values (complete
        results carry every task run, so they are the heavy objects of the
        cache), keeping the collection path's resident footprint bounded by
        the page size rather than the project size.
        """
        page_size = page_size or self.scan_page_size
        for start in range(0, len(keys), page_size):
            chunk = keys[start : start + page_size]
            values = self.engine.get_many(self._results_table, chunk)
            yield from zip(range(start, start + len(chunk)), values)

    def put_results(self, results: Mapping[str, Any]) -> None:
        """Persist a batch of complete results with put_new-per-key semantics."""
        self.engine.put_many(self._results_table, list(results.items()), if_absent=True)

    def result_count(self) -> int:
        """Number of cached (complete) results."""
        return self.engine.count(self._results_table)

    # -- table metadata ----------------------------------------------------------------

    def get_meta(self, key: str, default: Any = None) -> Any:
        """Return table metadata stored under *key* (presenter, ordering...)."""
        return self.engine.get(self._meta_table, key, default)

    def put_meta(self, key: str, value: Any) -> None:
        """Persist table metadata under *key*."""
        self.engine.put(self._meta_table, key, value)

    # -- maintenance ----------------------------------------------------------------------

    def clear(self) -> None:
        """Drop everything cached for this table (Reprowd's ``clear()``)."""
        for name in (self._tasks_table, self._results_table, self._meta_table):
            self.engine.drop_table(name)
            self.engine.create_table(name)

    #: Records fetched per page when walking a whole cache table.
    scan_page_size = 512

    def iter_cached_objects(self) -> Iterable[str]:
        """Yield every cached object key, paging through the engine.

        Uses the key-only paginated scan so at most :attr:`scan_page_size`
        keys are materialised at a time and no task descriptor is ever read
        or decoded — a million-task cache never has to fit in memory to be
        enumerated.
        """
        cursor: str | None = None
        while True:
            page = self.engine.scan_keys(
                self._tasks_table, limit=self.scan_page_size, start_after=cursor
            )
            yield from page
            if len(page) < self.scan_page_size:
                return
            cursor = page[-1]

    def all_cached_objects(self) -> list[str]:
        """Return every cached object key (task-column keys)."""
        return list(self.iter_cached_objects())

    def describe(self) -> dict[str, Any]:
        """Return cache statistics for the examination API."""
        return {
            "table": self.table_name,
            "cached_tasks": self.task_count(),
            "cached_results": self.result_count(),
        }
