"""Exporting experiments for publication and offline examination.

Sharing the SQLite file plus the code is the paper's workflow, but published
papers also need flat artifacts: a JSON dump of the whole experiment (rows,
answers, lineage, manipulation history) and CSV files reviewers can open
without installing anything.  The exporter reads everything from a CrowdData
instance — or straight from a storage engine, which is what the command-line
interface uses when only the database file is available.
"""

from __future__ import annotations

import csv
import json
from typing import Any

from repro.core.crowddata import CrowdData
from repro.core.lineage import AnswerLineage
from repro.core.manipulations import Manipulation
from repro.exceptions import CrowdDataError
from repro.storage.engine import StorageEngine


class ExperimentExporter:
    """Serialises one CrowdData experiment to JSON or CSV."""

    def __init__(self, crowddata: CrowdData):
        self.crowddata = crowddata

    # -- structured export -------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        """Return the whole experiment as one JSON-friendly dictionary."""
        data = self.crowddata
        return {
            "table": data.table_name,
            "columns": data.columns,
            "schema": data.schema.describe(),
            "rows": data.rows(),
            "lineage": [record.to_dict() for record in data.lineage_records()],
            "manipulations": [m.to_dict() for m in data.manipulation_history()],
            "cache": data.cache.describe(),
        }

    def to_json(self, path: str, indent: int = 2) -> str:
        """Write the experiment to a JSON file at *path* and return the path."""
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_dict(), handle, indent=indent, sort_keys=True, default=repr)
        return path

    # -- flat (CSV) export ----------------------------------------------------------

    def answers_to_csv(self, path: str) -> str:
        """Write one CSV row per collected answer (the lineage view)."""
        records = self.crowddata.lineage_records()
        if not records:
            raise CrowdDataError("nothing to export: no answers have been collected")
        fieldnames = list(records[0].to_dict().keys())
        with open(path, "w", newline="", encoding="utf-8") as handle:
            writer = csv.DictWriter(handle, fieldnames=fieldnames)
            writer.writeheader()
            for record in records:
                writer.writerow(record.to_dict())
        return path

    def decisions_to_csv(self, path: str, decision_column: str = "mv") -> str:
        """Write one CSV row per experiment row with its aggregated decision."""
        data = self.crowddata
        if decision_column not in data.columns:
            raise CrowdDataError(
                f"column {decision_column!r} does not exist; run quality control first"
            )
        with open(path, "w", newline="", encoding="utf-8") as handle:
            writer = csv.writer(handle)
            writer.writerow(["id", "object", decision_column])
            for row in data.rows():
                writer.writerow([row["id"], json.dumps(row["object"], default=repr), row[decision_column]])
        return path


# -- engine-level readers (no CrowdData instance needed) -----------------------------


def stored_tables(engine: StorageEngine) -> list[str]:
    """Return the CrowdData table names recorded in an experiment database."""
    if not engine.has_table("__tables__"):
        return []
    return sorted(engine.keys("__tables__"))


def stored_manipulations(engine: StorageEngine, table_name: str) -> list[Manipulation]:
    """Read a table's manipulation history straight from the database."""
    log_table = f"{table_name}::manipulations"
    if not engine.has_table(log_table):
        return []
    records = sorted(engine.items(log_table), key=lambda item: item[0])
    return [Manipulation.from_dict(value) for _, value in records]


def stored_lineage(engine: StorageEngine, table_name: str) -> list[AnswerLineage]:
    """Read a table's answer lineage straight from the database."""
    results_table = f"{table_name}::results"
    if not engine.has_table(results_table):
        return []
    lineage: list[AnswerLineage] = []
    for result in engine.values(results_table):
        published_at = result.get("published_at", 0.0)
        for assignment in result.get("assignments", []):
            lineage.append(
                AnswerLineage(
                    object_key=result["object_key"],
                    task_id=result["task_id"],
                    run_id=assignment["id"],
                    worker_id=assignment["worker_id"],
                    answer=assignment["answer"],
                    published_at=published_at,
                    submitted_at=assignment["submitted_at"],
                    latency_seconds=assignment["latency_seconds"],
                    assignment_order=assignment["assignment_order"],
                )
            )
    return lineage


def stored_experiment_summary(engine: StorageEngine, table_name: str) -> dict[str, Any]:
    """Summarise a stored experiment without re-running any code."""
    tasks_table = f"{table_name}::tasks"
    results_table = f"{table_name}::results"
    lineage = stored_lineage(engine, table_name)
    manipulations = stored_manipulations(engine, table_name)
    return {
        "table": table_name,
        "cached_tasks": engine.count(tasks_table) if engine.has_table(tasks_table) else 0,
        "cached_results": engine.count(results_table) if engine.has_table(results_table) else 0,
        "answers": len(lineage),
        "distinct_workers": len({record.worker_id for record in lineage}),
        "manipulations": [m.operation for m in manipulations],
    }
