"""Answer lineage: the examinable half of CrowdData.

The paper's motivating complaint is that shared crowd answers "may not
contain enough lineage information (e.g., when were the tasks published?
which workers did the tasks?)".  Every answer CrowdData collects therefore
carries an :class:`AnswerLineage` record, and :class:`LineageQuery` provides
the questions Ally asks in Figure 3: which workers participated, when tasks
were published, how each row's final label came about.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass
from typing import Any, Iterable

from repro.exceptions import LineageError


@dataclass(frozen=True)
class AnswerLineage:
    """Provenance of one crowd answer.

    Attributes:
        object_key: Cache key of the row the answer belongs to.
        task_id: Platform task id the answer was collected for.
        run_id: Platform task-run id of the answer.
        worker_id: Worker who produced the answer.
        answer: The answer itself.
        published_at: Simulated-clock time the task was published.
        submitted_at: Simulated-clock time the answer arrived.
        latency_seconds: Time the worker spent on the task.
        assignment_order: 1-based order of this answer among the task's
            assignments.
    """

    object_key: str
    task_id: int
    run_id: int
    worker_id: str
    answer: Any
    published_at: float
    submitted_at: float
    latency_seconds: float
    assignment_order: int

    def to_dict(self) -> dict[str, Any]:
        """Return a JSON-friendly representation."""
        return {
            "object_key": self.object_key,
            "task_id": self.task_id,
            "run_id": self.run_id,
            "worker_id": self.worker_id,
            "answer": self.answer,
            "published_at": self.published_at,
            "submitted_at": self.submitted_at,
            "latency_seconds": self.latency_seconds,
            "assignment_order": self.assignment_order,
        }

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "AnswerLineage":
        """Rebuild a lineage record from :meth:`to_dict` output."""
        return cls(
            object_key=payload["object_key"],
            task_id=payload["task_id"],
            run_id=payload["run_id"],
            worker_id=payload["worker_id"],
            answer=payload["answer"],
            published_at=payload["published_at"],
            submitted_at=payload["submitted_at"],
            latency_seconds=payload["latency_seconds"],
            assignment_order=payload["assignment_order"],
        )


class LineageQuery:
    """Query interface over a collection of lineage records."""

    def __init__(self, records: Iterable[AnswerLineage]):
        self._records = list(records)
        if not self._records:
            raise LineageError(
                "no lineage available — call get_result() before querying lineage"
            )

    # -- simple projections -----------------------------------------------------

    def records(self) -> list[AnswerLineage]:
        """Return every lineage record (submission order)."""
        return sorted(self._records, key=lambda record: record.submitted_at)

    def workers(self) -> list[str]:
        """Return the distinct worker ids that contributed answers, sorted."""
        return sorted({record.worker_id for record in self._records})

    def tasks(self) -> list[int]:
        """Return the distinct task ids, sorted."""
        return sorted({record.task_id for record in self._records})

    def answers_by_worker(self, worker_id: str) -> list[AnswerLineage]:
        """Return every answer the given worker produced, in time order."""
        answers = [record for record in self._records if record.worker_id == worker_id]
        return sorted(answers, key=lambda record: record.submitted_at)

    def answers_for_object(self, object_key: str) -> list[AnswerLineage]:
        """Return every answer collected for one row's object, in arrival order."""
        answers = [record for record in self._records if record.object_key == object_key]
        return sorted(answers, key=lambda record: record.assignment_order)

    # -- aggregate views -----------------------------------------------------------

    def worker_contributions(self) -> dict[str, int]:
        """Return answers-per-worker counts."""
        return dict(Counter(record.worker_id for record in self._records))

    def publication_window(self) -> tuple[float, float]:
        """Return (earliest, latest) task publication times."""
        published = [record.published_at for record in self._records]
        return min(published), max(published)

    def collection_window(self) -> tuple[float, float]:
        """Return (earliest, latest) answer submission times."""
        submitted = [record.submitted_at for record in self._records]
        return min(submitted), max(submitted)

    def mean_latency(self) -> float:
        """Return the mean worker latency in seconds."""
        return sum(record.latency_seconds for record in self._records) / len(self._records)

    def answer_distribution(self) -> dict[str, int]:
        """Return answer -> count across all lineage records."""
        return dict(Counter(str(record.answer) for record in self._records))

    def timeline(self) -> list[dict[str, Any]]:
        """Return a submission-ordered event list for display."""
        return [
            {
                "time": record.submitted_at,
                "worker": record.worker_id,
                "task": record.task_id,
                "answer": record.answer,
            }
            for record in self.records()
        ]

    def per_object_summary(self) -> dict[str, dict[str, Any]]:
        """Return per-object answer counts and distinct workers."""
        summary: dict[str, dict[str, Any]] = defaultdict(
            lambda: {"answers": 0, "workers": set()}
        )
        for record in self._records:
            entry = summary[record.object_key]
            entry["answers"] += 1
            entry["workers"].add(record.worker_id)
        return {
            key: {"answers": value["answers"], "workers": sorted(value["workers"])}
            for key, value in summary.items()
        }

    def __len__(self) -> int:
        return len(self._records)
