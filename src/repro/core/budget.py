"""Budget tracking for crowd spend.

Crowdsourcing experiments cost real money: every assignment is paid.  The
budget tracker charges committed spend whenever assignments are requested
(publication and adaptive top-ups) and enforces an optional hard budget, so
an experiment fails fast instead of silently overspending — and so the
benchmark harness can report dollar costs next to task counts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.exceptions import ReprowdError
from repro.utils.validation import require_positive


class BudgetExceededError(ReprowdError):
    """Raised when a charge would push spend past the configured budget."""

    def __init__(self, requested: float, spent: float, budget: float):
        super().__init__(
            f"charge of ${requested:.2f} would exceed the budget: "
            f"${spent:.2f} spent of ${budget:.2f}"
        )
        self.requested = requested
        self.spent = spent
        self.budget = budget


@dataclass
class BudgetTracker:
    """Tracks committed crowd spend.

    Attributes:
        price_per_assignment: Dollars paid for one worker answer.
        budget: Optional hard cap in dollars; None means unlimited.
        spent: Dollars committed so far.
        charges: History of (label, assignments, amount) entries.
    """

    price_per_assignment: float = 0.02
    budget: float | None = None
    spent: float = 0.0
    charges: list[dict[str, Any]] = field(default_factory=list)

    def __post_init__(self) -> None:
        require_positive("price_per_assignment", self.price_per_assignment)
        if self.budget is not None:
            require_positive("budget", self.budget)

    # -- charging --------------------------------------------------------------

    def can_afford(self, assignments: int) -> bool:
        """Return True when charging for *assignments* stays within budget."""
        if self.budget is None:
            return True
        return self.spent + assignments * self.price_per_assignment <= self.budget + 1e-9

    def charge(self, assignments: int, label: str = "") -> float:
        """Commit spend for *assignments* answers and return the amount.

        Raises:
            BudgetExceededError: When the charge would exceed the budget.
        """
        if assignments < 0:
            raise ValueError(f"assignments must be non-negative, got {assignments}")
        amount = assignments * self.price_per_assignment
        if self.budget is not None and self.spent + amount > self.budget + 1e-9:
            raise BudgetExceededError(amount, self.spent, self.budget)
        self.spent += amount
        self.charges.append({"label": label, "assignments": assignments, "amount": amount})
        return amount

    # -- reporting --------------------------------------------------------------

    @property
    def remaining(self) -> float | None:
        """Dollars left (None when the budget is unlimited)."""
        if self.budget is None:
            return None
        return max(0.0, self.budget - self.spent)

    def total_assignments(self) -> int:
        """Total assignments charged so far."""
        return sum(charge["assignments"] for charge in self.charges)

    def summary(self) -> dict[str, Any]:
        """Return a JSON-friendly spend summary."""
        return {
            "price_per_assignment": self.price_per_assignment,
            "budget": self.budget,
            "spent": round(self.spent, 4),
            "remaining": None if self.remaining is None else round(self.remaining, 4),
            "assignments": self.total_assignments(),
            "charges": len(self.charges),
        }
