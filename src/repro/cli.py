"""Command-line interface for examining shared experiment databases.

Ally may receive only the database file.  The CLI lets her inspect it without
writing any code:

    python -m repro tables       experiment.db
    python -m repro describe     experiment.db
    python -m repro history      experiment.db image_label
    python -m repro lineage      experiment.db image_label
    python -m repro export       experiment.db image_label out.json

Every command is read-only: the CLI never publishes tasks or modifies the
database.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Sequence

from repro.core.export import (
    stored_experiment_summary,
    stored_lineage,
    stored_manipulations,
    stored_tables,
)
from repro.core.lineage import LineageQuery
from repro.exceptions import ReprowdError
from repro.storage.sqlite_engine import SqliteEngine


def _open(db_path: str) -> SqliteEngine:
    return SqliteEngine(db_path)


def cmd_tables(args: argparse.Namespace) -> int:
    """List the CrowdData tables stored in the database."""
    with _open(args.database) as engine:
        tables = stored_tables(engine)
    if not tables:
        print("(no experiment tables found)")
        return 0
    for table in tables:
        print(table)
    return 0


def cmd_describe(args: argparse.Namespace) -> int:
    """Print a summary of every experiment in the database."""
    with _open(args.database) as engine:
        tables = stored_tables(engine)
        summaries = [stored_experiment_summary(engine, table) for table in tables]
    print(json.dumps(summaries, indent=2))
    return 0


def cmd_history(args: argparse.Namespace) -> int:
    """Print a table's manipulation history."""
    with _open(args.database) as engine:
        manipulations = stored_manipulations(engine, args.table)
    if not manipulations:
        print(f"(no manipulation history for table {args.table!r})")
        return 1
    for manipulation in manipulations:
        print(
            f"#{manipulation.sequence:<3} {manipulation.operation:<20} "
            f"rows={manipulation.rows_affected:<5} cache_hits={manipulation.cache_hits:<5} "
            f"params={json.dumps(manipulation.parameters, sort_keys=True)}"
        )
    return 0


def cmd_lineage(args: argparse.Namespace) -> int:
    """Print the lineage summary of a table's crowd answers."""
    with _open(args.database) as engine:
        records = stored_lineage(engine, args.table)
    if not records:
        print(f"(no collected answers for table {args.table!r})")
        return 1
    query = LineageQuery(records)
    start_pub, end_pub = query.publication_window()
    start_col, end_col = query.collection_window()
    summary = {
        "answers": len(query),
        "distinct_workers": len(query.workers()),
        "tasks": len(query.tasks()),
        "publication_window": [start_pub, end_pub],
        "collection_window": [start_col, end_col],
        "mean_latency_seconds": round(query.mean_latency(), 2),
        "answer_distribution": query.answer_distribution(),
        "worker_contributions": query.worker_contributions(),
    }
    print(json.dumps(summary, indent=2, sort_keys=True))
    return 0


def cmd_export(args: argparse.Namespace) -> int:
    """Export a table's cached crowd data to a JSON file."""
    with _open(args.database) as engine:
        payload = {
            "summary": stored_experiment_summary(engine, args.table),
            "lineage": [record.to_dict() for record in stored_lineage(engine, args.table)],
            "manipulations": [m.to_dict() for m in stored_manipulations(engine, args.table)],
        }
    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
    print(f"wrote {args.output}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Build the argument parser for ``python -m repro``."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Inspect a shared Reprowd experiment database (read-only).",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    tables = subparsers.add_parser("tables", help="list experiment tables")
    tables.add_argument("database", help="path to the shared SQLite database")
    tables.set_defaults(func=cmd_tables)

    describe = subparsers.add_parser("describe", help="summarise every experiment")
    describe.add_argument("database")
    describe.set_defaults(func=cmd_describe)

    history = subparsers.add_parser("history", help="show a table's manipulation log")
    history.add_argument("database")
    history.add_argument("table")
    history.set_defaults(func=cmd_history)

    lineage = subparsers.add_parser("lineage", help="show a table's answer lineage")
    lineage.add_argument("database")
    lineage.add_argument("table")
    lineage.set_defaults(func=cmd_lineage)

    export = subparsers.add_parser("export", help="export a table's crowd data to JSON")
    export.add_argument("database")
    export.add_argument("table")
    export.add_argument("output")
    export.set_defaults(func=cmd_export)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReprowdError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
