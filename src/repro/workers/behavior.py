"""Worker answer-behaviour models.

Each behaviour answers a task given the task's candidate answers and (for
simulation purposes) the hidden true answer.  Real crowds never see the true
answer, of course — the behaviour models use it only to sample a response
with the desired error statistics, which is the standard way crowdsourcing
papers simulate workers when sweeping noise levels.
"""

from __future__ import annotations

import abc
import random
from typing import Any, Mapping, Sequence

from repro.utils.validation import require_fraction, require_non_empty


class WorkerBehavior(abc.ABC):
    """Strategy object deciding how a simulated worker answers tasks."""

    @abc.abstractmethod
    def answer(
        self,
        candidates: Sequence[Any],
        true_answer: Any,
        rng: random.Random,
    ) -> Any:
        """Return this worker's answer for one task.

        Args:
            candidates: The answers the task's presenter offers (e.g.
                ``["Yes", "No"]``).
            true_answer: The hidden ground-truth answer used to bias the
                sample; may be None when no ground truth exists, in which
                case behaviours fall back to uniform choice.
            rng: Seeded random generator owned by the worker.
        """

    def expected_accuracy(self, num_candidates: int) -> float:
        """Return the probability this behaviour answers correctly.

        Used by weighted-vote aggregation oracles and by tests; behaviours
        with data-dependent accuracy override it.
        """
        raise NotImplementedError


class ReliableWorker(WorkerBehavior):
    """Always answers correctly when ground truth is available."""

    def answer(self, candidates: Sequence[Any], true_answer: Any, rng: random.Random) -> Any:
        require_non_empty("candidates", candidates)
        if true_answer is None:
            return rng.choice(list(candidates))
        return true_answer

    def expected_accuracy(self, num_candidates: int) -> float:
        return 1.0

    def __repr__(self) -> str:
        return "ReliableWorker()"


class NoisyWorker(WorkerBehavior):
    """Answers correctly with probability *accuracy*, else errs uniformly.

    This is the classic "symmetric noise" worker used throughout the
    crowdsourcing-quality-control literature.
    """

    def __init__(self, accuracy: float = 0.8):
        self.accuracy = require_fraction("accuracy", accuracy)

    def answer(self, candidates: Sequence[Any], true_answer: Any, rng: random.Random) -> Any:
        require_non_empty("candidates", candidates)
        candidate_list = list(candidates)
        if true_answer is None:
            return rng.choice(candidate_list)
        if rng.random() < self.accuracy:
            return true_answer
        wrong = [candidate for candidate in candidate_list if candidate != true_answer]
        if not wrong:
            return true_answer
        return rng.choice(wrong)

    def expected_accuracy(self, num_candidates: int) -> float:
        return self.accuracy

    def __repr__(self) -> str:
        return f"NoisyWorker(accuracy={self.accuracy})"


class SpammerWorker(WorkerBehavior):
    """Ignores the task and answers uniformly at random."""

    def answer(self, candidates: Sequence[Any], true_answer: Any, rng: random.Random) -> Any:
        require_non_empty("candidates", candidates)
        return rng.choice(list(candidates))

    def expected_accuracy(self, num_candidates: int) -> float:
        if num_candidates <= 0:
            raise ValueError("num_candidates must be positive")
        return 1.0 / num_candidates

    def __repr__(self) -> str:
        return "SpammerWorker()"


class AdversarialWorker(WorkerBehavior):
    """Deliberately answers incorrectly whenever it can."""

    def answer(self, candidates: Sequence[Any], true_answer: Any, rng: random.Random) -> Any:
        require_non_empty("candidates", candidates)
        candidate_list = list(candidates)
        if true_answer is None:
            return rng.choice(candidate_list)
        wrong = [candidate for candidate in candidate_list if candidate != true_answer]
        if not wrong:
            return true_answer
        return rng.choice(wrong)

    def expected_accuracy(self, num_candidates: int) -> float:
        return 0.0

    def __repr__(self) -> str:
        return "AdversarialWorker()"


class ConfusionMatrixWorker(WorkerBehavior):
    """Answers according to a per-true-label confusion distribution.

    This is the worker model assumed by Dawid-Skene EM: for every true label
    the worker has a categorical distribution over the labels they report.

    Args:
        confusion: Mapping from true label to a mapping of reported label to
            probability.  Each row must sum to (approximately) 1.
    """

    def __init__(self, confusion: Mapping[Any, Mapping[Any, float]]):
        self.confusion = {true: dict(row) for true, row in confusion.items()}
        for true_label, row in self.confusion.items():
            total = sum(row.values())
            if not 0.999 <= total <= 1.001:
                raise ValueError(
                    f"confusion row for label {true_label!r} sums to {total}, expected 1.0"
                )

    def answer(self, candidates: Sequence[Any], true_answer: Any, rng: random.Random) -> Any:
        require_non_empty("candidates", candidates)
        if true_answer is None or true_answer not in self.confusion:
            return rng.choice(list(candidates))
        row = self.confusion[true_answer]
        labels = list(row)
        weights = [row[label] for label in labels]
        return rng.choices(labels, weights=weights, k=1)[0]

    def expected_accuracy(self, num_candidates: int) -> float:
        if not self.confusion:
            return 0.0
        diagonal = [row.get(true_label, 0.0) for true_label, row in self.confusion.items()]
        return sum(diagonal) / len(diagonal)

    def __repr__(self) -> str:
        return f"ConfusionMatrixWorker(labels={sorted(map(str, self.confusion))})"
