"""Simulated crowd workers.

The paper collects answers from human workers on a PyBossa deployment.  This
reproduction replaces them with seeded probabilistic worker models so that
experiments are runnable offline and quality-control / join benchmarks can
sweep worker reliability, which is impossible with real crowds.
"""

from repro.workers.behavior import (
    AdversarialWorker,
    ConfusionMatrixWorker,
    NoisyWorker,
    ReliableWorker,
    SpammerWorker,
    WorkerBehavior,
)
from repro.workers.latency import (
    ConstantLatency,
    LatencyModel,
    LogNormalLatency,
    PerTypeLatency,
    UniformLatency,
)
from repro.workers.pool import SimulatedWorker, WorkerPool
from repro.workers.skills import SkillProfile

__all__ = [
    "WorkerBehavior",
    "ReliableWorker",
    "NoisyWorker",
    "SpammerWorker",
    "AdversarialWorker",
    "ConfusionMatrixWorker",
    "LatencyModel",
    "ConstantLatency",
    "UniformLatency",
    "LogNormalLatency",
    "PerTypeLatency",
    "SimulatedWorker",
    "WorkerPool",
    "SkillProfile",
]
