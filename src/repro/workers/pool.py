"""Worker pool: the simulated crowd the platform draws assignments from.

The pool is built from a :class:`repro.config.WorkerPoolConfig` (or an
explicit list of workers) and hands out answers deterministically given its
seed.  It also tracks per-worker statistics, which the platform copies into
task-run lineage so that quality-control algorithms and the examination API
can reason about who answered what.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Iterable, Sequence

from repro.config import WorkerPoolConfig
from repro.exceptions import NoEligibleWorkerError
from repro.utils.validation import require_positive
from repro.workers.behavior import (
    AdversarialWorker,
    NoisyWorker,
    SpammerWorker,
    WorkerBehavior,
)
from repro.workers.latency import LatencyModel, LogNormalLatency
from repro.workers.skills import SkillProfile


@dataclass
class SimulatedWorker:
    """One simulated crowd worker.

    Attributes:
        worker_id: Stable identifier recorded in every task run's lineage.
        behavior: Answering strategy.
        latency: Latency model for this worker.
        skills: Per-task-type skill profile.
        answered_tasks: Count of answers this worker has produced.
    """

    worker_id: str
    behavior: WorkerBehavior
    latency: LatencyModel = field(default_factory=LogNormalLatency)
    skills: SkillProfile = field(default_factory=SkillProfile.uniform)
    answered_tasks: int = 0

    def answer(
        self,
        candidates: Sequence[Any],
        true_answer: Any,
        rng: random.Random,
        task_type: str | None = None,
    ) -> tuple[Any, float]:
        """Answer one task; return (answer, latency_seconds).

        The skill profile is applied by degrading a correct behaviour answer
        to a random wrong one with the appropriate probability, so that any
        behaviour composes with skills without knowing about them.
        """
        answer = self.behavior.answer(candidates, true_answer, rng)
        if task_type is not None and true_answer is not None and answer == true_answer:
            try:
                base = self.behavior.expected_accuracy(len(candidates))
            except NotImplementedError:
                base = 1.0
            effective = self.skills.effective_accuracy(base, task_type)
            if base > 0 and effective < base and rng.random() > effective / base:
                wrong = [candidate for candidate in candidates if candidate != true_answer]
                if wrong:
                    answer = rng.choice(wrong)
        latency = self.latency.sample(rng, task_type=task_type)
        self.answered_tasks += 1
        return answer, latency


class WorkerPool:
    """A seeded collection of simulated workers."""

    def __init__(self, workers: Iterable[SimulatedWorker], seed: int = 7):
        self._workers: list[SimulatedWorker] = list(workers)
        if not self._workers:
            raise NoEligibleWorkerError("worker pool must contain at least one worker")
        self._rng = random.Random(seed)
        self.seed = seed

    # -- construction --------------------------------------------------------

    @classmethod
    def from_config(cls, config: WorkerPoolConfig) -> "WorkerPool":
        """Generate a pool matching *config*.

        Workers are assigned behaviours in a deterministic order: first the
        adversarial fraction, then the spammer fraction, then noisy workers
        whose accuracy is jittered around the configured mean.
        """
        require_positive("config.size", config.size)
        rng = random.Random(config.seed)
        num_adversarial = int(round(config.adversarial_fraction * config.size))
        num_spammers = int(round(config.spammer_fraction * config.size))
        workers: list[SimulatedWorker] = []
        for index in range(config.size):
            worker_id = f"w{index:04d}"
            if index < num_adversarial:
                behavior: WorkerBehavior = AdversarialWorker()
            elif index < num_adversarial + num_spammers:
                behavior = SpammerWorker()
            else:
                jitter = rng.uniform(-config.accuracy_spread, config.accuracy_spread)
                accuracy = min(1.0, max(0.0, config.mean_accuracy + jitter))
                behavior = NoisyWorker(accuracy=accuracy)
            workers.append(SimulatedWorker(worker_id=worker_id, behavior=behavior))
        return cls(workers, seed=config.seed)

    @classmethod
    def uniform(cls, size: int, accuracy: float, seed: int = 7) -> "WorkerPool":
        """Pool of *size* identical noisy workers with the given accuracy."""
        workers = [
            SimulatedWorker(worker_id=f"w{index:04d}", behavior=NoisyWorker(accuracy))
            for index in range(size)
        ]
        return cls(workers, seed=seed)

    # -- access ---------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._workers)

    def __iter__(self):
        return iter(self._workers)

    @property
    def workers(self) -> list[SimulatedWorker]:
        """The workers in this pool (mutable list copy)."""
        return list(self._workers)

    def worker(self, worker_id: str) -> SimulatedWorker:
        """Return the worker with *worker_id*."""
        for candidate in self._workers:
            if candidate.worker_id == worker_id:
                return candidate
        raise NoEligibleWorkerError(f"no worker with id {worker_id!r}")

    def worker_ids(self) -> list[str]:
        """Return every worker id in pool order."""
        return [worker.worker_id for worker in self._workers]

    # -- sampling ---------------------------------------------------------------

    def draw(self, exclude: Iterable[str] = ()) -> SimulatedWorker:
        """Draw one worker uniformly at random, excluding the given ids.

        Raises:
            NoEligibleWorkerError: If every worker is excluded.
        """
        excluded = set(exclude)
        eligible = [worker for worker in self._workers if worker.worker_id not in excluded]
        if not eligible:
            raise NoEligibleWorkerError(
                f"all {len(self._workers)} workers are excluded for this task"
            )
        return self._rng.choice(eligible)

    def draw_distinct(self, count: int) -> list[SimulatedWorker]:
        """Draw *count* distinct workers uniformly at random.

        Raises:
            NoEligibleWorkerError: If the pool has fewer than *count* workers.
        """
        if count > len(self._workers):
            raise NoEligibleWorkerError(
                f"requested {count} distinct workers but the pool only has {len(self._workers)}"
            )
        return self._rng.sample(self._workers, count)

    @property
    def rng(self) -> random.Random:
        """The pool's seeded random generator (shared with the platform)."""
        return self._rng

    def statistics(self) -> dict[str, Any]:
        """Return a summary of pool composition and work done so far."""
        behaviour_counts: dict[str, int] = {}
        for worker in self._workers:
            name = type(worker.behavior).__name__
            behaviour_counts[name] = behaviour_counts.get(name, 0) + 1
        return {
            "size": len(self._workers),
            "behaviors": behaviour_counts,
            "answers_given": sum(worker.answered_tasks for worker in self._workers),
        }
