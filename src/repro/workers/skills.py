"""Per-task-type worker skill profiles.

Real crowd workers are better at some task types than others (comparing
images vs. resolving product entities).  A :class:`SkillProfile` scales a
worker's base accuracy per task type, which lets experiments model
heterogeneous crowds without a different behaviour object per task type.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.utils.validation import require_fraction


@dataclass
class SkillProfile:
    """Multiplier applied to a worker's accuracy per task type.

    Attributes:
        multipliers: Mapping from task type (the presenter's ``task_type``)
            to a multiplier in [0, 1.5]; missing types use 1.0.
    """

    multipliers: dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for task_type, multiplier in self.multipliers.items():
            if not 0.0 <= multiplier <= 1.5:
                raise ValueError(
                    f"skill multiplier for {task_type!r} must be in [0, 1.5], got {multiplier}"
                )

    def effective_accuracy(self, base_accuracy: float, task_type: str | None) -> float:
        """Return base accuracy scaled by the task-type multiplier, clamped to [0, 1]."""
        require_fraction("base_accuracy", base_accuracy)
        multiplier = 1.0 if task_type is None else self.multipliers.get(task_type, 1.0)
        return min(1.0, max(0.0, base_accuracy * multiplier))

    @classmethod
    def uniform(cls) -> "SkillProfile":
        """Profile that leaves accuracy untouched for every task type."""
        return cls()

    @classmethod
    def from_mapping(cls, mapping: Mapping[str, float]) -> "SkillProfile":
        """Build a profile from a plain mapping."""
        return cls(multipliers=dict(mapping))
