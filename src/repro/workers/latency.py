"""Worker latency models.

Latency is simulated (not measured) so that an answer's lineage timestamp is
a deterministic function of the experiment seed rather than of the host
machine, which is what keeps reruns bit-identical.
"""

from __future__ import annotations

import abc
import math
import random

from repro.utils.validation import require_positive


class LatencyModel(abc.ABC):
    """Strategy object producing per-answer latencies in seconds."""

    @abc.abstractmethod
    def sample(self, rng: random.Random) -> float:
        """Return one latency sample (seconds, strictly positive)."""


class ConstantLatency(LatencyModel):
    """Every answer takes exactly *seconds* seconds."""

    def __init__(self, seconds: float = 30.0):
        self.seconds = require_positive("seconds", seconds)

    def sample(self, rng: random.Random) -> float:
        return self.seconds

    def __repr__(self) -> str:
        return f"ConstantLatency({self.seconds})"


class UniformLatency(LatencyModel):
    """Latency drawn uniformly from [low, high] seconds."""

    def __init__(self, low: float = 10.0, high: float = 60.0):
        self.low = require_positive("low", low)
        self.high = require_positive("high", high)
        if high < low:
            raise ValueError(f"high ({high}) must be >= low ({low})")

    def sample(self, rng: random.Random) -> float:
        return rng.uniform(self.low, self.high)

    def __repr__(self) -> str:
        return f"UniformLatency({self.low}, {self.high})"


class LogNormalLatency(LatencyModel):
    """Log-normal latency — the heavy-tailed shape real crowds exhibit.

    Args:
        median: Median latency in seconds.
        sigma: Log-space standard deviation controlling the tail weight.
    """

    def __init__(self, median: float = 30.0, sigma: float = 0.5):
        self.median = require_positive("median", median)
        self.sigma = require_positive("sigma", sigma)

    def sample(self, rng: random.Random) -> float:
        return self.median * math.exp(rng.gauss(0.0, self.sigma))

    def __repr__(self) -> str:
        return f"LogNormalLatency(median={self.median}, sigma={self.sigma})"
