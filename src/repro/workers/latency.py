"""Worker latency models.

Latency is simulated (not measured) so that an answer's lineage timestamp is
a deterministic function of the experiment seed rather than of the host
machine, which is what keeps reruns bit-identical.
"""

from __future__ import annotations

import abc
import math
import random

from repro.utils.validation import require_positive


class LatencyModel(abc.ABC):
    """Strategy object producing per-answer latencies in seconds.

    ``sample`` takes the task type so that heterogeneous-marketplace models
    can dispatch on it; the base models ignore it.
    """

    @abc.abstractmethod
    def sample(self, rng: random.Random, task_type: str | None = None) -> float:
        """Return one latency sample (seconds, strictly positive)."""


class ConstantLatency(LatencyModel):
    """Every answer takes exactly *seconds* seconds."""

    def __init__(self, seconds: float = 30.0):
        self.seconds = require_positive("seconds", seconds)

    def sample(self, rng: random.Random, task_type: str | None = None) -> float:
        return self.seconds

    def __repr__(self) -> str:
        return f"ConstantLatency({self.seconds})"


class UniformLatency(LatencyModel):
    """Latency drawn uniformly from [low, high] seconds."""

    def __init__(self, low: float = 10.0, high: float = 60.0):
        self.low = require_positive("low", low)
        self.high = require_positive("high", high)
        if high < low:
            raise ValueError(f"high ({high}) must be >= low ({low})")

    def sample(self, rng: random.Random, task_type: str | None = None) -> float:
        return rng.uniform(self.low, self.high)

    def __repr__(self) -> str:
        return f"UniformLatency({self.low}, {self.high})"


class LogNormalLatency(LatencyModel):
    """Log-normal latency — the heavy-tailed shape real crowds exhibit.

    Args:
        median: Median latency in seconds.
        sigma: Log-space standard deviation controlling the tail weight.
    """

    def __init__(self, median: float = 30.0, sigma: float = 0.5):
        self.median = require_positive("median", median)
        self.sigma = require_positive("sigma", sigma)

    def sample(self, rng: random.Random, task_type: str | None = None) -> float:
        return self.median * math.exp(rng.gauss(0.0, self.sigma))

    def __repr__(self) -> str:
        return f"LogNormalLatency(median={self.median}, sigma={self.sigma})"


class PerTypeLatency(LatencyModel):
    """Per-task-type latency with a per-worker speed multiplier.

    The marketplace model gives every :class:`TaskType` its own duration
    distribution and every worker a speed (stragglers are simply very slow
    workers).  A sampled base duration for the task's type is divided by the
    worker's speed; unknown (or absent) task types fall back to *default*.

    Args:
        models: Mapping of task-type name to the base duration model.
        default: Model used when the task type is unknown.
        speed: This worker's speed multiplier (>0); 2.0 halves durations,
            0.1 is a 10x straggler.
    """

    def __init__(
        self,
        models: dict[str, LatencyModel] | None = None,
        default: LatencyModel | None = None,
        speed: float = 1.0,
    ):
        self.models = dict(models or {})
        self.default = default or LogNormalLatency()
        self.speed = require_positive("speed", speed)

    def sample(self, rng: random.Random, task_type: str | None = None) -> float:
        model = self.models.get(task_type, self.default) if task_type else self.default
        return model.sample(rng, task_type) / self.speed

    def __repr__(self) -> str:
        return (
            f"PerTypeLatency(types={sorted(self.models)}, speed={self.speed})"
        )
