"""Crowdsourced top-k: tournament elimination followed by a final sort.

The hybrid strategy keeps crowd cost low: single-elimination rounds shrink
the candidate set until at most ``max(2k, k + 2)`` items remain, and the
survivors are ordered exactly with a full pairwise comparison (cheap once
the set is small).  This mirrors how top-k operators in the crowdsourced
data-management literature trade a small recall risk (a good item knocked
out early by a noisy comparison) for a large reduction in comparisons.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

from repro.operators.base import CrowdOperator, OperatorReport
from repro.operators.max_op import CrowdMax
from repro.operators.sort import CrowdSort
from repro.utils.validation import require_non_empty, require_positive


@dataclass
class TopKResult:
    """Output of a crowdsourced top-k.

    Attributes:
        top_items: The k selected items, best first.
        k: The requested k.
        report: Cost accounting (sums the elimination and final-sort stages).
    """

    top_items: list[Any] = field(default_factory=list)
    k: int = 0
    report: OperatorReport | None = None

    def recall_against(self, true_top: Sequence[Any]) -> float:
        """Fraction of the true top-k present in the selected set."""
        if not true_top:
            return 1.0
        return len(set(self.top_items) & set(true_top)) / len(true_top)


class CrowdTopK(CrowdOperator):
    """Tournament-plus-final-sort top-k operator."""

    name = "crowd_topk"

    def top_k(
        self,
        items: Sequence[Any],
        k: int,
        ground_truth: Callable[[Any], Any] | None = None,
    ) -> TopKResult:
        """Return the crowd's top *k* of *items*, best first.

        Args:
            items: The candidate items.
            k: How many items to return.
            ground_truth: Optional comparison-object -> "A"/"B" oracle.
        """
        require_non_empty("items", items)
        require_positive("k", k)
        item_list = list(items)
        k = min(k, len(item_list))
        report = OperatorReport(
            operator=self.name, table_name=self.table_name, total_candidates=len(item_list)
        )

        # Elimination stage: repeatedly drop the losers of pairwise rounds
        # until the survivor pool is small enough to sort outright.
        survivors = list(item_list)
        pool_target = max(2 * k, k + 2)
        stage = 0
        while len(survivors) > pool_target:
            stage += 1
            eliminator = CrowdMax(
                self.context,
                f"{self.table_name}_elim_{stage}",
                n_assignments=self.n_assignments,
                aggregation=self.aggregation,
            )
            round_result = eliminator.max(survivors, ground_truth=ground_truth)
            # Keep everything that survived at least one round of the
            # tournament (i.e. drop the first-round losers only).
            first_round_survivors = (
                round_result.rounds[1] if len(round_result.rounds) > 1 else survivors
            )
            if len(first_round_survivors) >= len(survivors):
                break
            survivors = first_round_survivors
            if round_result.report is not None:
                report.crowd_tasks += round_result.report.crowd_tasks
                report.crowd_answers += round_result.report.crowd_answers
                report.rounds += 1

        # Final stage: exact ordering of the survivors.
        sorter = CrowdSort(
            self.context,
            f"{self.table_name}_final",
            n_assignments=self.n_assignments,
            aggregation=self.aggregation,
        )
        sort_result = sorter.sort(survivors, ground_truth=ground_truth)
        if sort_result.report is not None:
            report.crowd_tasks += sort_result.report.crowd_tasks
            report.crowd_answers += sort_result.report.crowd_answers
            report.rounds += 1
        report.extras["survivor_pool"] = len(survivors)

        return TopKResult(top_items=sort_result.ranking[:k], k=k, report=report)
