"""Transitivity-aware crowdsourced join (Wang et al. 2013).

Entity resolution has an exploitable structure: "matches" is (approximately)
an equivalence relation.  If the crowd has said A=B and B=C, then A=C can be
*inferred* without asking anyone; if A=B and B≠D, then A≠D follows too.  The
algorithm therefore orders the candidate pairs (most-similar first, so that
likely matches are asked early and generate the most inference power) and
asks the crowd only the pairs whose outcome cannot yet be deduced.

The crowd interaction is incremental: each round extends the same CrowdData
table with the pairs that still need human judgement, so the whole join —
including the inference bookkeeping — remains sharable and examinable.
"""

from __future__ import annotations

from typing import Any, Mapping

from repro.operators.base import OperatorReport
from repro.operators.blocking import SimilarityBlocker
from repro.operators.join import CrowdJoin, JoinResult, PairGroundTruth, make_pair_object, _ordered
from repro.presenters.record_cmp import RecordComparisonPresenter
from repro.utils.validation import require_non_empty, require_positive


class _UnionFind:
    """Union-find over record ids, tracking match clusters."""

    def __init__(self) -> None:
        self._parent: dict[int, int] = {}

    def find(self, item: int) -> int:
        parent = self._parent.setdefault(item, item)
        if parent != item:
            root = self.find(parent)
            self._parent[item] = root
            return root
        return item

    def union(self, left: int, right: int) -> None:
        left_root, right_root = self.find(left), self.find(right)
        if left_root != right_root:
            self._parent[max(left_root, right_root)] = min(left_root, right_root)

    def connected(self, left: int, right: int) -> bool:
        return self.find(left) == self.find(right)


class TransitiveCrowdJoin(CrowdJoin):
    """CrowdER blocking plus positive/negative transitive inference.

    Args:
        context: CrowdContext supplying platform, cache and workers.
        table_name: CrowdData table name for the published pair tasks.
        blocker: Machine-side blocker (default Jaccard, threshold 0.3).
        n_assignments: Redundancy per pair task.
        aggregation: Quality-control method.
        batch_size: Number of not-yet-deducible pairs asked per crowd round.
            1 reproduces the strictly sequential algorithm; larger batches
            trade a few extra questions for fewer rounds (the paper's
            original system batches for latency).
        ordering: ``"similarity"`` (descending machine similarity — the
            paper's heuristic) or ``"random"`` (ablation baseline).
    """

    name = "transitive_crowd_join"

    def __init__(
        self,
        context,
        table_name: str,
        blocker: SimilarityBlocker | None = None,
        n_assignments: int = 3,
        aggregation: str = "mv",
        batch_size: int = 10,
        ordering: str = "similarity",
    ):
        super().__init__(
            context,
            table_name,
            blocker=blocker,
            n_assignments=n_assignments,
            aggregation=aggregation,
        )
        require_positive("batch_size", batch_size)
        if ordering not in ("similarity", "random"):
            raise ValueError(f"ordering must be 'similarity' or 'random', got {ordering!r}")
        self.batch_size = batch_size
        self.ordering = ordering

    def join(
        self,
        records: Mapping[int, Mapping[str, Any]],
        ground_truth: PairGroundTruth | None = None,
    ) -> JoinResult:
        """Run the transitivity-aware join over *records*."""
        require_non_empty("records", records)
        blocking = self.blocker.block(records)
        candidate_pairs = list(blocking.candidate_pairs)
        if self.ordering == "random":
            import random as _random

            _random.Random(self.context.config.seed).shuffle(candidate_pairs)

        result = JoinResult()
        report = OperatorReport(
            operator=self.name,
            table_name=self.table_name,
            total_candidates=blocking.total_pairs,
            machine_comparisons=blocking.comparisons,
            pruned_by_machine=blocking.pruned(),
        )
        report.extras["blocking_threshold"] = self.blocker.threshold
        report.extras["batch_size"] = self.batch_size
        report.extras["ordering"] = self.ordering
        report.extras["candidate_pairs"] = len(candidate_pairs)

        matches = _UnionFind()
        non_matches: set[tuple[int, int]] = set()
        crowddata = None
        asked_pairs: dict[tuple[int, int], dict[str, Any]] = {}
        pending = candidate_pairs
        inferred = 0

        while pending:
            batch_objects: list[dict[str, Any]] = []
            remaining: list[tuple[int, int, float]] = []
            for position, (left_id, right_id, _score) in enumerate(pending):
                decided, decision = self._deduce(left_id, right_id, matches, non_matches)
                if decided:
                    pair = _ordered(left_id, right_id)
                    result.decisions[pair] = decision
                    if decision == self.match_answer:
                        result.matches.add(pair)
                    inferred += 1
                    continue
                if len(batch_objects) < self.batch_size:
                    obj = make_pair_object(left_id, right_id, records[left_id], records[right_id])
                    batch_objects.append(obj)
                    asked_pairs[_ordered(left_id, right_id)] = obj
                else:
                    remaining.extend(pending[position:])
                    break
            pending = remaining
            if not batch_objects:
                continue
            if crowddata is None:
                crowddata = self.context.CrowdData(
                    batch_objects, self.table_name, ground_truth=ground_truth
                )
                new_objects: list[dict[str, Any]] = []
            else:
                new_objects = batch_objects
            decisions = self._ask_crowd(
                crowddata,
                new_objects=new_objects,
                presenter=RecordComparisonPresenter(),
                ground_truth=ground_truth,
            )
            report.rounds += 1
            # Fold the crowd's decisions for the whole table (cached rows
            # included) into the inference structures.
            for index, obj in enumerate(crowddata.column("object")):
                pair = _ordered(obj["left_id"], obj["right_id"])
                decision = decisions[index]
                result.decisions[pair] = decision
                if decision == self.match_answer:
                    result.matches.add(pair)
                    matches.union(*pair)
                else:
                    non_matches.add(
                        _ordered(matches.find(pair[0]), matches.find(pair[1]))
                    )

        report.crowd_tasks = len(asked_pairs)
        report.crowd_answers = len(asked_pairs) * self.n_assignments
        report.inferred = inferred
        result.report = report
        result.crowddata = crowddata
        return result

    def _deduce(
        self,
        left_id: int,
        right_id: int,
        matches: _UnionFind,
        non_matches: set[tuple[int, int]],
    ) -> tuple[bool, Any]:
        """Try to decide a pair from what the crowd has already said.

        Positive transitivity: same match-cluster => match.
        Negative transitivity: the pair's cluster representatives are known
        non-matches => non-match.
        """
        if matches.connected(left_id, right_id):
            return True, self.match_answer
        roots = _ordered(matches.find(left_id), matches.find(right_id))
        if roots in non_matches:
            return True, "No"
        return False, None
