"""Machine-side candidate generation (blocking) for crowdsourced joins.

CrowdER's key idea is a hybrid human-machine workflow: a cheap machine
similarity pass eliminates the overwhelming majority of record pairs, and
only the pairs above a similarity threshold are sent to the crowd for
verification.  This module provides both the naive quadratic generator and a
token-based inverted-index blocker that avoids materialising pairs that share
no tokens at all.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Any, Callable, Mapping, Sequence

from repro.utils.text import jaccard_similarity, ngrams, record_text
from repro.utils.validation import require_fraction

#: A similarity function over two record dictionaries.
SimilarityFn = Callable[[Mapping[str, Any], Mapping[str, Any]], float]


def default_similarity(left: Mapping[str, Any], right: Mapping[str, Any]) -> float:
    """Combined token and character-trigram Jaccard similarity.

    Token Jaccard captures word-level overlap; trigram Jaccard keeps the
    score high under the typos and abbreviations dirty duplicates exhibit.
    The maximum of the two is used, which is what keeps a dirty duplicate
    above a moderate blocking threshold while unrelated records stay below.
    """
    left_text = record_text(left)
    right_text = record_text(right)
    token_score = jaccard_similarity(left_text, right_text)
    trigram_score = jaccard_similarity(ngrams(left_text, 3), ngrams(right_text, 3))
    return max(token_score, trigram_score)


def all_pairs(record_ids: Sequence[int]) -> list[tuple[int, int]]:
    """Return every unordered pair of distinct ids (the un-pruned space)."""
    ids = sorted(record_ids)
    return [(ids[i], ids[j]) for i in range(len(ids)) for j in range(i + 1, len(ids))]


@dataclass
class BlockingResult:
    """Output of a blocking pass.

    Attributes:
        candidate_pairs: Pairs surviving the threshold, each with its
            machine similarity, sorted by similarity descending.
        total_pairs: Size of the unpruned pair space.
        comparisons: Number of similarity evaluations actually performed.
    """

    candidate_pairs: list[tuple[int, int, float]]
    total_pairs: int
    comparisons: int

    def pairs(self) -> list[tuple[int, int]]:
        """Return just the id pairs, best-first."""
        return [(left, right) for left, right, _ in self.candidate_pairs]

    def pruned(self) -> int:
        """Number of pairs eliminated without crowd involvement."""
        return self.total_pairs - len(self.candidate_pairs)


class SimilarityBlocker:
    """Threshold blocker with an optional token inverted index.

    Args:
        threshold: Minimum machine similarity for a pair to become a crowd
            candidate.  Lower thresholds send more pairs to the crowd
            (higher recall, higher cost); the CrowdER benchmark sweeps this.
        similarity: Similarity function over record dicts.
        use_index: Build a token inverted index so that pairs sharing no
            token are never compared (sound for Jaccard-style similarities,
            where such pairs have similarity 0).
        text_fields: Restrict the text used for indexing/similarity to these
            record fields (all fields when None).
    """

    def __init__(
        self,
        threshold: float = 0.3,
        similarity: SimilarityFn | None = None,
        use_index: bool = True,
        text_fields: Sequence[str] | None = None,
    ):
        self.threshold = require_fraction("threshold", threshold)
        self.similarity = similarity or default_similarity
        self.use_index = use_index
        self.text_fields = list(text_fields) if text_fields else None

    # -- public API -----------------------------------------------------------------

    def block(self, records: Mapping[int, Mapping[str, Any]]) -> BlockingResult:
        """Return candidate pairs among *records* (self-join blocking)."""
        ids = sorted(records)
        total_pairs = len(ids) * (len(ids) - 1) // 2
        if self.use_index:
            pair_iter = self._index_pairs(records, ids)
        else:
            pair_iter = ((ids[i], ids[j]) for i in range(len(ids)) for j in range(i + 1, len(ids)))
        candidates: list[tuple[int, int, float]] = []
        comparisons = 0
        for left_id, right_id in pair_iter:
            comparisons += 1
            score = self.similarity(records[left_id], records[right_id])
            if score >= self.threshold:
                candidates.append((left_id, right_id, score))
        candidates.sort(key=lambda item: (-item[2], item[0], item[1]))
        return BlockingResult(
            candidate_pairs=candidates, total_pairs=total_pairs, comparisons=comparisons
        )

    def block_two_sided(
        self,
        left_records: Mapping[int, Mapping[str, Any]],
        right_records: Mapping[int, Mapping[str, Any]],
    ) -> BlockingResult:
        """Return candidate pairs between two record collections (R x S join)."""
        total_pairs = len(left_records) * len(right_records)
        candidates: list[tuple[int, int, float]] = []
        comparisons = 0
        if self.use_index:
            index = self._build_index(right_records)
            for left_id, left_record in sorted(left_records.items()):
                seen: set[int] = set()
                for token in self._tokens(left_record):
                    for right_id in index.get(token, ()):
                        if right_id in seen:
                            continue
                        seen.add(right_id)
                        comparisons += 1
                        score = self.similarity(left_record, right_records[right_id])
                        if score >= self.threshold:
                            candidates.append((left_id, right_id, score))
        else:
            for left_id, left_record in sorted(left_records.items()):
                for right_id, right_record in sorted(right_records.items()):
                    comparisons += 1
                    score = self.similarity(left_record, right_record)
                    if score >= self.threshold:
                        candidates.append((left_id, right_id, score))
        candidates.sort(key=lambda item: (-item[2], item[0], item[1]))
        return BlockingResult(
            candidate_pairs=candidates, total_pairs=total_pairs, comparisons=comparisons
        )

    # -- internals ----------------------------------------------------------------------

    def _tokens(self, record: Mapping[str, Any]) -> set[str]:
        from repro.utils.text import tokenize

        text = record_text(record, fields=self.text_fields)
        # Index both word tokens and character trigrams so that the index is
        # a sound filter for the default (token OR trigram) similarity: a
        # pair sharing neither a token nor a trigram scores 0 either way.
        return set(tokenize(text)) | set(ngrams(text, 3))

    def _build_index(self, records: Mapping[int, Mapping[str, Any]]) -> dict[str, list[int]]:
        index: dict[str, list[int]] = defaultdict(list)
        for record_id, record in sorted(records.items()):
            for token in self._tokens(record):
                index[token].append(record_id)
        return index

    def _index_pairs(
        self, records: Mapping[int, Mapping[str, Any]], ids: list[int]
    ):
        """Yield unordered id pairs that share at least one token."""
        index = self._build_index(records)
        emitted: set[tuple[int, int]] = set()
        for token_ids in index.values():
            for i in range(len(token_ids)):
                for j in range(i + 1, len(token_ids)):
                    pair = (token_ids[i], token_ids[j]) if token_ids[i] < token_ids[j] else (token_ids[j], token_ids[i])
                    if pair not in emitted:
                        emitted.add(pair)
                        yield pair


def blocked_pairs(
    records: Mapping[int, Mapping[str, Any]],
    threshold: float = 0.3,
    similarity: SimilarityFn | None = None,
) -> BlockingResult:
    """One-shot helper: block *records* with the given threshold."""
    return SimilarityBlocker(threshold=threshold, similarity=similarity).block(records)
