"""Crowdsourced group-by: categorise items with the crowd, then aggregate.

The relational view of crowdsourced labeling: ``GROUP BY crowd_label(item)``
followed by per-group aggregates.  Built directly on :class:`CrowdLabel`, so
it inherits caching, lineage and (optionally) adaptive redundancy, and it
demonstrates how higher-level relational operators compose out of the
CrowdData-based primitives.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

from repro.operators.base import OperatorReport
from repro.operators.labeling import CrowdLabel, LabelResult
from repro.utils.validation import require_non_empty


@dataclass
class GroupByResult:
    """Output of a crowdsourced group-by.

    Attributes:
        groups: label -> list of items assigned to that label.
        counts: label -> group size.
        aggregates: label -> aggregate value (when an aggregate function was
            supplied).
        label_result: The underlying labeling result.
        report: Cost accounting (same crowd cost as the labeling pass).
    """

    groups: dict[Any, list[Any]] = field(default_factory=dict)
    counts: dict[Any, int] = field(default_factory=dict)
    aggregates: dict[Any, Any] = field(default_factory=dict)
    label_result: LabelResult | None = None
    report: OperatorReport | None = None

    def largest_group(self) -> Any:
        """Return the label of the largest group."""
        return max(self.counts, key=lambda label: (self.counts[label], str(label)))


class CrowdGroupBy:
    """Group items by a crowd-assigned label and aggregate per group.

    Args:
        context: CrowdContext supplying platform, cache and workers.
        table_name: CrowdData table used by the labeling pass.
        candidates: The label vocabulary defining the groups.
        label_kwargs: Extra keyword arguments forwarded to :class:`CrowdLabel`
            (redundancy, aggregation method, adaptive policy, presenter).
    """

    name = "crowd_groupby"

    def __init__(self, context, table_name: str, candidates: Sequence[Any], **label_kwargs: Any):
        require_non_empty("candidates", candidates)
        self.labeler = CrowdLabel(context, table_name, candidates=list(candidates), **label_kwargs)
        self.candidates = list(candidates)
        self.table_name = table_name

    def group_by(
        self,
        items: Sequence[Any],
        ground_truth: Callable[[Any], Any] | None = None,
        aggregate: Callable[[list[Any]], Any] | None = None,
    ) -> GroupByResult:
        """Group *items* by crowd label; optionally aggregate each group.

        Args:
            items: The items to categorise.
            ground_truth: Optional item -> true-label oracle for the crowd.
            aggregate: Optional function applied to each group's item list
                (e.g. ``len``, or a mean over a numeric field).
        """
        require_non_empty("items", items)
        label_result = self.labeler.label(items, ground_truth=ground_truth)

        result = GroupByResult(label_result=label_result, report=label_result.report)
        for label in self.candidates:
            result.groups[label] = []
        objects = label_result.crowddata.column("object")
        for obj, label in zip(objects, label_result.labels):
            result.groups.setdefault(label, []).append(obj)
        result.counts = {label: len(group) for label, group in result.groups.items()}
        if aggregate is not None:
            result.aggregates = {
                label: aggregate(group) for label, group in result.groups.items()
            }
        if result.report is not None:
            result.report.extras["groups"] = {str(k): v for k, v in result.counts.items()}
        return result
