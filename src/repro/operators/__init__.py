"""Crowdsourced data-processing operators built on CrowdData.

The paper's thesis is that crowdsourced operators implemented on top of the
CrowdData abstraction inherit the sharable and examinable properties for
free.  This package implements the operators the crowdsourced-data-management
literature centres on (Li et al. 2016) — the two join algorithms the paper
says it re-implemented (CrowdER, Wang et al. 2012; transitivity-aware joins,
Wang et al. 2013) plus sort, max, top-k, count, filter and dedup — all of
which publish their tasks exclusively through CrowdData.
"""

from repro.operators.base import OperatorReport
from repro.operators.blocking import SimilarityBlocker, all_pairs, blocked_pairs
from repro.operators.join import CrowdJoin, JoinResult
from repro.operators.transitive_join import TransitiveCrowdJoin
from repro.operators.baselines import AllPairsCrowdJoin, MachineOnlyJoin
from repro.operators.sort import CrowdSort, SortResult
from repro.operators.max_op import CrowdMax, MaxResult
from repro.operators.topk import CrowdTopK, TopKResult
from repro.operators.count import CrowdCount, CountResult
from repro.operators.filter_op import CrowdFilter, FilterResult
from repro.operators.dedup import CrowdDedup, DedupResult
from repro.operators.labeling import CrowdLabel, LabelResult
from repro.operators.groupby import CrowdGroupBy, GroupByResult

__all__ = [
    "CrowdLabel",
    "LabelResult",
    "CrowdGroupBy",
    "GroupByResult",
    "OperatorReport",
    "SimilarityBlocker",
    "all_pairs",
    "blocked_pairs",
    "CrowdJoin",
    "JoinResult",
    "TransitiveCrowdJoin",
    "AllPairsCrowdJoin",
    "MachineOnlyJoin",
    "CrowdSort",
    "SortResult",
    "CrowdMax",
    "MaxResult",
    "CrowdTopK",
    "TopKResult",
    "CrowdCount",
    "CountResult",
    "CrowdFilter",
    "FilterResult",
    "CrowdDedup",
    "DedupResult",
]
