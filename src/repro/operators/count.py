"""Crowdsourced count: estimate how many items satisfy a predicate.

Asking the crowd about every item is wasteful when only an aggregate is
needed.  The sampling-based count estimator asks about a random sample,
estimates the selectivity with a confidence interval, and scales it to the
population — the standard crowdsourced-count design.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

from repro.operators.base import CrowdOperator, OperatorReport
from repro.operators.filter_op import CrowdFilter
from repro.presenters.base import BasePresenter
from repro.utils.validation import require_non_empty, require_positive


@dataclass
class CountResult:
    """Output of a crowdsourced count.

    Attributes:
        estimate: Estimated number of items satisfying the predicate.
        selectivity: Estimated fraction of qualifying items.
        confidence_interval: (low, high) bounds on the selectivity (95%).
        sample_size: Number of items actually asked about.
        population: Total number of items.
        report: Cost accounting.
    """

    estimate: float = 0.0
    selectivity: float = 0.0
    confidence_interval: tuple[float, float] = (0.0, 1.0)
    sample_size: int = 0
    population: int = 0
    report: OperatorReport | None = None


class CrowdCount(CrowdOperator):
    """Sampling-based crowdsourced count.

    Args:
        context: CrowdContext supplying platform, cache and workers.
        table_name: CrowdData table used for the sampled tasks.
        presenter: Presenter for the per-item yes/no question.
        sample_size: How many items to ask the crowd about (capped at the
            population size).
        keep_answer: The answer that counts as "satisfies the predicate".
        n_assignments: Redundancy per task.
        aggregation: Quality-control method.
        seed: Seed for the sampling RNG.
    """

    name = "crowd_count"

    def __init__(
        self,
        context,
        table_name: str,
        presenter: BasePresenter | None = None,
        sample_size: int = 50,
        keep_answer: Any = "Yes",
        n_assignments: int = 3,
        aggregation: str = "mv",
        seed: int = 7,
    ):
        super().__init__(context, table_name, n_assignments=n_assignments, aggregation=aggregation)
        require_positive("sample_size", sample_size)
        self.presenter = presenter
        self.sample_size = sample_size
        self.keep_answer = keep_answer
        self.seed = seed

    def count(
        self,
        items: Sequence[Any],
        ground_truth: Callable[[Any], Any] | None = None,
    ) -> CountResult:
        """Estimate how many of *items* satisfy the predicate."""
        require_non_empty("items", items)
        population = len(items)
        sample_size = min(self.sample_size, population)
        rng = random.Random(self.seed)
        sample = rng.sample(list(items), sample_size)

        crowd_filter = CrowdFilter(
            self.context,
            self.table_name,
            presenter=self.presenter,
            keep_answer=self.keep_answer,
            n_assignments=self.n_assignments,
            aggregation=self.aggregation,
        )
        filter_result = crowd_filter.filter(sample, ground_truth=ground_truth)

        positives = len(filter_result.kept)
        selectivity = positives / sample_size
        margin = 1.96 * math.sqrt(selectivity * (1 - selectivity) / sample_size)
        interval = (max(0.0, selectivity - margin), min(1.0, selectivity + margin))

        report = OperatorReport(
            operator=self.name,
            table_name=self.table_name,
            crowd_tasks=sample_size,
            crowd_answers=sample_size * self.n_assignments,
            total_candidates=population,
            rounds=1,
            extras={"sample_size": sample_size},
        )
        return CountResult(
            estimate=selectivity * population,
            selectivity=selectivity,
            confidence_interval=interval,
            sample_size=sample_size,
            population=population,
            report=report,
        )
