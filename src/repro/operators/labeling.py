"""Crowdsourced multi-class labeling operator.

Bob's experiment is binary labeling; this operator generalises it to an
arbitrary label vocabulary and supports both fixed redundancy and the
adaptive-redundancy policy (ask more only where workers disagree).  It is the
operator form of the paper's flagship example application, so downstream code
can label a collection in one call and still get CrowdData's caching and
lineage underneath.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

from repro.core.crowddata import CrowdData
from repro.operators.base import CrowdOperator, OperatorReport
from repro.presenters.base import BasePresenter
from repro.presenters.image_label import ImageLabelPresenter
from repro.presenters.text_label import TextLabelPresenter
from repro.quality.adaptive import AdaptivePolicy
from repro.utils.validation import require_non_empty


@dataclass
class LabelResult:
    """Output of a crowdsourced labeling run.

    Attributes:
        labels: item index -> aggregated label (in input order).
        by_item: item -> aggregated label (only when items are hashable).
        confidences: item index -> aggregation confidence.
        report: Cost accounting.
        crowddata: The CrowdData table used.
    """

    labels: list[Any] = field(default_factory=list)
    by_item: dict[Any, Any] = field(default_factory=dict)
    confidences: list[float] = field(default_factory=list)
    report: OperatorReport | None = None
    crowddata: CrowdData | None = None

    def accuracy_against(self, truth: dict[Any, Any]) -> float:
        """Fraction of items whose label matches *truth* (keyed by item)."""
        scored = [(item, label) for item, label in self.by_item.items() if item in truth]
        if not scored:
            raise ValueError("no overlap between labeled items and the provided truth")
        return sum(1 for item, label in scored if truth[item] == label) / len(scored)


class CrowdLabel(CrowdOperator):
    """Label a collection of items with a fixed vocabulary.

    Args:
        context: CrowdContext supplying platform, cache and workers.
        table_name: CrowdData table used for the published tasks.
        candidates: Label vocabulary; defaults to the presenter's own.
        presenter: Presenter shown to workers (image label by default; pass a
            :class:`TextLabelPresenter` for text classification).
        n_assignments: Fixed redundancy per task (ignored when *adaptive* is
            given).
        aggregation: Quality-control method.
        adaptive: Optional :class:`AdaptivePolicy`; when given, tasks start at
            ``policy.initial_assignments`` and only ambiguous items receive
            more answers.
    """

    name = "crowd_label"

    def __init__(
        self,
        context,
        table_name: str,
        candidates: Sequence[Any] | None = None,
        presenter: BasePresenter | None = None,
        n_assignments: int = 3,
        aggregation: str = "mv",
        adaptive: AdaptivePolicy | None = None,
    ):
        super().__init__(context, table_name, n_assignments=n_assignments, aggregation=aggregation)
        if presenter is not None:
            self.presenter = presenter
        elif candidates is not None:
            self.presenter = TextLabelPresenter(candidates=list(candidates))
        else:
            self.presenter = ImageLabelPresenter()
        if candidates is not None:
            self.presenter.candidates = list(candidates)
        self.adaptive = adaptive

    def label(
        self,
        items: Sequence[Any],
        ground_truth: Callable[[Any], Any] | None = None,
    ) -> LabelResult:
        """Label *items* and return the aggregated decisions."""
        require_non_empty("items", items)
        crowddata = self.context.CrowdData(list(items), self.table_name, ground_truth=ground_truth)
        crowddata.set_presenter(self.presenter)
        if self.adaptive is not None:
            crowddata.publish_task(n_assignments=self.adaptive.initial_assignments)
            crowddata.get_result_adaptive(self.adaptive)
        else:
            crowddata.publish_task(n_assignments=self.n_assignments)
            crowddata.get_result()
        crowddata.quality_control(self.aggregation, column="label")

        aggregation = crowddata.last_aggregation
        result = LabelResult(crowddata=crowddata)
        objects = crowddata.column("object")
        result.labels = crowddata.column("label")
        result.confidences = [
            aggregation.confidences.get(index, 0.0) for index in range(len(objects))
        ]
        for obj, label in zip(objects, result.labels):
            try:
                result.by_item[obj] = label
            except TypeError:
                # Unhashable objects (e.g. dicts) are only available positionally.
                continue

        answers_collected = sum(
            len(row["assignments"]) for row in crowddata.column("result") if row is not None
        )
        extras: dict[str, Any] = {
            "adaptive": self.adaptive is not None,
            "mean_answers_per_item": round(answers_collected / len(objects), 2),
        }
        adaptive_stats = crowddata.last_adaptive_stats
        if self.adaptive is not None and adaptive_stats is not None:
            # Early-stopping accounting: how much redundancy the policy
            # reallocated (or refused to buy) compared to fixed redundancy.
            extras["items_resolved_early"] = adaptive_stats.items_resolved_early
            extras["items_at_cap"] = adaptive_stats.items_at_cap
            extras["items_below_minimum"] = adaptive_stats.items_below_minimum
            extras["extensions_requested"] = adaptive_stats.extensions_requested
            extras["pages_streamed"] = adaptive_stats.pages_streamed
        result.report = OperatorReport(
            operator=self.name,
            table_name=self.table_name,
            crowd_tasks=len(objects),
            crowd_answers=answers_collected,
            total_candidates=len(objects),
            rounds=(
                adaptive_stats.rounds
                if self.adaptive is not None and adaptive_stats
                else 1
            ),
            extras=extras,
        )
        return result
