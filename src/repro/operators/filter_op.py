"""Crowdsourced filter (selection): keep the items the crowd says qualify."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

from repro.core.crowddata import CrowdData
from repro.operators.base import CrowdOperator, OperatorReport
from repro.presenters.base import BasePresenter
from repro.presenters.image_label import ImageLabelPresenter
from repro.utils.validation import require_non_empty


@dataclass
class FilterResult:
    """Output of a crowdsourced filter.

    Attributes:
        kept: Items the crowd judged to satisfy the predicate.
        rejected: Items the crowd judged not to satisfy it.
        decisions: item -> aggregated answer.
        report: Cost accounting.
        crowddata: The CrowdData table used.
    """

    kept: list[Any] = field(default_factory=list)
    rejected: list[Any] = field(default_factory=list)
    decisions: dict[int, Any] = field(default_factory=dict)
    report: OperatorReport | None = None
    crowddata: CrowdData | None = None


class CrowdFilter(CrowdOperator):
    """Ask the crowd one yes/no question per item and keep the "Yes" items.

    Args:
        context: CrowdContext supplying platform, cache and workers.
        table_name: CrowdData table used for the published tasks.
        presenter: Presenter for the per-item question (image label Yes/No by
            default).
        keep_answer: The aggregated answer that means "keep this item".
        n_assignments: Redundancy per task.
        aggregation: Quality-control method.
    """

    name = "crowd_filter"

    def __init__(
        self,
        context,
        table_name: str,
        presenter: BasePresenter | None = None,
        keep_answer: Any = "Yes",
        n_assignments: int = 3,
        aggregation: str = "mv",
    ):
        super().__init__(context, table_name, n_assignments=n_assignments, aggregation=aggregation)
        self.presenter = presenter or ImageLabelPresenter()
        self.keep_answer = keep_answer

    def filter(
        self,
        items: Sequence[Any],
        ground_truth: Callable[[Any], Any] | None = None,
    ) -> FilterResult:
        """Run the filter over *items*."""
        require_non_empty("items", items)
        crowddata = self.context.CrowdData(list(items), self.table_name, ground_truth=ground_truth)
        decisions = self._ask_crowd(
            crowddata, new_objects=[], presenter=self.presenter, ground_truth=ground_truth
        )
        result = FilterResult(crowddata=crowddata)
        for index, item in enumerate(crowddata.column("object")):
            decision = decisions[index]
            result.decisions[index] = decision
            if decision == self.keep_answer:
                result.kept.append(item)
            else:
                result.rejected.append(item)
        result.report = OperatorReport(
            operator=self.name,
            table_name=self.table_name,
            crowd_tasks=len(items),
            crowd_answers=len(items) * self.n_assignments,
            total_candidates=len(items),
            rounds=1,
            extras={"selectivity": len(result.kept) / len(items)},
        )
        return result
