"""Crowdsourced max: find the best item with a single-elimination tournament.

A tournament needs only n-1 comparisons instead of the n(n-1)/2 a full sort
performs — the classic cost/accuracy trade-off of crowdsourced max
operators.  Each round pairs up the surviving items, publishes the
comparisons through CrowdData, and advances the majority-vote winners.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

from repro.core.crowddata import CrowdData
from repro.operators.base import CrowdOperator, OperatorReport
from repro.operators.sort import _ComparisonPresenter, make_comparison_object
from repro.utils.validation import require_non_empty


@dataclass
class MaxResult:
    """Output of a crowdsourced max.

    Attributes:
        winner: The item the tournament selected.
        rounds: Per-round surviving items, first round first.
        report: Cost accounting.
        crowddata: The CrowdData table used (None for single-item inputs).
    """

    winner: Any = None
    rounds: list[list[Any]] = field(default_factory=list)
    report: OperatorReport | None = None
    crowddata: CrowdData | None = None


class CrowdMax(CrowdOperator):
    """Single-elimination tournament max operator."""

    name = "crowd_max"

    def max(
        self,
        items: Sequence[Any],
        ground_truth: Callable[[Any], Any] | None = None,
    ) -> MaxResult:
        """Return the best item according to the crowd.

        Args:
            items: The items to compare.
            ground_truth: Optional comparison-object -> "A"/"B" oracle.
        """
        require_non_empty("items", items)
        survivors = list(items)
        result = MaxResult(rounds=[list(survivors)])
        report = OperatorReport(
            operator=self.name,
            table_name=self.table_name,
            total_candidates=len(items) - 1,
        )
        if len(survivors) == 1:
            result.winner = survivors[0]
            result.report = report
            return result

        crowddata = None
        while len(survivors) > 1:
            pairs = [
                make_comparison_object(survivors[i], survivors[i + 1])
                for i in range(0, len(survivors) - 1, 2)
            ]
            bye = [survivors[-1]] if len(survivors) % 2 == 1 else []
            if crowddata is None:
                crowddata = self.context.CrowdData(pairs, self.table_name, ground_truth=ground_truth)
                new_objects: list[dict[str, Any]] = []
            else:
                new_objects = pairs
            decisions = self._ask_crowd(
                crowddata,
                new_objects=new_objects,
                presenter=_ComparisonPresenter(),
                ground_truth=ground_truth,
            )
            # Map decisions for this round's pairs back by matching objects.
            objects = crowddata.column("object")
            decisions_by_pair = {
                (obj["left"], obj["right"]): decisions[index]
                for index, obj in enumerate(objects)
            }
            next_round: list[Any] = []
            for pair in pairs:
                decision = decisions_by_pair[(pair["left"], pair["right"])]
                next_round.append(pair["left"] if decision == "A" else pair["right"])
            next_round.extend(bye)
            report.crowd_tasks += len(pairs)
            report.crowd_answers += len(pairs) * self.n_assignments
            report.rounds += 1
            survivors = next_round
            result.rounds.append(list(survivors))

        result.winner = survivors[0]
        result.crowddata = crowddata
        result.report = report
        return result
