"""CrowdER-style crowdsourced join (Wang et al. 2012).

The hybrid human-machine workflow:

1. Machine pass: a :class:`repro.operators.blocking.SimilarityBlocker`
   computes a cheap similarity for every record pair and keeps only the
   pairs above a threshold (the overwhelming majority of pairs are obvious
   non-matches and never reach the crowd).
2. Crowd pass: each surviving candidate pair is published as a comparison
   task through CrowdData; redundant answers are aggregated (majority vote
   by default) into a match / non-match decision.

Because the crowd pass goes through CrowdData, the join is sharable and
examinable for free — re-running the join against the same database file
re-publishes nothing, and every pair decision carries full lineage.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Mapping

from repro.core.crowddata import CrowdData
from repro.operators.base import CrowdOperator, OperatorReport
from repro.operators.blocking import BlockingResult, SimilarityBlocker
from repro.presenters.record_cmp import RecordComparisonPresenter
from repro.utils.validation import require_non_empty

#: Ground truth for a join: callable mapping a pair object to "Yes"/"No".
PairGroundTruth = Callable[[dict[str, Any]], Any]


@dataclass
class JoinResult:
    """Output of a crowdsourced join.

    Attributes:
        matches: Unordered id pairs the crowd judged to be matches.
        decisions: Every judged pair -> "Yes"/"No".
        report: Cost accounting.
        crowddata: The CrowdData table used (for lineage / examination).
    """

    matches: set[tuple[int, int]] = field(default_factory=set)
    decisions: dict[tuple[int, int], Any] = field(default_factory=dict)
    report: OperatorReport | None = None
    crowddata: CrowdData | None = None

    def precision_recall_f1(
        self, true_matches: set[tuple[int, int]]
    ) -> tuple[float, float, float]:
        """Return (precision, recall, F1) against *true_matches*."""
        predicted = {_ordered(*pair) for pair in self.matches}
        truth = {_ordered(*pair) for pair in true_matches}
        if not predicted:
            precision = 1.0 if not truth else 0.0
        else:
            precision = len(predicted & truth) / len(predicted)
        recall = 1.0 if not truth else len(predicted & truth) / len(truth)
        if precision + recall == 0:
            return precision, recall, 0.0
        return precision, recall, 2 * precision * recall / (precision + recall)


def _ordered(left_id: int, right_id: int) -> tuple[int, int]:
    return (left_id, right_id) if left_id <= right_id else (right_id, left_id)


def make_pair_object(
    left_id: int,
    right_id: int,
    left_record: Mapping[str, Any],
    right_record: Mapping[str, Any],
) -> dict[str, Any]:
    """Build the CrowdData object published for one candidate pair."""
    return {
        "left_id": left_id,
        "right_id": right_id,
        "left": dict(left_record),
        "right": dict(right_record),
    }


class CrowdJoin(CrowdOperator):
    """Blocking + crowd verification join over one record collection.

    Args:
        context: CrowdContext supplying platform, cache and workers.
        table_name: CrowdData table name for the published pair tasks.
        blocker: Machine-side blocker; a default Jaccard blocker with
            threshold 0.3 when omitted.
        n_assignments: Redundancy per pair task.
        aggregation: Quality-control method ("mv", "wmv", "em", "glad").
        match_answer: The candidate answer that means "these records match".
    """

    name = "crowd_join"

    def __init__(
        self,
        context,
        table_name: str,
        blocker: SimilarityBlocker | None = None,
        n_assignments: int = 3,
        aggregation: str = "mv",
        match_answer: Any = "Yes",
    ):
        super().__init__(context, table_name, n_assignments=n_assignments, aggregation=aggregation)
        self.blocker = blocker or SimilarityBlocker(threshold=0.3)
        self.match_answer = match_answer

    def join(
        self,
        records: Mapping[int, Mapping[str, Any]],
        ground_truth: PairGroundTruth | None = None,
    ) -> JoinResult:
        """Run the join over *records* (self-join / dedup-style).

        Args:
            records: record id -> record dict.
            ground_truth: Optional pair-object -> true-answer oracle for the
                simulated crowd (benchmarks pass the dataset's oracle).
        """
        require_non_empty("records", records)
        blocking = self.blocker.block(records)
        return self._verify(records, blocking, ground_truth)

    def join_two_sided(
        self,
        left_records: Mapping[int, Mapping[str, Any]],
        right_records: Mapping[int, Mapping[str, Any]],
        ground_truth: PairGroundTruth | None = None,
    ) -> JoinResult:
        """Run the join between two record collections (R x S)."""
        require_non_empty("left_records", left_records)
        require_non_empty("right_records", right_records)
        blocking = self.blocker.block_two_sided(left_records, right_records)
        combined: dict[int, Mapping[str, Any]] = {}
        combined.update(left_records)
        combined.update(right_records)
        return self._verify(combined, blocking, ground_truth, two_sided=True)

    # -- internals --------------------------------------------------------------------

    def _verify(
        self,
        records: Mapping[int, Mapping[str, Any]],
        blocking: BlockingResult,
        ground_truth: PairGroundTruth | None,
        two_sided: bool = False,
    ) -> JoinResult:
        """Publish candidate pairs to the crowd and aggregate their answers."""
        pair_objects = [
            make_pair_object(left_id, right_id, records[left_id], records[right_id])
            for left_id, right_id, _ in blocking.candidate_pairs
        ]
        result = JoinResult()
        report = OperatorReport(
            operator=self.name,
            table_name=self.table_name,
            total_candidates=blocking.total_pairs,
            machine_comparisons=blocking.comparisons,
            pruned_by_machine=blocking.pruned(),
        )
        if pair_objects:
            crowddata = self.context.CrowdData(
                pair_objects, self.table_name, ground_truth=ground_truth
            )
            decisions = self._ask_crowd(
                crowddata,
                new_objects=[],
                presenter=RecordComparisonPresenter(),
                ground_truth=ground_truth,
            )
            for index, obj in enumerate(pair_objects):
                pair = _ordered(obj["left_id"], obj["right_id"])
                decision = decisions[index]
                result.decisions[pair] = decision
                if decision == self.match_answer:
                    result.matches.add(pair)
            report.crowd_tasks = len(pair_objects)
            report.crowd_answers = len(pair_objects) * self.n_assignments
            report.rounds = 1
            result.crowddata = crowddata
        report.extras["blocking_threshold"] = self.blocker.threshold
        report.extras["two_sided"] = two_sided
        result.report = report
        return result
