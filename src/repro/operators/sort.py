"""Crowdsourced sort: rank items from pairwise crowd comparisons.

The comparison-based crowdsourced sort publishes "which of these two is
better?" tasks for item pairs and derives a ranking from the aggregated
outcomes using Copeland scoring (an item's score is its number of pairwise
wins), which is robust to a limited number of inconsistent crowd answers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

from repro.core.crowddata import CrowdData
from repro.operators.base import CrowdOperator, OperatorReport
from repro.presenters.text_cmp import TextComparisonPresenter
from repro.utils.validation import require_non_empty


def make_comparison_object(left: Any, right: Any) -> dict[str, Any]:
    """Build the CrowdData object for one "is A or B better?" task."""
    return {"left": left, "right": right}


class _ComparisonPresenter(TextComparisonPresenter):
    """Text-pair presenter whose candidates are the positional answers A/B."""

    task_type = "pair_rank"

    @classmethod
    def default_question(cls) -> str:
        return "Which of the two items is better (A = left, B = right)?"

    @classmethod
    def default_candidates(cls) -> list[Any]:
        return ["A", "B"]


# Register the ranking presenter so cached experiments can rebuild it.
from repro.presenters.base import registry as _registry  # noqa: E402

_registry.register(_ComparisonPresenter)


@dataclass
class SortResult:
    """Output of a crowdsourced sort.

    Attributes:
        ranking: Items from best to worst.
        scores: item -> Copeland score (pairwise wins).
        report: Cost accounting.
        crowddata: The CrowdData table used.
    """

    ranking: list[Any] = field(default_factory=list)
    scores: dict[Any, float] = field(default_factory=dict)
    report: OperatorReport | None = None
    crowddata: CrowdData | None = None

    def kendall_tau(self, true_ranking: Sequence[Any]) -> float:
        """Kendall rank-correlation of this ranking against *true_ranking*.

        1.0 means identical order, -1.0 means reversed.
        """
        position = {item: index for index, item in enumerate(true_ranking)}
        items = [item for item in self.ranking if item in position]
        concordant = discordant = 0
        for i in range(len(items)):
            for j in range(i + 1, len(items)):
                if position[items[i]] < position[items[j]]:
                    concordant += 1
                else:
                    discordant += 1
        total = concordant + discordant
        return (concordant - discordant) / total if total else 1.0


class CrowdSort(CrowdOperator):
    """Full pairwise-comparison sort with Copeland aggregation.

    Args:
        context: CrowdContext supplying platform, cache and workers.
        table_name: CrowdData table used for the comparison tasks.
        n_assignments: Redundancy per comparison.
        aggregation: Quality-control method.
    """

    name = "crowd_sort"

    def sort(
        self,
        items: Sequence[Any],
        ground_truth: Callable[[Any], Any] | None = None,
    ) -> SortResult:
        """Sort *items* best-first using crowd comparisons.

        Args:
            items: The items to rank (strings or JSON-friendly values).
            ground_truth: Optional comparison-object -> "A"/"B" oracle.
        """
        require_non_empty("items", items)
        item_list = list(items)
        comparisons = [
            make_comparison_object(item_list[i], item_list[j])
            for i in range(len(item_list))
            for j in range(i + 1, len(item_list))
        ]
        result = SortResult()
        scores: dict[Any, float] = {item: 0.0 for item in item_list}
        report = OperatorReport(
            operator=self.name,
            table_name=self.table_name,
            total_candidates=len(comparisons),
        )
        if comparisons:
            crowddata = self.context.CrowdData(
                comparisons, self.table_name, ground_truth=ground_truth
            )
            decisions = self._ask_crowd(
                crowddata,
                new_objects=[],
                presenter=_ComparisonPresenter(),
                ground_truth=ground_truth,
            )
            for index, obj in enumerate(crowddata.column("object")):
                winner = obj["left"] if decisions[index] == "A" else obj["right"]
                scores[winner] += 1.0
            report.crowd_tasks = len(comparisons)
            report.crowd_answers = len(comparisons) * self.n_assignments
            report.rounds = 1
            result.crowddata = crowddata
        result.scores = scores
        result.ranking = sorted(item_list, key=lambda item: (-scores[item], str(item)))
        result.report = report
        return result
