"""Baseline join strategies the crowdsourced joins are compared against.

* :class:`AllPairsCrowdJoin` — no machine pruning at all: every record pair
  goes to the crowd.  This is the brute-force upper bound on crowd cost that
  makes CrowdER's blocking savings visible.
* :class:`MachineOnlyJoin` — no crowd at all: pairs above the similarity
  threshold are declared matches.  This is the lower bound on cost (zero
  crowd tasks) and the quality baseline the hybrid approach must beat.
"""

from __future__ import annotations

from typing import Any, Mapping

from repro.operators.blocking import SimilarityBlocker, all_pairs
from repro.operators.base import OperatorReport
from repro.operators.join import CrowdJoin, JoinResult, PairGroundTruth, _ordered
from repro.utils.validation import require_non_empty


class AllPairsCrowdJoin(CrowdJoin):
    """Crowd join with no machine pruning: every pair is a crowd task."""

    name = "all_pairs_crowd_join"

    def join(
        self,
        records: Mapping[int, Mapping[str, Any]],
        ground_truth: PairGroundTruth | None = None,
    ) -> JoinResult:
        require_non_empty("records", records)
        # A threshold of 0 keeps every pair, and the quadratic generator is
        # used on purpose: the point of this baseline is the unpruned cost.
        blocker = SimilarityBlocker(threshold=0.0, use_index=False)
        blocking = blocker.block(records)
        return self._verify(records, blocking, ground_truth)


class MachineOnlyJoin:
    """Similarity-threshold join with zero crowd involvement.

    Args:
        threshold: Pairs with machine similarity >= threshold are matches.
        blocker: Blocker supplying the similarity function (its own threshold
            is overridden by *threshold*).
    """

    name = "machine_only_join"

    def __init__(self, threshold: float = 0.5, blocker: SimilarityBlocker | None = None):
        self.threshold = threshold
        base = blocker or SimilarityBlocker()
        self.blocker = SimilarityBlocker(
            threshold=threshold, similarity=base.similarity, use_index=base.use_index
        )

    def join(self, records: Mapping[int, Mapping[str, Any]]) -> JoinResult:
        """Return the pairs whose machine similarity clears the threshold."""
        require_non_empty("records", records)
        blocking = self.blocker.block(records)
        result = JoinResult()
        for left_id, right_id, _score in blocking.candidate_pairs:
            pair = _ordered(left_id, right_id)
            result.matches.add(pair)
            result.decisions[pair] = "Yes"
        result.report = OperatorReport(
            operator=self.name,
            table_name="(none)",
            crowd_tasks=0,
            crowd_answers=0,
            machine_comparisons=blocking.comparisons,
            total_candidates=blocking.total_pairs,
            pruned_by_machine=blocking.pruned(),
            extras={"threshold": self.threshold},
        )
        return result
