"""Crowdsourced deduplication (entity resolution end-to-end).

Runs a crowdsourced join to obtain pairwise match decisions, then clusters
the records by connected components over the match graph and elects one
canonical record per cluster.  This is the workflow the paper's
entity-resolution example application implements.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

import networkx as nx

from repro.operators.base import OperatorReport
from repro.operators.join import CrowdJoin, JoinResult, PairGroundTruth
from repro.operators.transitive_join import TransitiveCrowdJoin
from repro.utils.validation import require_non_empty


@dataclass
class DedupResult:
    """Output of a crowdsourced deduplication.

    Attributes:
        clusters: Lists of record ids judged to refer to the same entity
            (singletons included), sorted by smallest member id.
        canonical: cluster index -> the elected canonical record id.
        join_result: The underlying pairwise join result.
        report: Cost accounting (copied from the join).
    """

    clusters: list[list[int]] = field(default_factory=list)
    canonical: dict[int, int] = field(default_factory=dict)
    join_result: JoinResult | None = None
    report: OperatorReport | None = None

    def num_entities(self) -> int:
        """Number of distinct entities after deduplication."""
        return len(self.clusters)


class CrowdDedup:
    """Join + clustering deduplication operator.

    Args:
        context: CrowdContext supplying platform, cache and workers.
        table_name: CrowdData table used by the underlying join.
        use_transitivity: Use the transitivity-aware join (cheaper) instead
            of plain CrowdER verification.
        join_kwargs: Extra keyword arguments forwarded to the join operator.
    """

    name = "crowd_dedup"

    def __init__(
        self,
        context,
        table_name: str,
        use_transitivity: bool = True,
        **join_kwargs: Any,
    ):
        join_cls = TransitiveCrowdJoin if use_transitivity else CrowdJoin
        self.join = join_cls(context, table_name, **join_kwargs)
        self.table_name = table_name

    def dedup(
        self,
        records: Mapping[int, Mapping[str, Any]],
        ground_truth: PairGroundTruth | None = None,
    ) -> DedupResult:
        """Deduplicate *records* and return the clustering."""
        require_non_empty("records", records)
        join_result = self.join.join(records, ground_truth=ground_truth)

        graph = nx.Graph()
        graph.add_nodes_from(records.keys())
        graph.add_edges_from(join_result.matches)
        components = [sorted(component) for component in nx.connected_components(graph)]
        components.sort(key=lambda component: component[0])

        result = DedupResult(join_result=join_result, report=join_result.report)
        for index, component in enumerate(components):
            result.clusters.append(component)
            result.canonical[index] = self._elect_canonical(component, records)
        return result

    @staticmethod
    def _elect_canonical(component: list[int], records: Mapping[int, Mapping[str, Any]]) -> int:
        """Pick the cluster's canonical record: the one with the longest name,
        breaking ties by smallest id (longer names tend to be the cleanest,
        least-abbreviated duplicates)."""
        def key(record_id: int) -> tuple[int, int]:
            name = str(records[record_id].get("name", ""))
            return (-len(name), record_id)

        return min(component, key=key)
