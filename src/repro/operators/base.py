"""Shared plumbing for crowdsourced operators."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.core.context import CrowdContext
from repro.exceptions import OperatorError


@dataclass
class OperatorReport:
    """Cost accounting every operator returns alongside its answer.

    The evaluation of crowdsourced operators is dominated by *how many crowd
    tasks they publish* (monetary cost) relative to the work a machine-only
    or brute-force approach would need — these counters are what the join and
    operator benchmarks print.

    Attributes:
        operator: Operator name.
        table_name: CrowdData table the operator used.
        crowd_tasks: Number of tasks actually published to the crowd.
        crowd_answers: Number of individual answers collected.
        machine_comparisons: Number of machine-side similarity evaluations.
        total_candidates: Size of the space before any pruning (e.g. all
            record pairs).
        pruned_by_machine: Candidates eliminated by machine-side pruning
            (blocking) before reaching the crowd.
        inferred: Candidates decided without the crowd by inference
            (transitivity), not by pruning.
        rounds: Number of publish/collect rounds the operator ran.
        extras: Operator-specific numbers (e.g. estimated selectivity).
    """

    operator: str
    table_name: str
    crowd_tasks: int = 0
    crowd_answers: int = 0
    machine_comparisons: int = 0
    total_candidates: int = 0
    pruned_by_machine: int = 0
    inferred: int = 0
    rounds: int = 0
    extras: dict[str, Any] = field(default_factory=dict)

    def crowd_cost_per_candidate(self) -> float:
        """Crowd tasks per original candidate (0 when there were none)."""
        if self.total_candidates == 0:
            return 0.0
        return self.crowd_tasks / self.total_candidates

    def savings_fraction(self) -> float:
        """Fraction of the candidate space that never reached the crowd."""
        if self.total_candidates == 0:
            return 0.0
        return 1.0 - self.crowd_tasks / self.total_candidates

    def to_dict(self) -> dict[str, Any]:
        """Return a JSON-friendly representation (used by benchmark output)."""
        return {
            "operator": self.operator,
            "table": self.table_name,
            "crowd_tasks": self.crowd_tasks,
            "crowd_answers": self.crowd_answers,
            "machine_comparisons": self.machine_comparisons,
            "total_candidates": self.total_candidates,
            "pruned_by_machine": self.pruned_by_machine,
            "inferred": self.inferred,
            "rounds": self.rounds,
            "savings_fraction": round(self.savings_fraction(), 4),
            **self.extras,
        }


class CrowdOperator:
    """Base class providing the CrowdData-backed publish/collect loop."""

    #: Operator name recorded in reports, overridden by subclasses.
    name = "operator"

    def __init__(self, context: CrowdContext, table_name: str, n_assignments: int = 3,
                 aggregation: str = "mv"):
        """Create an operator bound to *context*.

        Args:
            context: The CrowdContext supplying platform, cache and workers.
            table_name: Name of the CrowdData table the operator will use.
            n_assignments: Redundancy per published task.
            aggregation: Quality-control method applied to collected answers.
        """
        if n_assignments < 1:
            raise OperatorError(f"n_assignments must be >= 1, got {n_assignments}")
        self.context = context
        self.table_name = table_name
        self.n_assignments = n_assignments
        self.aggregation = aggregation

    def _ask_crowd(
        self,
        crowddata,
        new_objects: list[Any],
        presenter,
        ground_truth,
    ) -> dict[int, Any]:
        """Publish *new_objects*, collect answers, aggregate, return decisions.

        Returns a mapping from row index (in the CrowdData table) to the
        aggregated decision, covering every row currently in the table.
        """
        if crowddata is None:
            raise OperatorError("operator must create its CrowdData before asking the crowd")
        if new_objects:
            crowddata.extend(new_objects)
        crowddata.set_presenter(presenter)
        crowddata.publish_task(n_assignments=self.n_assignments)
        crowddata.get_result()
        crowddata.quality_control(self.aggregation, column="decision")
        decisions = crowddata.column("decision")
        return dict(enumerate(decisions))
