"""Utility helpers shared by every repro sub-system."""

from repro.utils.hashing import stable_hash, stable_json
from repro.utils.text import (
    cosine_similarity,
    edit_distance,
    edit_similarity,
    jaccard_similarity,
    ngrams,
    normalize_text,
    overlap_coefficient,
    token_vector,
    tokenize,
)
from repro.utils.timing import Stopwatch, SimulatedClock
from repro.utils.validation import (
    require_fraction,
    require_in,
    require_non_empty,
    require_positive,
    require_type,
)

__all__ = [
    "stable_hash",
    "stable_json",
    "cosine_similarity",
    "edit_distance",
    "edit_similarity",
    "jaccard_similarity",
    "ngrams",
    "normalize_text",
    "overlap_coefficient",
    "token_vector",
    "tokenize",
    "Stopwatch",
    "SimulatedClock",
    "require_fraction",
    "require_in",
    "require_non_empty",
    "require_positive",
    "require_type",
]
