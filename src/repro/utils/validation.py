"""Small argument-validation helpers used across the public API.

Each helper raises ``ValueError``/``TypeError`` with a message naming the
offending argument, so API misuse fails loudly and close to the call site.
"""

from __future__ import annotations

from typing import Any, Collection, Iterable, Sized


def require_positive(name: str, value: float, allow_zero: bool = False) -> float:
    """Ensure *value* is positive (or non-negative when *allow_zero*)."""
    if allow_zero:
        if value < 0:
            raise ValueError(f"{name} must be >= 0, got {value}")
    elif value <= 0:
        raise ValueError(f"{name} must be > 0, got {value}")
    return value


def require_fraction(name: str, value: float) -> float:
    """Ensure *value* lies in the closed interval [0, 1]."""
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {value}")
    return value


def require_non_empty(name: str, value: Sized) -> Sized:
    """Ensure the sized collection *value* is not empty."""
    if len(value) == 0:
        raise ValueError(f"{name} must not be empty")
    return value


def require_in(name: str, value: Any, allowed: Collection[Any]) -> Any:
    """Ensure *value* is one of *allowed*."""
    if value not in allowed:
        raise ValueError(f"{name} must be one of {sorted(map(str, allowed))}, got {value!r}")
    return value


def require_type(name: str, value: Any, types: type | tuple[type, ...]) -> Any:
    """Ensure *value* is an instance of *types*."""
    if not isinstance(value, types):
        type_names = (
            types.__name__
            if isinstance(types, type)
            else " or ".join(t.__name__ for t in types)
        )
        raise TypeError(f"{name} must be {type_names}, got {type(value).__name__}")
    return value


def require_unique(name: str, values: Iterable[Any]) -> list[Any]:
    """Ensure *values* contains no duplicates and return them as a list."""
    seen: set[Any] = set()
    result: list[Any] = []
    for value in values:
        if value in seen:
            raise ValueError(f"{name} contains duplicate value {value!r}")
        seen.add(value)
        result.append(value)
    return result
