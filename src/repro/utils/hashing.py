"""Stable hashing used for cache keys and content addressing.

Reprowd's fault-recovery cache keys every published task by the content of
the object it was built from, so that re-running the same program maps every
row to the same cached task and result regardless of process restarts.
Python's built-in ``hash`` is randomised per process, so we use SHA-1 over a
canonical JSON encoding instead.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any


def stable_json(value: Any) -> str:
    """Return a canonical JSON encoding of *value*.

    Dict keys are sorted, tuples become lists and non-JSON scalars fall back
    to ``repr`` so that any picklable Python object gets a deterministic
    encoding.
    """
    return json.dumps(value, sort_keys=True, default=repr, separators=(",", ":"))


def stable_hash(value: Any, length: int = 16) -> str:
    """Return a deterministic hex digest of *value*.

    Args:
        value: Any JSON-encodable (or repr-able) Python value.
        length: Number of hex characters to keep (the full SHA-1 is 40).
    """
    digest = hashlib.sha1(stable_json(value).encode("utf-8")).hexdigest()
    return digest[:length]
