"""Timing helpers: a wall-clock stopwatch and a simulated clock.

The simulated clock lets the platform and worker-latency models advance time
deterministically, which keeps experiments reproducible — an answer's
lineage timestamp must not depend on how fast the host machine is.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field


class Stopwatch:
    """Context manager measuring wall-clock time in seconds.

    >>> with Stopwatch() as sw:
    ...     _ = sum(range(10))
    >>> sw.elapsed >= 0.0
    True
    """

    def __init__(self) -> None:
        self._start: float | None = None
        self.elapsed: float = 0.0

    def __enter__(self) -> "Stopwatch":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        if self._start is not None:
            self.elapsed = time.perf_counter() - self._start


@dataclass
class SimulatedClock:
    """A deterministic logical clock measured in seconds.

    Attributes:
        now: Current simulated time.
    """

    now: float = 0.0
    _history: list[float] = field(default_factory=list, repr=False)

    def advance(self, seconds: float) -> float:
        """Advance the clock by *seconds* and return the new time."""
        if seconds < 0:
            raise ValueError(f"cannot advance clock by a negative amount: {seconds}")
        self.now += seconds
        self._history.append(self.now)
        return self.now

    def tick(self) -> float:
        """Advance the clock by one second."""
        return self.advance(1.0)

    def reset(self) -> None:
        """Reset the clock to time zero and clear its history."""
        self.now = 0.0
        self._history.clear()

    @property
    def history(self) -> list[float]:
        """Times recorded at each advance, oldest first."""
        return list(self._history)
