"""Text normalisation and similarity measures.

These functions are the machine-side half of crowdsourced entity resolution:
CrowdER (Wang et al. 2012) prunes the candidate-pair space with a cheap
similarity measure before asking the crowd to verify the surviving pairs.
"""

from __future__ import annotations

import math
import re
from collections import Counter
from typing import Iterable, Sequence

_TOKEN_RE = re.compile(r"[a-z0-9]+")
_WHITESPACE_RE = re.compile(r"\s+")


def normalize_text(text: str) -> str:
    """Lower-case *text* and collapse runs of whitespace.

    >>> normalize_text("  Apple   iPhone 6 ")
    'apple iphone 6'
    """
    return _WHITESPACE_RE.sub(" ", text.strip().lower())


def tokenize(text: str) -> list[str]:
    """Split *text* into lower-case alphanumeric tokens.

    >>> tokenize("Apple iPhone-6, 16GB!")
    ['apple', 'iphone', '6', '16gb']
    """
    return _TOKEN_RE.findall(text.lower())


def ngrams(text: str, n: int = 3) -> list[str]:
    """Return the character n-grams of the normalised *text*.

    Shorter strings yield the whole string as a single gram so that very
    short values still compare non-trivially.
    """
    if n <= 0:
        raise ValueError(f"n must be positive, got {n}")
    normalized = normalize_text(text)
    if len(normalized) <= n:
        return [normalized] if normalized else []
    return [normalized[i : i + n] for i in range(len(normalized) - n + 1)]


def jaccard_similarity(left: str | Iterable[str], right: str | Iterable[str]) -> float:
    """Jaccard similarity of the token sets of two strings (or token iterables).

    Returns a value in [0, 1]; two empty inputs are defined as similarity 1.
    """
    left_tokens = set(tokenize(left) if isinstance(left, str) else left)
    right_tokens = set(tokenize(right) if isinstance(right, str) else right)
    if not left_tokens and not right_tokens:
        return 1.0
    if not left_tokens or not right_tokens:
        return 0.0
    intersection = len(left_tokens & right_tokens)
    union = len(left_tokens | right_tokens)
    return intersection / union


def overlap_coefficient(left: str | Iterable[str], right: str | Iterable[str]) -> float:
    """Szymkiewicz-Simpson overlap coefficient of two token sets."""
    left_tokens = set(tokenize(left) if isinstance(left, str) else left)
    right_tokens = set(tokenize(right) if isinstance(right, str) else right)
    if not left_tokens and not right_tokens:
        return 1.0
    if not left_tokens or not right_tokens:
        return 0.0
    intersection = len(left_tokens & right_tokens)
    return intersection / min(len(left_tokens), len(right_tokens))


def token_vector(text: str) -> Counter:
    """Return the token-frequency vector of *text*."""
    return Counter(tokenize(text))


def cosine_similarity(left: str | Counter, right: str | Counter) -> float:
    """Cosine similarity between token-frequency vectors.

    Accepts raw strings (tokenised internally) or pre-computed Counters.
    """
    left_vec = token_vector(left) if isinstance(left, str) else left
    right_vec = token_vector(right) if isinstance(right, str) else right
    if not left_vec and not right_vec:
        return 1.0
    if not left_vec or not right_vec:
        return 0.0
    dot = sum(count * right_vec.get(token, 0) for token, count in left_vec.items())
    left_norm = math.sqrt(sum(count * count for count in left_vec.values()))
    right_norm = math.sqrt(sum(count * count for count in right_vec.values()))
    if left_norm == 0.0 or right_norm == 0.0:
        return 0.0
    return dot / (left_norm * right_norm)


def edit_distance(left: str, right: str) -> int:
    """Levenshtein distance between two strings (iterative two-row DP)."""
    if left == right:
        return 0
    if not left:
        return len(right)
    if not right:
        return len(left)
    if len(left) < len(right):
        left, right = right, left
    previous = list(range(len(right) + 1))
    for i, left_char in enumerate(left, start=1):
        current = [i]
        for j, right_char in enumerate(right, start=1):
            insert_cost = current[j - 1] + 1
            delete_cost = previous[j] + 1
            replace_cost = previous[j - 1] + (left_char != right_char)
            current.append(min(insert_cost, delete_cost, replace_cost))
        previous = current
    return previous[-1]


def edit_similarity(left: str, right: str) -> float:
    """Normalised edit similarity: 1 - distance / max(len).

    Two empty strings have similarity 1.
    """
    if not left and not right:
        return 1.0
    distance = edit_distance(left, right)
    return 1.0 - distance / max(len(left), len(right))


def record_text(record: Sequence | dict, fields: Sequence[str] | None = None) -> str:
    """Flatten a record (dict or sequence) into one normalised string.

    Args:
        record: The record whose textual content should be flattened.
        fields: For dict records, the subset of keys to include (all keys in
            sorted order when omitted).
    """
    if isinstance(record, dict):
        keys = list(fields) if fields is not None else sorted(record)
        parts = [str(record[key]) for key in keys if key in record]
    else:
        parts = [str(value) for value in record]
    return normalize_text(" ".join(parts))
