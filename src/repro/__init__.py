"""repro — a full reproduction of Reprowd (crowdsourced data processing made reproducible).

The public API mirrors Figure 1 of the paper:

* :class:`repro.CrowdContext` — the entry point encapsulating every component.
* :class:`repro.CrowdData` — the tabular experiment abstraction.
* ``repro.presenters`` — task user interfaces (image label, pair comparison...).
* ``repro.quality`` — answer aggregation (majority vote, weighted vote, EM).
* ``repro.operators`` — crowdsourced operators (CrowdER join, transitive join,
  sort, max, top-k, count, filter, dedup) built on CrowdData.
* ``repro.platform`` / ``repro.workers`` — the simulated crowdsourcing platform
  and worker pool that stand in for PyBossa and human workers.
* ``repro.storage`` — the durable cache that makes experiments sharable.

Quickstart (Bob's experiment from Figure 2)::

    from repro import CrowdContext
    from repro.presenters import ImageLabelPresenter

    cc = CrowdContext.with_sqlite("reprowd.db")
    images = ["http://img/1.jpg", "http://img/2.jpg", "http://img/3.jpg"]
    data = (cc.CrowdData(images, table_name="image_label")
              .set_presenter(ImageLabelPresenter(question="Is there a face?"))
              .publish_task(n_assignments=3)
              .get_result()
              .mv())
    print(data.column("mv"))
"""

from repro.config import PlatformConfig, ReprowdConfig, StorageConfig, WorkerPoolConfig
from repro.core.budget import BudgetExceededError, BudgetTracker
from repro.core.context import CrowdContext
from repro.core.crowddata import CrowdData
from repro.core.export import ExperimentExporter
from repro.core.session import ExperimentSession
from repro.exceptions import ReprowdError
from repro.quality.adaptive import AdaptivePolicy

__version__ = "1.0.0"

__all__ = [
    "CrowdContext",
    "CrowdData",
    "ExperimentSession",
    "ExperimentExporter",
    "BudgetTracker",
    "BudgetExceededError",
    "AdaptivePolicy",
    "ReprowdConfig",
    "StorageConfig",
    "PlatformConfig",
    "WorkerPoolConfig",
    "ReprowdError",
    "__version__",
]
