"""Synthetic dataset generators.

The paper's example applications (image labeling, entity resolution) need
input data and ground truth.  Real crowdsourcing benchmarks use proprietary
product feeds and human labels; these generators produce synthetic datasets
with the same structure — duplicate clusters with controllable dirtiness,
labeled images, comparison sets with a known total order — so that every
experiment has exact ground truth to evaluate against.
"""

from repro.datasets.generators import (
    EntityResolutionDataset,
    ImageLabelDataset,
    RankingDataset,
    make_entity_resolution_dataset,
    make_image_label_dataset,
    make_ranking_dataset,
)
from repro.datasets.products import PRODUCT_BRANDS, PRODUCT_CATEGORIES, make_product_name

__all__ = [
    "EntityResolutionDataset",
    "ImageLabelDataset",
    "RankingDataset",
    "make_entity_resolution_dataset",
    "make_image_label_dataset",
    "make_ranking_dataset",
    "PRODUCT_BRANDS",
    "PRODUCT_CATEGORIES",
    "make_product_name",
]
