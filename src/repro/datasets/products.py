"""Vocabulary and helpers for synthetic product records.

The entity-resolution literature (including CrowdER) evaluates on product
catalogs; this module provides the vocabulary used to synthesise product
names whose duplicates differ by realistic perturbations (dropped tokens,
abbreviations, reordered words, typos).
"""

from __future__ import annotations

import random

PRODUCT_BRANDS = [
    "apple", "samsung", "sony", "lenovo", "dell", "hp", "asus", "acer",
    "canon", "nikon", "panasonic", "lg", "toshiba", "philips", "bose",
    "logitech", "garmin", "seagate", "sandisk", "kingston",
]

PRODUCT_CATEGORIES = [
    "laptop", "smartphone", "tablet", "camera", "monitor", "printer",
    "keyboard", "mouse", "headphones", "speaker", "router", "charger",
    "hard drive", "memory card", "smartwatch", "projector",
]

PRODUCT_MODIFIERS = [
    "pro", "max", "mini", "plus", "ultra", "lite", "air", "neo",
    "classic", "premium", "compact", "wireless", "portable",
]

_ABBREVIATIONS = {
    "professional": "pro",
    "wireless": "wl",
    "portable": "port",
    "premium": "prem",
    "compact": "cmp",
}


def make_product_name(rng: random.Random) -> str:
    """Generate one clean product name from the vocabulary."""
    brand = rng.choice(PRODUCT_BRANDS)
    category = rng.choice(PRODUCT_CATEGORIES)
    modifier = rng.choice(PRODUCT_MODIFIERS)
    model_number = rng.randint(100, 9999)
    return f"{brand} {category} {modifier} {model_number}"


def perturb_product_name(name: str, rng: random.Random, dirtiness: float = 0.3) -> str:
    """Produce a dirty duplicate of *name*.

    Applies, each with probability *dirtiness*: token drop, token swap,
    abbreviation, a character typo, and case change.  The result still refers
    to the same entity but no longer matches exactly — which is precisely the
    gap crowdsourced entity resolution exists to close.
    """
    tokens = name.split()
    if len(tokens) > 2 and rng.random() < dirtiness:
        tokens.pop(rng.randrange(len(tokens) - 1))
    if len(tokens) > 1 and rng.random() < dirtiness:
        i = rng.randrange(len(tokens) - 1)
        tokens[i], tokens[i + 1] = tokens[i + 1], tokens[i]
    tokens = [_ABBREVIATIONS.get(token, token) if rng.random() < dirtiness else token for token in tokens]
    result = " ".join(tokens)
    if result and rng.random() < dirtiness:
        position = rng.randrange(len(result))
        replacement = rng.choice("abcdefghijklmnopqrstuvwxyz")
        result = result[:position] + replacement + result[position + 1 :]
    if rng.random() < dirtiness:
        result = result.upper() if rng.random() < 0.5 else result.title()
    return result
