"""Dataset generators with exact ground truth.

Three workload families cover the experiments in EXPERIMENTS.md:

* :func:`make_image_label_dataset` — Bob's image-labeling experiment at any
  scale (E1/E2/E3/E6/E7/E8).
* :func:`make_entity_resolution_dataset` — records grouped into duplicate
  clusters, for the crowdsourced-join experiments (E4/E5).
* :func:`make_ranking_dataset` — items with a hidden total order, for the
  sort/max/top-k operators (E9).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any

from repro.datasets.products import make_product_name, perturb_product_name
from repro.utils.validation import require_fraction, require_positive


@dataclass
class ImageLabelDataset:
    """Labeled image URLs.

    Attributes:
        images: Image URLs (the CrowdData objects).
        labels: Ground-truth label per image URL.
        candidates: The label vocabulary.
    """

    images: list[str] = field(default_factory=list)
    labels: dict[str, str] = field(default_factory=dict)
    candidates: list[str] = field(default_factory=lambda: ["Yes", "No"])

    def ground_truth(self, obj: Any) -> str | None:
        """Oracle form: map an image URL to its true label."""
        return self.labels.get(obj)

    def __len__(self) -> int:
        return len(self.images)


@dataclass
class EntityResolutionDataset:
    """Records partitioned into duplicate clusters.

    Attributes:
        records: record id -> record dict (``name`` plus extra attributes).
        clusters: list of clusters, each a list of record ids referring to
            the same real-world entity.
        matching_pairs: the set of unordered id pairs that are true matches.
    """

    records: dict[int, dict[str, Any]] = field(default_factory=dict)
    clusters: list[list[int]] = field(default_factory=list)
    matching_pairs: set[tuple[int, int]] = field(default_factory=set)

    def is_match(self, left_id: int, right_id: int) -> bool:
        """Return True when the two record ids refer to the same entity."""
        return _ordered(left_id, right_id) in self.matching_pairs

    def record_ids(self) -> list[int]:
        """Return every record id, sorted."""
        return sorted(self.records)

    def pair_ground_truth(self, obj: Any) -> str | None:
        """Oracle form for pair-comparison tasks published by joins.

        The join operators publish objects shaped like
        ``{"left_id": ..., "right_id": ..., "left": ..., "right": ...}``.
        """
        if isinstance(obj, dict) and "left_id" in obj and "right_id" in obj:
            return "Yes" if self.is_match(obj["left_id"], obj["right_id"]) else "No"
        return None

    def __len__(self) -> int:
        return len(self.records)


@dataclass
class RankingDataset:
    """Items with a hidden strict total order (higher score = better).

    Attributes:
        items: item name -> hidden score.
    """

    items: dict[str, float] = field(default_factory=dict)

    def better(self, left: str, right: str) -> str:
        """Return whichever of the two items has the higher hidden score."""
        return left if self.items[left] >= self.items[right] else right

    def ranking(self) -> list[str]:
        """Return items from best to worst."""
        return sorted(self.items, key=lambda item: -self.items[item])

    def pair_ground_truth(self, obj: Any) -> str | None:
        """Oracle form for comparison tasks: answers "A" or "B"."""
        if isinstance(obj, dict) and "left" in obj and "right" in obj:
            return "A" if self.better(obj["left"], obj["right"]) == obj["left"] else "B"
        return None

    def __len__(self) -> int:
        return len(self.items)


def _ordered(left_id: int, right_id: int) -> tuple[int, int]:
    return (left_id, right_id) if left_id <= right_id else (right_id, left_id)


def make_image_label_dataset(
    num_images: int = 100,
    positive_fraction: float = 0.5,
    candidates: list[str] | None = None,
    seed: int = 7,
) -> ImageLabelDataset:
    """Generate a labeled image dataset.

    Args:
        num_images: Number of image URLs to generate.
        positive_fraction: Fraction labeled with the first candidate.
        candidates: Label vocabulary; defaults to ["Yes", "No"].
        seed: RNG seed.
    """
    require_positive("num_images", num_images)
    require_fraction("positive_fraction", positive_fraction)
    labels_vocab = candidates or ["Yes", "No"]
    rng = random.Random(seed)
    images = [f"http://img.example.org/{seed}/{index:06d}.jpg" for index in range(num_images)]
    labels: dict[str, str] = {}
    for image in images:
        if len(labels_vocab) == 2:
            label = labels_vocab[0] if rng.random() < positive_fraction else labels_vocab[1]
        else:
            label = rng.choice(labels_vocab)
        labels[image] = label
    return ImageLabelDataset(images=images, labels=labels, candidates=list(labels_vocab))


def make_entity_resolution_dataset(
    num_entities: int = 50,
    duplicates_per_entity: int = 3,
    dirtiness: float = 0.3,
    extra_attributes: bool = True,
    seed: int = 7,
) -> EntityResolutionDataset:
    """Generate records grouped into duplicate clusters.

    Args:
        num_entities: Number of distinct real-world entities.
        duplicates_per_entity: Records per entity (cluster size).  The
            transitive-join experiment sweeps this: larger clusters mean more
            pairs deducible by transitivity.
        dirtiness: Probability of each perturbation applied to duplicates.
        extra_attributes: Attach brand/price attributes to each record.
        seed: RNG seed.
    """
    require_positive("num_entities", num_entities)
    require_positive("duplicates_per_entity", duplicates_per_entity)
    require_fraction("dirtiness", dirtiness)
    rng = random.Random(seed)
    dataset = EntityResolutionDataset()
    record_id = 0
    for _ in range(num_entities):
        canonical = make_product_name(rng)
        base_price = round(rng.uniform(20.0, 2500.0), 2)
        cluster: list[int] = []
        for duplicate_index in range(duplicates_per_entity):
            if duplicate_index == 0:
                name = canonical
            else:
                name = perturb_product_name(canonical, rng, dirtiness=dirtiness)
            record: dict[str, Any] = {"id": record_id, "name": name}
            if extra_attributes:
                record["brand"] = canonical.split()[0]
                record["price"] = round(base_price * rng.uniform(0.9, 1.1), 2)
            dataset.records[record_id] = record
            cluster.append(record_id)
            record_id += 1
        dataset.clusters.append(cluster)
        for i in range(len(cluster)):
            for j in range(i + 1, len(cluster)):
                dataset.matching_pairs.add(_ordered(cluster[i], cluster[j]))
    return dataset


def make_ranking_dataset(num_items: int = 20, seed: int = 7) -> RankingDataset:
    """Generate items with a hidden strict total order."""
    require_positive("num_items", num_items)
    rng = random.Random(seed)
    scores = rng.sample(range(num_items * 10), num_items)
    items = {f"item-{index:03d}": float(score) for index, score in enumerate(scores)}
    return RankingDataset(items=items)
