"""Crash injection for the fault-recovery experiments (E3).

The paper's sharable guarantee is crash-and-rerun: "when the program is
crashed, rerunning the program is as if it has never crashed".  To test it we
need to crash the experiment at arbitrary points.  Two mechanisms are
provided:

* :class:`CrashingEngine` wraps a storage engine and raises
  :class:`repro.exceptions.CrashInjected` after a configurable number of
  writes — crashing the program in the middle of persisting crowd data.
* :func:`run_with_crashes` runs an experiment function repeatedly, injecting
  one crash per run at successively later points, and finally runs it with no
  crash; it returns all the intermediate states so tests can assert that the
  final result is identical to an uninterrupted run and that no crowd task
  was ever published twice.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Iterator, Sequence

from repro.exceptions import CrashInjected
from repro.storage.engine import StorageEngine
from repro.storage.records import Record


@dataclass
class CrashPlan:
    """When to crash: after the Nth write to the storage engine.

    Attributes:
        crash_after_writes: The write count at which to raise; None disables
            crashing.
        fired: Set to True once the crash has been raised.
    """

    crash_after_writes: int | None = None
    fired: bool = False
    writes_seen: int = 0

    def note_write(self) -> None:
        """Record one write, raising :class:`CrashInjected` when it is time."""
        self.writes_seen += 1
        if (
            self.crash_after_writes is not None
            and not self.fired
            and self.writes_seen >= self.crash_after_writes
        ):
            self.fired = True
            raise CrashInjected(
                step=f"write #{self.writes_seen}",
                detail="injected by CrashPlan",
            )


class CrashingEngine(StorageEngine):
    """Storage engine decorator that crashes according to a :class:`CrashPlan`.

    The crash is raised *after* the underlying write has been made durable,
    which models a process dying between a successful database commit and
    whatever it was going to do next — the hardest case for exactly-once
    task publication.
    """

    engine_name = "crashing"

    def __init__(self, inner: StorageEngine, plan: CrashPlan):
        self.inner = inner
        self.plan = plan

    # -- table management (pass-through) ------------------------------------------

    def create_table(self, table_name: str) -> None:
        self.inner.create_table(table_name)

    def drop_table(self, table_name: str) -> None:
        self.inner.drop_table(table_name)

    def list_tables(self) -> list[str]:
        return self.inner.list_tables()

    def has_table(self, table_name: str) -> bool:
        return self.inner.has_table(table_name)

    # -- record access (writes counted) ---------------------------------------------

    def put(self, table_name: str, key: str, value: Any) -> Record:
        record = self.inner.put(table_name, key, value)
        self.plan.note_write()
        return record

    def put_new(self, table_name: str, key: str, value: Any) -> Record:
        record = self.inner.put_new(table_name, key, value)
        self.plan.note_write()
        return record

    def get(self, table_name: str, key: str, default: Any = None) -> Any:
        return self.inner.get(table_name, key, default)

    def get_record(self, table_name: str, key: str) -> Record | None:
        return self.inner.get_record(table_name, key)

    def delete(self, table_name: str, key: str) -> bool:
        deleted = self.inner.delete(table_name, key)
        if deleted:
            self.plan.note_write()
        return deleted

    def contains(self, table_name: str, key: str) -> bool:
        return self.inner.contains(table_name, key)

    def scan(
        self, table_name: str, limit: int | None = None, start_after: str | None = None
    ) -> Iterator[Record]:
        return self.inner.scan(table_name, limit=limit, start_after=start_after)

    def count(self, table_name: str) -> int:
        return self.inner.count(table_name)

    # -- bulk record access (writes counted per item) --------------------------------

    def put_many(
        self,
        table_name: str,
        items: Iterable[tuple[str, Any]],
        if_absent: bool = False,
    ) -> list[Record]:
        """Write the batch one item at a time so a crash can land mid-batch.

        Deliberately *not* delegated to the inner engine's atomic batch
        write: each item becomes durable individually and counts as one
        write, which is the hardest recovery scenario — a prefix of the
        batch survives the crash and the rerun must fill only the gap.
        """
        records: list[Record] = []
        for key, value in items:
            if if_absent:
                existing = self.inner.get_record(table_name, key)
                if existing is not None:
                    records.append(existing)
                    continue
            records.append(self.inner.put(table_name, key, value))
            self.plan.note_write()
        return records

    def get_many(
        self, table_name: str, keys: Sequence[str], default: Any = None
    ) -> list[Any]:
        return self.inner.get_many(table_name, keys, default)

    # -- lifecycle -----------------------------------------------------------------------

    def flush(self) -> None:
        self.inner.flush()

    def close(self) -> None:
        self.inner.close()


@dataclass
class CrashRunReport:
    """Outcome of :func:`run_with_crashes`.

    Attributes:
        crashes: Number of runs that ended in an injected crash.
        completed_result: The return value of the final, uninterrupted run.
        attempts: Total number of runs performed (crashed + final).
        writes_per_attempt: Engine write counts observed per attempt.
    """

    crashes: int = 0
    completed_result: Any = None
    attempts: int = 0
    writes_per_attempt: list[int] = field(default_factory=list)


def run_with_crashes(
    experiment: Callable[[StorageEngine], Any],
    engine: StorageEngine,
    crash_points: list[int],
) -> CrashRunReport:
    """Run *experiment* with a crash injected at each point, then to completion.

    Args:
        experiment: Callable taking a storage engine and running the whole
            experiment against it.  It must be written in the crash-and-rerun
            style (i.e. use CrowdData), because it will be re-invoked from
            the top after every crash.
        engine: The durable engine that survives across crashes (the shared
            database file).
        crash_points: Write counts at which to crash successive attempts.

    Returns:
        A :class:`CrashRunReport`; ``completed_result`` is the value returned
        by the final uninterrupted attempt.
    """
    report = CrashRunReport()
    for crash_after in crash_points:
        plan = CrashPlan(crash_after_writes=crash_after)
        wrapped = CrashingEngine(engine, plan)
        report.attempts += 1
        try:
            experiment(wrapped)
        except CrashInjected:
            report.crashes += 1
        report.writes_per_attempt.append(plan.writes_seen)
    # Final attempt with no crash: this is "rerunning the program".
    plan = CrashPlan(crash_after_writes=None)
    wrapped = CrashingEngine(engine, plan)
    report.attempts += 1
    report.completed_result = experiment(wrapped)
    report.writes_per_attempt.append(plan.writes_seen)
    return report
