"""Experiment harness: metrics, crash injection and parameter sweeps.

These utilities exist for the benchmarks in EXPERIMENTS.md — they are not
part of the CrowdData surface, but they are what turns the library into a
reproducible evaluation: crash injection drives the fault-recovery
experiment, the metrics module scores joins and rankings against ground
truth, and the sweep runner executes parameter grids deterministically.
"""

from repro.simulation.crash import CrashPlan, CrashingEngine, run_with_crashes
from repro.simulation.metrics import (
    accuracy,
    f1_score,
    pair_metrics,
    precision,
    recall,
)
from repro.simulation.experiment import ExperimentRunner, SweepResult

__all__ = [
    "CrashPlan",
    "CrashingEngine",
    "run_with_crashes",
    "accuracy",
    "precision",
    "recall",
    "f1_score",
    "pair_metrics",
    "ExperimentRunner",
    "SweepResult",
]
