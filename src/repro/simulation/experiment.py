"""Deterministic parameter-sweep runner used by the benchmark harness.

Each benchmark in ``benchmarks/`` is a sweep over one or two parameters
(blocking threshold, worker accuracy, redundancy, dataset size...).  The
runner executes every grid point with a fresh seed derived from the point's
position, collects the per-point metrics into rows, and can render the rows
as the aligned text table the benchmark prints — the "same rows/series the
paper reports" artifact.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping, Sequence

#: A sweep point is a mapping of parameter name to value.
SweepPoint = dict[str, Any]
#: An experiment function maps a sweep point to a row of metrics.
PointRunner = Callable[[SweepPoint], Mapping[str, Any]]


@dataclass
class SweepResult:
    """Collected rows of a parameter sweep.

    Attributes:
        name: Sweep name (used as the table caption).
        rows: One metrics mapping per grid point, in execution order.
    """

    name: str
    rows: list[dict[str, Any]] = field(default_factory=list)

    def column(self, key: str) -> list[Any]:
        """Return one metric across all rows."""
        return [row.get(key) for row in self.rows]

    def to_table(self, columns: Sequence[str] | None = None, float_format: str = "{:.3f}") -> str:
        """Render the rows as an aligned plain-text table."""
        if not self.rows:
            return f"{self.name}: (no rows)"
        keys = list(columns) if columns else list(self.rows[0].keys())
        rendered_rows = []
        for row in self.rows:
            rendered = []
            for key in keys:
                value = row.get(key, "")
                if isinstance(value, float):
                    rendered.append(float_format.format(value))
                else:
                    rendered.append(str(value))
            rendered_rows.append(rendered)
        widths = [
            max(len(key), *(len(rendered[i]) for rendered in rendered_rows))
            for i, key in enumerate(keys)
        ]
        header = "  ".join(key.ljust(widths[i]) for i, key in enumerate(keys))
        separator = "  ".join("-" * widths[i] for i in range(len(keys)))
        body = "\n".join(
            "  ".join(rendered[i].ljust(widths[i]) for i in range(len(keys)))
            for rendered in rendered_rows
        )
        return f"== {self.name} ==\n{header}\n{separator}\n{body}"


class ExperimentRunner:
    """Runs an experiment function over a parameter grid.

    Args:
        name: Sweep name used in the rendered table.
        base_seed: Seed combined with the grid position so that every point
            is deterministic but distinct.
    """

    def __init__(self, name: str, base_seed: int = 7):
        self.name = name
        self.base_seed = base_seed

    def grid(self, **parameters: Sequence[Any]) -> list[SweepPoint]:
        """Return the cartesian product of the given parameter value lists."""
        names = list(parameters)
        points = []
        for index, values in enumerate(itertools.product(*(parameters[name] for name in names))):
            point: SweepPoint = dict(zip(names, values))
            point["seed"] = self.base_seed + index
            points.append(point)
        return points

    def run(self, points: Sequence[SweepPoint], runner: PointRunner) -> SweepResult:
        """Execute *runner* on every point and collect the rows."""
        result = SweepResult(name=self.name)
        for point in points:
            row = dict(point)
            row.update(runner(point))
            result.rows.append(row)
        return result

    def sweep(self, runner: PointRunner, **parameters: Sequence[Any]) -> SweepResult:
        """Convenience: build the grid and run it in one call."""
        return self.run(self.grid(**parameters), runner)
