"""Evaluation metrics used by the benchmark harness."""

from __future__ import annotations

from typing import Any, Hashable, Iterable, Mapping

from repro.utils.validation import require_non_empty


def accuracy(predictions: Mapping[Hashable, Any], truth: Mapping[Hashable, Any]) -> float:
    """Fraction of items whose prediction equals the ground truth.

    Only items present in both mappings are scored.
    """
    common = [item for item in predictions if item in truth]
    require_non_empty("overlap between predictions and truth", common)
    correct = sum(1 for item in common if predictions[item] == truth[item])
    return correct / len(common)


def _normalise_pairs(pairs: Iterable[tuple[int, int]]) -> set[tuple[int, int]]:
    return {(a, b) if a <= b else (b, a) for a, b in pairs}


def precision(predicted: Iterable[tuple[int, int]], truth: Iterable[tuple[int, int]]) -> float:
    """Pair precision: |predicted ∩ truth| / |predicted| (1.0 when nothing predicted)."""
    predicted_set = _normalise_pairs(predicted)
    truth_set = _normalise_pairs(truth)
    if not predicted_set:
        return 1.0
    return len(predicted_set & truth_set) / len(predicted_set)


def recall(predicted: Iterable[tuple[int, int]], truth: Iterable[tuple[int, int]]) -> float:
    """Pair recall: |predicted ∩ truth| / |truth| (1.0 when truth is empty)."""
    predicted_set = _normalise_pairs(predicted)
    truth_set = _normalise_pairs(truth)
    if not truth_set:
        return 1.0
    return len(predicted_set & truth_set) / len(truth_set)


def f1_score(predicted: Iterable[tuple[int, int]], truth: Iterable[tuple[int, int]]) -> float:
    """Pair F1: harmonic mean of precision and recall."""
    p = precision(predicted, truth)
    r = recall(predicted, truth)
    if p + r == 0:
        return 0.0
    return 2 * p * r / (p + r)


def pair_metrics(
    predicted: Iterable[tuple[int, int]], truth: Iterable[tuple[int, int]]
) -> dict[str, float]:
    """Return precision, recall and F1 together (one pass each)."""
    return {
        "precision": precision(predicted, truth),
        "recall": recall(predicted, truth),
        "f1": f1_score(predicted, truth),
    }
