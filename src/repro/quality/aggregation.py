"""Shared aggregation interfaces and the aggregator registry.

An aggregation problem is a mapping from item id to the list of
``(worker_id, answer)`` pairs collected for that item.  Aggregators return an
:class:`AggregationResult` holding one decision and one confidence per item,
plus any per-worker quality estimates the method produces — those estimates
feed spammer detection and the lineage/examination API.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Any, Callable, Hashable, Mapping, Sequence

from repro.exceptions import InsufficientAnswersError, QualityControlError

#: One item's crowd answers: list of (worker_id, answer).
Votes = Sequence[tuple[str, Any]]
#: A whole aggregation problem: item id -> votes.
VoteTable = Mapping[Hashable, Votes]


@dataclass
class AggregationResult:
    """Output of an aggregator.

    Attributes:
        decisions: item id -> chosen answer.
        confidences: item id -> posterior probability / vote share of the
            chosen answer, in [0, 1].
        worker_quality: worker id -> estimated accuracy in [0, 1] (empty for
            methods that do not estimate workers, e.g. plain majority vote).
        iterations: Number of EM iterations performed (0 for closed-form
            rules).
        method: Name of the aggregation method that produced the result.
    """

    decisions: dict[Hashable, Any] = field(default_factory=dict)
    confidences: dict[Hashable, float] = field(default_factory=dict)
    worker_quality: dict[str, float] = field(default_factory=dict)
    iterations: int = 0
    method: str = ""

    def decision(self, item_id: Hashable) -> Any:
        """Return the decision for *item_id*."""
        try:
            return self.decisions[item_id]
        except KeyError:
            raise QualityControlError(f"no decision for item {item_id!r}") from None

    def accuracy_against(self, truth: Mapping[Hashable, Any]) -> float:
        """Return the fraction of items whose decision matches *truth*.

        Items missing from either side are ignored; an empty intersection
        raises :class:`QualityControlError`.
        """
        common = [item for item in self.decisions if item in truth]
        if not common:
            raise QualityControlError("no overlapping items between decisions and truth")
        correct = sum(1 for item in common if self.decisions[item] == truth[item])
        return correct / len(common)


class Aggregator(abc.ABC):
    """Interface implemented by every answer-aggregation method."""

    #: Registry name, overridden by subclasses.
    name = "abstract"

    @abc.abstractmethod
    def aggregate(self, votes: VoteTable) -> AggregationResult:
        """Aggregate *votes* into one decision per item."""

    @staticmethod
    def _validate(votes: VoteTable) -> None:
        """Reject empty problems and items without any answers."""
        if not votes:
            raise InsufficientAnswersError("no items to aggregate")
        for item_id, item_votes in votes.items():
            if not item_votes:
                raise InsufficientAnswersError(f"item {item_id!r} has no answers")


_AGGREGATORS: dict[str, Callable[[], Aggregator]] = {}


def register_aggregator(name: str, factory: Callable[[], Aggregator]) -> None:
    """Register an aggregator *factory* under *name* (e.g. ``"mv"``)."""
    _AGGREGATORS[name] = factory


def get_aggregator(name: str, **kwargs: Any) -> Aggregator:
    """Instantiate the aggregator registered under *name*.

    Keyword arguments are forwarded to the aggregator constructor when the
    factory accepts them (factories are classes in practice).
    """
    try:
        factory = _AGGREGATORS[name]
    except KeyError:
        raise QualityControlError(
            f"unknown aggregator {name!r}; known: {sorted(_AGGREGATORS)}"
        ) from None
    return factory(**kwargs) if kwargs else factory()


def known_aggregators() -> list[str]:
    """Return the names of all registered aggregators, sorted."""
    return sorted(_AGGREGATORS)
