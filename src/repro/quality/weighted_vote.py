"""Weighted majority vote.

Each worker's vote is weighted by (an estimate of) their accuracy.  The
standard log-odds weighting is used: a worker with accuracy p contributes
``log(p / (1 - p))`` to their chosen answer, which is the Bayes-optimal
weight for symmetric binary noise and a good heuristic beyond it.
"""

from __future__ import annotations

import math
from collections import defaultdict
from typing import Any, Hashable, Mapping

from repro.quality.aggregation import (
    AggregationResult,
    Aggregator,
    VoteTable,
    register_aggregator,
)

#: Accuracies are clamped into this open interval before the log-odds
#: transform so that perfect (or perfectly bad) workers keep finite weights.
_EPSILON = 1e-3


def _log_odds(accuracy: float) -> float:
    """Return the log-odds weight of a worker with the given accuracy."""
    clamped = min(1.0 - _EPSILON, max(_EPSILON, accuracy))
    return math.log(clamped / (1.0 - clamped))


class WeightedVoteAggregator(Aggregator):
    """Majority vote with per-worker log-odds weights.

    Args:
        worker_accuracy: Mapping from worker id to accuracy in (0, 1).
            Workers missing from the mapping fall back to *default_accuracy*.
        default_accuracy: Accuracy assumed for unknown workers.
    """

    name = "wmv"

    def __init__(
        self,
        worker_accuracy: Mapping[str, float] | None = None,
        default_accuracy: float = 0.7,
    ):
        if not 0.0 < default_accuracy < 1.0:
            raise ValueError(f"default_accuracy must be in (0, 1), got {default_accuracy}")
        self.worker_accuracy = dict(worker_accuracy or {})
        self.default_accuracy = default_accuracy

    def _weight(self, worker_id: str) -> float:
        accuracy = self.worker_accuracy.get(worker_id, self.default_accuracy)
        return _log_odds(accuracy)

    def aggregate(self, votes: VoteTable) -> AggregationResult:
        self._validate(votes)
        result = AggregationResult(method=self.name)
        for item_id, item_votes in votes.items():
            scores: dict[Any, float] = defaultdict(float)
            for worker_id, answer in item_votes:
                scores[answer] += self._weight(worker_id)
            # Deterministic tie-break on the string form of the answer.
            winner = max(scores, key=lambda answer: (scores[answer], str(answer)))
            result.decisions[item_id] = winner
            result.confidences[item_id] = _softmax_share(scores, winner)
        result.worker_quality = {
            worker_id: self.worker_accuracy.get(worker_id, self.default_accuracy)
            for item_votes in votes.values()
            for worker_id, _ in item_votes
        }
        return result


def _softmax_share(scores: Mapping[Any, float], winner: Any) -> float:
    """Convert additive log-odds scores into a winner probability."""
    max_score = max(scores.values())
    exponentials = {answer: math.exp(score - max_score) for answer, score in scores.items()}
    total = sum(exponentials.values())
    return exponentials[winner] / total if total > 0 else 1.0


def weighted_vote(
    votes: VoteTable,
    worker_accuracy: Mapping[str, float] | None = None,
    default_accuracy: float = 0.7,
) -> dict[Hashable, Any]:
    """Convenience wrapper returning only the per-item decisions."""
    aggregator = WeightedVoteAggregator(
        worker_accuracy=worker_accuracy, default_accuracy=default_accuracy
    )
    return aggregator.aggregate(votes).decisions


register_aggregator("wmv", WeightedVoteAggregator)
