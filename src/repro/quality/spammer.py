"""Spammer detection from estimated worker quality.

A spammer answers independently of the true label, so their estimated
accuracy hovers around random-guess level regardless of how many tasks they
answer.  The score used here is how far above random guessing a worker's
estimated accuracy sits, normalised to [0, 1] — 0 means indistinguishable
from (or worse than) random, 1 means perfectly reliable.
"""

from __future__ import annotations

from typing import Mapping

from repro.utils.validation import require_fraction, require_positive


def spammer_score(estimated_accuracy: float, num_labels: int) -> float:
    """Return a reliability score in [0, 1] (0 = spammer-like).

    Args:
        estimated_accuracy: The worker's estimated accuracy (e.g. from EM).
        num_labels: Number of possible labels; random guessing achieves
            ``1 / num_labels``.
    """
    require_fraction("estimated_accuracy", estimated_accuracy)
    require_positive("num_labels", num_labels)
    chance = 1.0 / num_labels
    if estimated_accuracy <= chance:
        return 0.0
    return (estimated_accuracy - chance) / (1.0 - chance)


def detect_spammers(
    worker_quality: Mapping[str, float],
    num_labels: int,
    threshold: float = 0.3,
) -> list[str]:
    """Return the ids of workers whose reliability score is below *threshold*.

    Args:
        worker_quality: worker id -> estimated accuracy (e.g.
            ``AggregationResult.worker_quality``).
        num_labels: Number of possible labels in the task.
        threshold: Reliability-score cutoff; workers strictly below it are
            flagged.
    """
    require_fraction("threshold", threshold)
    flagged = [
        worker_id
        for worker_id, accuracy in worker_quality.items()
        if spammer_score(accuracy, num_labels) < threshold
    ]
    return sorted(flagged)
